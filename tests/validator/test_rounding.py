"""Tests for the Bochs-derived validator's rounding (incl. properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cpuid import Vendor, default_feature_map
from repro.arch.registers import Cr4, Efer
from repro.cpu.entry_checks import check_host_state, check_vm_controls
from repro.validator.golden import golden_vmcs
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F
from repro.vmx.controls import ActivityState, EntryControls, ProcBased
from repro.vmx.msr_caps import capabilities_for_features, default_capabilities
from repro.vmx.vmcs import Vmcs

raw_vmcs = st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES)


@pytest.fixture
def validator():
    return VmStateValidator()


class TestGroupOrder:
    def test_golden_is_near_fixed_point(self, validator):
        """Rounding the golden state changes only gated-field padding."""
        vmcs = golden_vmcs()
        report = validator.round_to_valid(vmcs)
        # Second pass is a strict fixed point.
        assert validator.is_fixed_point(vmcs)
        assert report.total >= 0

    def test_report_groups_ordered(self, validator):
        vmcs = Vmcs.deserialize(bytes(range(256)) * 4)
        report = validator.round_to_valid(vmcs)
        assert report.all == report.controls + report.host + report.guest

    def test_paper_example_lme_forces_pae(self, validator):
        """§4.3's worked example: IA-32e requested while CR4.PAE unset —
        the validator forces the bit to 1."""
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        validator.round_to_valid(vmcs)
        assert vmcs.read(F.GUEST_CR4) & Cr4.PAE

    def test_controls_rounded_before_guest(self, validator):
        """The guest group reads the already-rounded entry controls."""
        vmcs = golden_vmcs()
        # Corrupt entry controls so that reserved bits force rounding;
        # IA-32e remains set and the guest group must still see it.
        vmcs.write(F.VM_ENTRY_CONTROLS, 0xFFFFFFFF)
        vmcs.write(F.GUEST_IA32_EFER, 0)
        validator.round_to_valid(vmcs)
        entry = vmcs.read(F.VM_ENTRY_CONTROLS)
        if entry & EntryControls.IA32E_MODE_GUEST:
            assert vmcs.read(F.GUEST_IA32_EFER) & Efer.LMA


class TestControlsRounding:
    def test_read_only_fields_zeroed(self, validator):
        vmcs = Vmcs.deserialize(b"\xa5" * F.LAYOUT_BYTES)
        validator.round_to_valid(vmcs)
        assert vmcs.read(F.VM_EXIT_REASON) == 0
        assert vmcs.read(F.EXIT_QUALIFICATION) == 0

    def test_reserved_bits_fixed(self, validator):
        vmcs = Vmcs()
        validator.round_to_valid(vmcs)
        caps = default_capabilities()
        assert caps.pin_based.permits(vmcs.read(F.PIN_BASED_VM_EXEC_CONTROL))
        assert caps.proc_based.permits(vmcs.read(F.CPU_BASED_VM_EXEC_CONTROL))

    def test_gated_fields_normalised(self, validator):
        vmcs = Vmcs()
        vmcs.write(F.IO_BITMAP_A, 0xDEADBEEF000)
        vmcs.write(F.TSC_MULTIPLIER, 77)
        validator.round_to_valid(vmcs)
        assert vmcs.read(F.IO_BITMAP_A) == 0   # I/O bitmaps unused
        assert vmcs.read(F.TSC_MULTIPLIER) == 0

    def test_addresses_rounded_into_guest_ram(self, validator):
        vmcs = Vmcs()
        vmcs.write(F.CPU_BASED_VM_EXEC_CONTROL,
                   ProcBased.DEFAULT1 | ProcBased.USE_MSR_BITMAPS)
        vmcs.write(F.MSR_BITMAP, 0xFFFF_FFFF_F123)
        validator.round_to_valid(vmcs)
        bitmap = vmcs.read(F.MSR_BITMAP)
        assert bitmap < 0x1000_0000 and not bitmap & 0xFFF

    def test_smm_controls_cleared(self, validator):
        vmcs = golden_vmcs()
        vmcs.write(F.VM_ENTRY_CONTROLS,
                   vmcs.read(F.VM_ENTRY_CONTROLS) | EntryControls.ENTRY_TO_SMM)
        validator.round_to_valid(vmcs)
        assert not vmcs.read(F.VM_ENTRY_CONTROLS) & EntryControls.ENTRY_TO_SMM


class TestGuestRounding:
    def test_activity_state_bounded(self, validator):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_ACTIVITY_STATE, 0xFF)
        validator.round_to_valid(vmcs)
        assert vmcs.read(F.GUEST_ACTIVITY_STATE) in ActivityState.ALL

    def test_wait_for_sipi_survives_rounding(self, validator):
        """Near-boundary states like WAIT_FOR_SIPI must *survive*
        rounding — they are valid, just dangerous (Xen bug #4)."""
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_ACTIVITY_STATE, ActivityState.WAIT_FOR_SIPI)
        validator.round_to_valid(vmcs)
        assert vmcs.read(F.GUEST_ACTIVITY_STATE) == ActivityState.WAIT_FOR_SIPI

    def test_tr_forced_usable(self, validator):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_TR_AR_BYTES, 1 << 16)
        validator.round_to_valid(vmcs)
        assert not vmcs.read(F.GUEST_TR_AR_BYTES) & (1 << 16)

    def test_rip_canonicalised(self, validator):
        vmcs = golden_vmcs()
        vmcs.write(F.GUEST_RIP, 0x8000_0000_0000)  # non-canonical
        validator.round_to_valid(vmcs)
        rip = vmcs.read(F.GUEST_RIP)
        assert rip in (0xFFFF_8000_0000_0000, 0x8000_0000_0000 & 0xFFFFFFFF)


class TestRoundingProperties:
    @given(raw_vmcs)
    @settings(max_examples=40, deadline=None)
    def test_rounding_is_idempotent(self, raw):
        validator = VmStateValidator()
        vmcs = Vmcs.deserialize(raw)
        validator.round_to_valid(vmcs)
        assert validator.is_fixed_point(vmcs)

    @given(raw_vmcs)
    @settings(max_examples=40, deadline=None)
    def test_rounded_controls_pass_hardware(self, raw):
        validator = VmStateValidator()
        vmcs = Vmcs.deserialize(raw)
        validator.round_to_valid(vmcs)
        caps = default_capabilities()
        # Controls may still trip the deliberate modelling gaps; filter
        # those out — everything else must pass hardware checks.
        gaps = ("acknowledge",)
        violations = [v for v in check_vm_controls(vmcs, caps)
                      if not any(g in v.reason for g in gaps)]
        assert violations == []

    @given(raw_vmcs)
    @settings(max_examples=40, deadline=None)
    def test_rounded_host_state_passes_hardware_except_gap(self, raw):
        validator = VmStateValidator()
        vmcs = Vmcs.deserialize(raw)
        validator.round_to_valid(vmcs)
        violations = [v for v in check_host_state(vmcs, default_capabilities())
                      if v.field != "host_tr_selector"]  # the documented gap
        assert violations == []

    @given(raw_vmcs)
    @settings(max_examples=20, deadline=None)
    def test_restricted_caps_respected(self, raw):
        features = default_feature_map(Vendor.INTEL)
        features["ept"] = False
        caps = capabilities_for_features(features)
        validator = VmStateValidator(caps)
        vmcs = Vmcs.deserialize(raw)
        validator.round_to_valid(vmcs)
        assert caps.secondary.permits(vmcs.read(F.SECONDARY_VM_EXEC_CONTROL))

    @given(raw_vmcs)
    @settings(max_examples=20, deadline=None)
    def test_predicted_violations_does_not_mutate(self, raw):
        validator = VmStateValidator()
        vmcs = Vmcs.deserialize(raw)
        image = vmcs.serialize()
        validator.predicted_violations(vmcs)
        assert vmcs.serialize() == image
