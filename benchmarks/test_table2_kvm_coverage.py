"""Table 2: KVM nested-virtualization coverage, Intel and AMD.

Reproduces the paper's central comparison: NecoFuzz vs Syzkaller vs IRIS
vs Selftests vs KVM-unit-tests, with the A∩B / A−B set algebra. Expected
shape (paper values in EXPERIMENTS.md): NecoFuzz ≈ 85%/74% leads every
tool; Syzkaller trails on Intel (~61%) and collapses on AMD (~7%, no
harness); NecoFuzz subsumes nearly all of Syzkaller's lines.
"""

import pytest

from common import (
    BenchReport,
    SYZKALLER_BUDGET,
    coverage_percents,
    klees_row,
    median_result_lines,
    necofuzz_runs,
)
from repro import Vendor
from repro.baselines import (
    IrisCampaign,
    KvmUnitTestsSuite,
    SelftestsSuite,
    SyzkallerCampaign,
)
from repro.coverage.report import CoverageTable


def _run_table(vendor: Vendor):
    neco = necofuzz_runs(vendor)
    syz = [SyzkallerCampaign(vendor=vendor, seed=seed).run(SYZKALLER_BUDGET)
           for seed in (11, 23, 37, 47, 59)]
    selftests = SelftestsSuite(vendor).run()
    unit_tests = KvmUnitTestsSuite(vendor).run()
    iris = IrisCampaign(seed=11).run(500) if vendor is Vendor.INTEL else None

    table = CoverageTable(f"Table 2 — KVM {vendor.value}",
                          neco[0].instrumented_lines)
    table.add("NecoFuzz", median_result_lines(neco))
    table.add("Syzkaller", median_result_lines(syz))
    table.add_algebra("NecoFuzz", "Syzkaller")
    if iris is not None:
        table.add("IRIS", iris.covered_lines)
    table.add("Selftests", selftests.covered_lines)
    table.add_algebra("NecoFuzz", "Selftests")
    table.add("KVM-unit-tests", unit_tests.covered_lines)
    return table, neco, syz


@pytest.mark.benchmark(group="table2")
def test_table2_intel(benchmark, capsys):
    table = {}

    def experiment():
        table["result"] = _run_table(Vendor.INTEL)
        return table["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    cov_table, neco, syz = table["result"]

    report = BenchReport("Table 2 (Intel): KVM nested coverage")
    report.add(cov_table.render())
    report.add()
    report.add(klees_row("NecoFuzz", coverage_percents(neco),
                         "Syzkaller", coverage_percents(syz)))
    report.emit(capsys)

    neco_pct = cov_table.reports["NecoFuzz"].percent
    syz_pct = cov_table.reports["Syzkaller"].percent
    # Paper shape: NecoFuzz 84.7%, 1.4x over Syzkaller's 61.4%; NecoFuzz
    # subsumes nearly everything Syzkaller reaches (Syz-Neco = 7.3%).
    assert neco_pct > 75
    assert neco_pct > syz_pct * 1.15
    assert cov_table.reports["Syzkaller-NecoFuzz"].percent < 15
    assert cov_table.reports["NecoFuzz-Syzkaller"].percent > 15
    # IRIS sits well below NecoFuzz (paper: 52.3% vs 84.7%, a 1.6x gap).
    assert cov_table.reports["IRIS"].percent < neco_pct
    # Selftests reach some host-only code NecoFuzz cannot (paper: 2.4%).
    assert 0 < cov_table.reports["Selftests-NecoFuzz"].percent < 15


@pytest.mark.benchmark(group="table2")
def test_table2_amd(benchmark, capsys):
    table = {}

    def experiment():
        table["result"] = _run_table(Vendor.AMD)
        return table["result"]

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    cov_table, neco, syz = table["result"]

    report = BenchReport("Table 2 (AMD): KVM nested coverage")
    report.add(cov_table.render())
    report.add()
    report.add(klees_row("NecoFuzz", coverage_percents(neco),
                         "Syzkaller", coverage_percents(syz)))
    report.emit(capsys)

    neco_pct = cov_table.reports["NecoFuzz"].percent
    syz_pct = cov_table.reports["Syzkaller"].percent
    # Paper shape: 74.2% vs 7.0% — an order-of-magnitude gap because
    # Syzkaller has no AMD nested harness.
    assert neco_pct > 60
    assert syz_pct < 25
    assert neco_pct > syz_pct * 3
    assert cov_table.reports["NecoFuzz-Syzkaller"].percent > 40
