"""VMCB field layout (AMD APM Vol. 2, Appendix B).

The VMCB is split into a *control area* (intercept vectors, TLB control,
virtual-interrupt control, exit information, nested-paging control) and a
*state save area* (segment registers, control registers, MSR images). We
assign each field a stable symbolic name and a width; layout order is
definition order, giving a canonical serialisation for Hamming-distance
work, parallel to the VMCS model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class VmcbArea(Enum):
    """Which half of the VMCB a field lives in."""

    CONTROL = "control"
    SAVE = "save"


@dataclass(frozen=True)
class VmcbField:
    """Static description of one VMCB field."""

    name: str
    area: VmcbArea
    bits: int


_SPECS: list[VmcbField] = []


def _f(name: str, area: VmcbArea, bits: int) -> str:
    _SPECS.append(VmcbField(name, area, bits))
    return name


# --- Control area -----------------------------------------------------------
INTERCEPT_CR_READS = _f("intercept_cr_reads", VmcbArea.CONTROL, 16)
INTERCEPT_CR_WRITES = _f("intercept_cr_writes", VmcbArea.CONTROL, 16)
INTERCEPT_DR_READS = _f("intercept_dr_reads", VmcbArea.CONTROL, 16)
INTERCEPT_DR_WRITES = _f("intercept_dr_writes", VmcbArea.CONTROL, 16)
INTERCEPT_EXCEPTIONS = _f("intercept_exceptions", VmcbArea.CONTROL, 32)
INTERCEPT_MISC1 = _f("intercept_misc1", VmcbArea.CONTROL, 32)  # INTR..FERR_FREEZE
INTERCEPT_MISC2 = _f("intercept_misc2", VmcbArea.CONTROL, 32)  # VMRUN..XSETBV
INTERCEPT_MISC3 = _f("intercept_misc3", VmcbArea.CONTROL, 32)
PAUSE_FILTER_THRESHOLD = _f("pause_filter_threshold", VmcbArea.CONTROL, 16)
PAUSE_FILTER_COUNT = _f("pause_filter_count", VmcbArea.CONTROL, 16)
IOPM_BASE_PA = _f("iopm_base_pa", VmcbArea.CONTROL, 64)
MSRPM_BASE_PA = _f("msrpm_base_pa", VmcbArea.CONTROL, 64)
TSC_OFFSET = _f("tsc_offset", VmcbArea.CONTROL, 64)
GUEST_ASID = _f("guest_asid", VmcbArea.CONTROL, 32)
TLB_CONTROL = _f("tlb_control", VmcbArea.CONTROL, 8)
VINTR_CONTROL = _f("vintr_control", VmcbArea.CONTROL, 64)  # V_TPR..V_INTR_VECTOR
INTERRUPT_SHADOW = _f("interrupt_shadow", VmcbArea.CONTROL, 64)
EXIT_CODE = _f("exit_code", VmcbArea.CONTROL, 64)
EXIT_INFO_1 = _f("exit_info_1", VmcbArea.CONTROL, 64)
EXIT_INFO_2 = _f("exit_info_2", VmcbArea.CONTROL, 64)
EXIT_INT_INFO = _f("exit_int_info", VmcbArea.CONTROL, 64)
NP_CONTROL = _f("np_control", VmcbArea.CONTROL, 64)  # NP_ENABLE, SEV bits
AVIC_APIC_BAR = _f("avic_apic_bar", VmcbArea.CONTROL, 64)
GHCB_PA = _f("ghcb_pa", VmcbArea.CONTROL, 64)
EVENT_INJECTION = _f("event_injection", VmcbArea.CONTROL, 64)
N_CR3 = _f("n_cr3", VmcbArea.CONTROL, 64)
LBR_VIRT_ENABLE = _f("lbr_virt_enable", VmcbArea.CONTROL, 64)  # incl. VMSAVE/VMLOAD virt
VMCB_CLEAN = _f("vmcb_clean", VmcbArea.CONTROL, 32)
NEXT_RIP = _f("next_rip", VmcbArea.CONTROL, 64)
GUEST_INSTR_BYTES_LEN = _f("guest_instr_bytes_len", VmcbArea.CONTROL, 8)
AVIC_BACKING_PAGE = _f("avic_backing_page", VmcbArea.CONTROL, 64)
AVIC_LOGICAL_TABLE = _f("avic_logical_table", VmcbArea.CONTROL, 64)
AVIC_PHYSICAL_TABLE = _f("avic_physical_table", VmcbArea.CONTROL, 64)
VMSA_POINTER = _f("vmsa_pointer", VmcbArea.CONTROL, 64)

# --- State save area ----------------------------------------------------------
for _seg in ("es", "cs", "ss", "ds", "fs", "gs", "gdtr", "ldtr", "idtr", "tr"):
    _f(f"{_seg}_selector", VmcbArea.SAVE, 16)
    _f(f"{_seg}_attrib", VmcbArea.SAVE, 16)
    _f(f"{_seg}_limit", VmcbArea.SAVE, 32)
    _f(f"{_seg}_base", VmcbArea.SAVE, 64)

CPL = _f("cpl", VmcbArea.SAVE, 8)
EFER = _f("efer", VmcbArea.SAVE, 64)
CR0 = _f("cr0", VmcbArea.SAVE, 64)
CR2 = _f("cr2", VmcbArea.SAVE, 64)
CR3 = _f("cr3", VmcbArea.SAVE, 64)
CR4 = _f("cr4", VmcbArea.SAVE, 64)
DR6 = _f("dr6", VmcbArea.SAVE, 64)
DR7 = _f("dr7", VmcbArea.SAVE, 64)
RFLAGS = _f("rflags", VmcbArea.SAVE, 64)
RIP = _f("rip", VmcbArea.SAVE, 64)
RSP = _f("rsp", VmcbArea.SAVE, 64)
RAX = _f("rax", VmcbArea.SAVE, 64)
STAR = _f("star", VmcbArea.SAVE, 64)
LSTAR = _f("lstar", VmcbArea.SAVE, 64)
CSTAR = _f("cstar", VmcbArea.SAVE, 64)
SFMASK = _f("sfmask", VmcbArea.SAVE, 64)
KERNEL_GS_BASE = _f("kernel_gs_base", VmcbArea.SAVE, 64)
SYSENTER_CS = _f("sysenter_cs", VmcbArea.SAVE, 64)
SYSENTER_ESP = _f("sysenter_esp", VmcbArea.SAVE, 64)
SYSENTER_EIP = _f("sysenter_eip", VmcbArea.SAVE, 64)
G_PAT = _f("g_pat", VmcbArea.SAVE, 64)
DBGCTL = _f("dbgctl", VmcbArea.SAVE, 64)
BR_FROM = _f("br_from", VmcbArea.SAVE, 64)
BR_TO = _f("br_to", VmcbArea.SAVE, 64)
LAST_EXCP_FROM = _f("last_excp_from", VmcbArea.SAVE, 64)
LAST_EXCP_TO = _f("last_excp_to", VmcbArea.SAVE, 64)
SPEC_CTRL = _f("spec_ctrl", VmcbArea.SAVE, 64)

ALL_FIELDS: tuple[VmcbField, ...] = tuple(_SPECS)
SPEC_BY_NAME: dict[str, VmcbField] = {s.name: s for s in ALL_FIELDS}

LAYOUT_BITS = sum(s.bits for s in ALL_FIELDS)
LAYOUT_BYTES = (LAYOUT_BITS + 7) // 8

#: Segment register prefixes in save-area order.
SEGMENT_NAMES = ("es", "cs", "ss", "ds", "fs", "gs", "gdtr", "ldtr", "idtr", "tr")


# --- Control-area bit definitions --------------------------------------------

class Misc1Intercept:
    """intercept_misc1 bits (APM 15.9/15.13)."""

    INTR = 1 << 0
    NMI = 1 << 1
    SMI = 1 << 2
    INIT = 1 << 3
    VINTR = 1 << 4
    CR0_SEL_WRITE = 1 << 5
    READ_IDTR = 1 << 6
    READ_GDTR = 1 << 7
    READ_LDTR = 1 << 8
    READ_TR = 1 << 9
    RDTSC = 1 << 14
    RDPMC = 1 << 15
    PUSHF = 1 << 16
    POPF = 1 << 17
    CPUID = 1 << 18
    RSM = 1 << 19
    IRET = 1 << 20
    INTN = 1 << 21
    INVD = 1 << 22
    PAUSE = 1 << 23
    HLT = 1 << 24
    INVLPG = 1 << 25
    INVLPGA = 1 << 26
    IOIO_PROT = 1 << 27
    MSR_PROT = 1 << 28
    TASK_SWITCH = 1 << 29
    FERR_FREEZE = 1 << 30
    SHUTDOWN = 1 << 31


class Misc2Intercept:
    """intercept_misc2 bits."""

    VMRUN = 1 << 0
    VMMCALL = 1 << 1
    VMLOAD = 1 << 2
    VMSAVE = 1 << 3
    STGI = 1 << 4
    CLGI = 1 << 5
    SKINIT = 1 << 6
    RDTSCP = 1 << 7
    ICEBP = 1 << 8
    WBINVD = 1 << 9
    MONITOR = 1 << 10
    MWAIT = 1 << 11
    MWAIT_COND = 1 << 12
    XSETBV = 1 << 13
    RDPRU = 1 << 14
    EFER_WRITE_TRAP = 1 << 15


class VintrControl:
    """vintr_control bit fields (APM 15.21)."""

    V_TPR_MASK = 0xFF
    V_IRQ = 1 << 8
    V_GIF = 1 << 9          # virtual GIF value
    V_NMI = 1 << 11
    V_INTR_PRIO_SHIFT = 16
    V_IGN_TPR = 1 << 20
    V_INTR_MASKING = 1 << 24
    V_GIF_ENABLE = 1 << 25  # VGIF feature enable
    AVIC_ENABLE = 1 << 31   # modelled at bit 31 of the vintr word


class NpControl:
    """np_control bits."""

    NP_ENABLE = 1 << 0
    SEV_ENABLE = 1 << 1
    SEV_ES_ENABLE = 1 << 2
