"""Shared-memory virgin-map tests: segment lifecycle and worker fallback."""

import multiprocessing

import pytest

from repro.coverage.bitmap import MAP_SIZE
from repro.parallel.shared_map import SharedVirginMap, attach, publisher
from repro.parallel.worker import CampaignWorker, WorkerSpec


@pytest.fixture
def shared():
    ctx = multiprocessing.get_context()
    segment = SharedVirginMap.create(ctx)
    if segment is None:
        pytest.skip("shared memory unavailable in this environment")
    yield segment
    segment.destroy()


class TestSegmentLifecycle:
    def test_created_zeroed_and_sized(self, shared):
        snapshot = shared.snapshot()
        assert len(snapshot) == MAP_SIZE
        assert snapshot == bytes(MAP_SIZE)

    def test_publish_ors_bits_in(self, shared):
        first = bytes([0x0F]) + bytes(MAP_SIZE - 1)
        second = bytes([0xF0, 0x01]) + bytes(MAP_SIZE - 2)
        shared.publish(first)
        shared.publish(second)
        merged = shared.snapshot()
        assert merged[0] == 0xFF
        assert merged[1] == 0x01
        assert merged[2:] == bytes(MAP_SIZE - 2)

    def test_destroy_is_idempotent(self, shared):
        shared.destroy()
        shared.destroy()  # second call must not raise

    def test_attach_sees_published_bits(self, shared):
        shared.publish(bytes([0xAA]) + bytes(MAP_SIZE - 1))
        handle = attach(shared.name)
        try:
            assert handle.buf[0] == 0xAA
        finally:
            handle.close()


class TestPublisherClosure:
    def test_publish_through_closure(self, shared):
        publish = publisher(shared.name, shared.lock)
        publish(bytes([0x01]) + bytes(MAP_SIZE - 1))
        publish(bytes([0x02]) + bytes(MAP_SIZE - 1))
        assert shared.snapshot()[0] == 0x03

    def test_unknown_segment_raises(self):
        ctx = multiprocessing.get_context()
        publish = publisher("psm_repro_does_not_exist", ctx.Lock())
        with pytest.raises(Exception):
            publish(bytes(MAP_SIZE))


class TestDestroyErrorDiscipline:
    """Only the *expected* endgame errors are swallowed by destroy()."""

    class _FakeShm:
        def __init__(self, close_exc=None, unlink_exc=None):
            self.close_exc = close_exc
            self.unlink_exc = unlink_exc
            self.closed = False
            self.unlinked = False

        def close(self):
            self.closed = True
            if self.close_exc is not None:
                raise self.close_exc

        def unlink(self):
            self.unlinked = True
            if self.unlink_exc is not None:
                raise self.unlink_exc

    def _map(self, shm):
        return SharedVirginMap(shm, multiprocessing.get_context().Lock())

    def test_buffer_error_on_close_still_unlinks(self):
        # An exported memoryview makes close() raise BufferError; the
        # name must not outlive the run because of it.
        shm = self._FakeShm(close_exc=BufferError("exported pointers"))
        self._map(shm).destroy()
        assert shm.unlinked

    def test_vanished_segment_is_quiet(self):
        shm = self._FakeShm(close_exc=FileNotFoundError(),
                            unlink_exc=FileNotFoundError())
        self._map(shm).destroy()
        assert shm.closed and shm.unlinked

    def test_unexpected_close_error_propagates(self):
        # The regression: a bare `except Exception: pass` here once hid
        # a real leak. A permission flip must be loud.
        shm = self._FakeShm(close_exc=PermissionError("sealed"))
        with pytest.raises(PermissionError):
            self._map(shm).destroy()

    def test_unexpected_unlink_error_propagates(self):
        shm = self._FakeShm(unlink_exc=PermissionError("sealed"))
        with pytest.raises(PermissionError):
            self._map(shm).destroy()


class TestPublisherClose:
    """Worker-side mapping hygiene: close in finally, never leak."""

    def test_close_before_any_publish_is_a_noop(self, shared):
        publish = publisher(shared.name, shared.lock)
        publish.close()  # lazy attach never happened
        assert publish._shm is None

    def test_close_drops_the_mapping_and_is_idempotent(self, shared):
        publish = publisher(shared.name, shared.lock)
        publish(bytes([0x01]) + bytes(MAP_SIZE - 1))
        assert publish._shm is not None
        publish.close()
        assert publish._shm is None
        publish.close()  # second close must not raise

    def test_publish_after_close_reattaches(self, shared):
        publish = publisher(shared.name, shared.lock)
        publish(bytes([0x01]) + bytes(MAP_SIZE - 1))
        publish.close()
        publish(bytes([0x02]) + bytes(MAP_SIZE - 1))
        assert shared.snapshot()[0] == 0x03

    def test_close_tolerates_a_vanished_segment(self, shared):
        # Mid-sync fault shape: the worker dies while the supervisor
        # tears the segment down. The finally-path close must not turn
        # that into a second exception.
        publish = publisher(shared.name, shared.lock)
        publish(bytes(MAP_SIZE))
        publish._shm = TestDestroyErrorDiscipline._FakeShm(
            close_exc=FileNotFoundError())
        publish.close()
        assert publish._shm is None


def make_worker(**kwargs):
    spec = WorkerSpec(index=0, seed=7, iterations=4)
    from repro import Vendor

    return CampaignWorker(spec, dict(hypervisor="kvm", vendor=Vendor.INTEL),
                          **kwargs)


class TestWorkerPublishing:
    def test_publish_skipped_when_generation_unchanged(self):
        calls = []
        worker = make_worker()
        worker.virgin_publisher = calls.append
        worker.run_chunk(4)
        worker.publish_virgin()
        assert len(calls) == 1
        worker.publish_virgin()  # no engine progress since: no-op
        assert len(calls) == 1

    def test_failing_publisher_falls_back_to_snapshots(self):
        def explode(bits):
            raise OSError("segment vanished")

        worker = make_worker()
        worker.virgin_publisher = explode
        worker.run_chunk(4)
        report = worker.report()
        assert worker.virgin_publisher is None
        # The report carries the full snapshot again: no bits lost.
        assert report.virgin_bits == bytes(worker.campaign.engine.virgin.bits)

    def test_live_publisher_empties_report_snapshot(self, shared):
        worker = make_worker()
        worker.virgin_publisher = shared.publish
        worker.run_chunk(4)
        report = worker.report()
        assert report.virgin_bits == b""
        assert shared.snapshot() == bytes(worker.campaign.engine.virgin.bits)

    def test_checkpoint_drops_publisher_state(self):
        import pickle

        worker = make_worker()
        worker.virgin_publisher = lambda bits: None
        worker.run_chunk(4)
        worker.publish_virgin()
        assert worker._published_generation > 0
        restored = pickle.loads(pickle.dumps(worker))
        assert restored.virgin_publisher is None
        assert restored._published_generation == 0
