"""Global switches and helpers for the incremental hot path.

This PR's dirty-field tracking makes three hot-path stages incremental:
VM-entry consistency checking, the hypervisor-level VMCS12/VMCB12
checks, and the VMCS02/VMCB02 merge. Full recompute stays available —
the two modes are pinned equivalent (identical violation lists,
corrections, exit reasons, VMCS02 contents, and coverage) by
tests/unit/test_incremental_equivalence.py — and the benchmark suite
flips between them with :func:`incremental_mode` to measure the win.

A module-level knob is used instead of threading a flag through
NecoFuzz -> Agent -> adapter -> hypervisor constructors: the mode is a
process-wide property of the run (like the tracer mode), not a
per-object decision.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro import telemetry

_incremental = True

#: Batch-granularity memoization (DESIGN.md §12): 0 = off, N >= 1 = the
#: engine tick size. Any non-zero value turns on the signature-keyed
#: caches (column-signature entry checks, replay-memoized rounding,
#: fixup prediction) that make results shareable *across* structure
#: objects instead of per-object journals only. The caches are pure
#: value-keyed lookups, so every batch size — including 1 — is pinned
#: bit-identical to the incremental path by
#: tests/unit/test_batch_equivalence.py.
_batch_size = 0


def batch_enabled() -> bool:
    """True when the batched (signature-cached) hot path is active."""
    return _batch_size > 0


def batch_size() -> int:
    """The configured engine batch size (0 when batching is off)."""
    return _batch_size


def set_batch_size(size: int) -> None:
    """Set the batch size; 0 disables the batched hot path."""
    global _batch_size
    if size < 0:
        raise ValueError("batch size must be >= 0")
    _batch_size = int(size)


@contextmanager
def batch_mode(size: int) -> Iterator[None]:
    """Temporarily run with the batched hot path at *size* (0 = off)."""
    global _batch_size
    if size < 0:
        raise ValueError("batch size must be >= 0")
    saved = _batch_size
    _batch_size = int(size)
    try:
        yield
    finally:
        _batch_size = saved


def incremental_enabled() -> bool:
    """True when the incremental (dirty-tracking) hot path is active."""
    return _incremental


def set_incremental(enabled: bool) -> None:
    """Switch between the incremental and full-recompute hot paths."""
    global _incremental
    _incremental = bool(enabled)


@contextmanager
def incremental_mode(enabled: bool) -> Iterator[None]:
    """Temporarily force the incremental hot path on or off."""
    global _incremental
    saved = _incremental
    _incremental = bool(enabled)
    try:
        yield
    finally:
        _incremental = saved


def memoized_check(struct, key, compute: Callable[[], list]):
    """Memoize a pure consistency check on its structure object.

    *struct* is a ``Vmcs`` or ``Vmcb``; *compute* must be a pure
    function of the structure's fields (plus state that is constant for
    the lifetime of *key*, e.g. the capability MSRs of the hypervisor
    instance baked into the key). The read set is recorded dynamically
    via the structure's ``_read_trace`` hook — sound because every
    branch taken by *compute* depends only on fields it read — and the
    result is revalidated against the change journal on later calls.

    Coverage equivalence: when the fast-path kcov tracer is active, the
    (file, line) events emitted during *compute* are recorded with the
    entry and replayed into the tracer on every cache hit, so per-case
    line AND edge coverage is identical to recomputing. Under the
    legacy ``sys.settrace`` tracer events cannot be replayed, so
    memoization is bypassed entirely; an entry recorded without any
    tracer carries no event slice and is recomputed if a fast-path
    tracer is active when it is next consulted.

    Entries record the *values* read, not just the field set, and a
    journalled write back to the recorded value does not invalidate: a
    deterministic *compute* re-reading identical values would take
    identical branches and return an equal result (and emit an
    identical event slice), so the revalidation compares values on the
    journal/read-set intersection before giving up on the entry.

    The cached result list is returned as-is on a hit; callers must not
    mutate it.
    """
    if not _incremental:
        return compute()
    from repro.coverage import kcov

    if kcov.legacy_trace_active():
        return compute()
    sink = kcov.event_sink()
    entry = struct.memo_get(key)
    if entry is None and _batch_size > 0:
        # Batched deserialize anchors a candidate on a frozen reference
        # master; an entry memoized on the master revalidates against
        # the candidate's journal exactly like its own would (the
        # journal is rooted at the master's generation), and a hit is
        # promoted into the candidate's memo below.
        master = getattr(struct, "_anchor", None)
        if master is not None:
            entry = master.memo_get(key)
    if entry is not None:
        gen, reads, value, trace = entry
        changed = struct.changes_since(gen)
        if changed is not None and (sink is None or trace is not None) and all(
                struct.read(k) == reads[k] for k in changed & reads.keys()):
            if sink is not None and trace:
                sink.extend(trace)
            if gen != struct.generation:
                struct.memo_put(key, (struct.generation, reads, value, trace))
            if struct._read_trace is not None:
                struct._read_trace.update(reads)
            telemetry.counter("perf.memo_hits")
            return value
    telemetry.counter("perf.memo_misses")
    mark = len(sink) if sink is not None else 0
    outer = struct._read_trace
    reads = set()
    struct._read_trace = reads
    before = struct.generation
    try:
        value = compute()
    finally:
        struct._read_trace = outer
    if outer is not None:
        outer.update(reads)
    if struct.generation == before:
        trace = tuple(sink[mark:]) if sink is not None else None
        read_values = {k: struct.read(k) for k in reads}
        struct.memo_put(key, (struct.generation, read_values, value, trace))
        if _batch_size > 0:
            # Seed the anchor master when this compute never read a
            # field the candidate changed: the master holds identical
            # values on every read, so the entry transfers verbatim
            # (rooted at the master's generation) and later anchored
            # candidates hit through the fallback above.
            master = getattr(struct, "_anchor", None)
            if master is not None and master.memo_get(key) is None:
                delta = struct.changes_since(master.generation)
                if delta is not None and not (delta & reads):
                    master.memo_put(key, (master.generation, read_values,
                                          value, trace))
    return value


def memoized_fixpoint(struct, key, run: Callable[[], object]):
    """Memoize a deterministic correction pass at its fixed point.

    Unlike :func:`memoized_check`, *run* may mutate *struct* (it is a
    rounding pass, not a predicate). An entry is recorded only when the
    pass wrote nothing — the structure was already at the pass's fixed
    point, making that invocation pure. Soundness then follows from the
    read trace: every field a pass corrects is read first (the rounders
    compute corrections from current values), so while no traced field
    changes a re-run would read identical values, take identical
    branches, again write nothing, and return an equal (empty) result.

    As in :func:`memoized_check`, entries record read *values*: a field
    journalled back to its recorded value (a mutation the pass itself
    corrected away, or exit information a failed entry wrote and the
    pass re-zeroed) leaves the fixed point intact, so the entry
    survives write/revert churn between invocations.

    The rounding passes live outside the instrumented hypervisor
    modules, so no kcov event slice needs to be recorded; the legacy
    settrace bypass is kept anyway so a wrapped pass can never perturb
    a legacy coverage run.
    """
    if not _incremental:
        return run()
    from repro.coverage import kcov

    if kcov.legacy_trace_active():
        return run()
    entry = struct.memo_get(key)
    if entry is not None:
        gen, reads, value = entry
        changed = struct.changes_since(gen)
        if changed is not None and all(
                struct.read(k) == reads[k] for k in changed & reads.keys()):
            if gen != struct.generation:
                struct.memo_put(key, (struct.generation, reads, value))
            if struct._read_trace is not None:
                struct._read_trace.update(reads)
            telemetry.counter("perf.memo_hits")
            return value
    telemetry.counter("perf.memo_misses")
    outer = struct._read_trace
    reads = set()
    struct._read_trace = reads
    before = struct.generation
    try:
        value = run()
    finally:
        struct._read_trace = outer
    if outer is not None:
        outer.update(reads)
    if struct.generation == before:
        struct.memo_put(key, (struct.generation,
                              {k: struct.read(k) for k in reads}, value))
    return value


def merge_state(state, src, *, build: Callable[[], object],
                controls: Callable[[object], None],
                state_fields: frozenset, control_inputs: frozenset):
    """Incrementally rebuild a merged VMCS02/VMCB02 from a tracked source.

    *build* constructs the merged structure from scratch (prototype copy
    plus the guest/save fields taken verbatim from *src*); *controls*
    applies the control-field section onto an existing merged structure.
    Both live in instrumented hypervisor modules, so their kcov event
    slices are captured when they run and replayed verbatim when they
    are skipped — per-case line AND edge coverage is identical to a
    full merge. The skips are sound because *build*'s guest half is
    reproduced exactly by replaying the dirty *state_fields* from the
    change journal, and *controls* is a pure function of the fields in
    *control_inputs* (declared by the caller), so an unchanged input
    set means identical writes and an identical event slice.

    The cache — ``state.merge_cache = (src, generation, merged,
    build_trace, controls_trace)`` — is recorded before the caller's
    always-live sections (clamps, paging/MMU setup) run, so fallible
    tails replay identically from the cached prefix. *state* may be
    ``None`` (or the mode off / legacy tracer active): the merge then
    runs in full every time.
    """
    from repro.coverage import kcov

    if state is None or not _incremental or kcov.legacy_trace_active():
        merged = build()
        controls(merged)
        if state is not None:
            # Never leave a cache recorded under different trace rules.
            state.merge_cache = None
        return merged
    sink = kcov.event_sink()
    cache = state.merge_cache
    changed = None
    if cache is not None and cache[0] is src:
        changed = src.changes_since(cache[1])
        if sink is not None and (cache[3] is None or cache[4] is None):
            # Recorded without a tracer: rebuild live to capture slices.
            changed = None
    if changed is None:
        telemetry.counter("perf.merge_full")
        mark = len(sink) if sink is not None else 0
        merged = build()
        build_trace = tuple(sink[mark:]) if sink is not None else None
        mark = len(sink) if sink is not None else 0
        controls(merged)
        ctrl_trace = tuple(sink[mark:]) if sink is not None else None
        state.merge_cache = (src, src.generation, merged, build_trace,
                             ctrl_trace)
        return merged
    telemetry.counter("perf.merge_incremental")
    merged = cache[2]
    for key in changed & state_fields:
        merged.write(key, src.read(key))
    if sink is not None:
        sink.extend(cache[3])
    ctrl_trace = cache[4]
    if changed & control_inputs:
        mark = len(sink) if sink is not None else 0
        controls(merged)
        ctrl_trace = tuple(sink[mark:]) if sink is not None else None
    state.merge_cache = (src, src.generation, merged, cache[3], ctrl_trace)
    return merged


def prewarm(fn: Callable[[], object]) -> None:
    """Run a memo pre-warm on the incremental fast path only.

    Wraps the hypervisors' post-merge ``check_all`` pre-warm so the call
    site is a single statement that executes in both modes — the gate
    lives here, outside the instrumented modules, keeping per-case
    coverage mode-independent.
    """
    if not _incremental:
        return
    from repro.coverage import kcov

    if not kcov.legacy_trace_active():
        fn()


def publish_merged(merged, prewarm_fn: Callable[[], object] | None = None):
    """The object to install for execution: *merged* itself on the full
    path, a fast copy on the incremental path so quirk write-backs from
    the run (and dirty-field replays by a later, *failed* merge) never
    alias the cached master. *prewarm_fn* (typically a
    :func:`memoized_check` over the vendor's structure check) runs first
    so the copy inherits a warm memo.

    The copy is cached on the master behind both generation counters: if
    neither the master nor the previously published copy has seen a
    value-changing write since the last publish, their contents are
    still identical and the same copy is returned (generations are
    monotonic, so an equal counter means an untouched structure). A
    hardware write-back into the published copy bumps its counter and
    forces a fresh copy on the next publish.
    """
    if not _incremental:
        return merged
    from repro.coverage import kcov

    if kcov.legacy_trace_active():
        return merged
    pub = getattr(merged, "_pub", None)
    if (pub is not None and merged.generation == pub[0]
            and pub[1].generation == pub[0]):
        return pub[1]
    if prewarm_fn is not None:
        prewarm_fn()
    if _batch_size > 0:
        # Batched publish: the installed image only needs the field
        # values and the (just pre-warmed) memo entries — its journal
        # starts empty, anchored at the copy generation, which is
        # enough for every consumer holding generations from after the
        # publish. Skipping the journal duplication is the per-case
        # win; one publish serves the whole tick's executions because
        # the ``_pub`` generation pair below already dedupes.
        dup = merged.light_image()
    else:
        dup = merged.copy()
    merged._pub = (merged.generation, dup)
    return dup
