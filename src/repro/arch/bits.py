"""Bit-field manipulation helpers.

Every structure in hardware-assisted virtualization (VMCS fields, VMCB
fields, control registers, access-rights words) is a packed bit field.
These helpers centralise the extract/deposit/mask arithmetic so that the
rest of the code reads like the Intel SDM / AMD APM pseudo-code it models.
All values are non-negative Python ints treated as fixed-width words.
"""

from __future__ import annotations


def bit(position: int) -> int:
    """Return an integer with only *position* set (bit 0 = LSB)."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return 1 << position


def mask(width: int) -> int:
    """Return a mask of *width* consecutive low bits (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def field_mask(low: int, high: int) -> int:
    """Return a mask covering bits *low*..*high* inclusive."""
    if low > high:
        raise ValueError(f"invalid bit range [{low}, {high}]")
    return mask(high - low + 1) << low


def extract(value: int, low: int, high: int) -> int:
    """Extract bits *low*..*high* (inclusive) of *value*, right-aligned."""
    return (value >> low) & mask(high - low + 1)


def deposit(value: int, low: int, high: int, field: int) -> int:
    """Return *value* with bits *low*..*high* replaced by *field*.

    Bits of *field* above the destination width are discarded, matching
    hardware behaviour when a too-wide value is written to a field.
    """
    fmask = field_mask(low, high)
    return (value & ~fmask) | ((field << low) & fmask)


def test_bit(value: int, position: int) -> bool:
    """Return True when bit *position* of *value* is set."""
    return bool(value & bit(position))


def set_bit(value: int, position: int) -> int:
    """Return *value* with bit *position* set."""
    return value | bit(position)


def clear_bit(value: int, position: int) -> int:
    """Return *value* with bit *position* cleared."""
    return value & ~bit(position)


def assign_bit(value: int, position: int, flag: bool) -> int:
    """Return *value* with bit *position* forced to *flag*."""
    return set_bit(value, position) if flag else clear_bit(value, position)


def flip_bit(value: int, position: int) -> int:
    """Return *value* with bit *position* inverted."""
    return value ^ bit(position)


def truncate(value: int, width: int) -> int:
    """Truncate *value* to *width* bits (hardware register write semantics)."""
    return value & mask(width)


def popcount(value: int) -> int:
    """Number of set bits in *value*."""
    return bin(value & ((1 << value.bit_length()) - 1)).count("1") if value else 0


def hamming(a: int, b: int, width: int | None = None) -> int:
    """Hamming distance between *a* and *b*.

    When *width* is given, both operands are truncated first so that the
    comparison is over a fixed-width word (the VMCS layout comparison in
    the paper's Figure 5 is over an 8,000-bit serialised state).
    """
    if width is not None:
        a = truncate(a, width)
        b = truncate(b, width)
    return (a ^ b).bit_count()


def bytes_hamming(a: bytes, b: bytes) -> int:
    """Hamming distance between two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return sum((x ^ y).bit_count() for x, y in zip(a, b))


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a *width*-bit value to a Python int."""
    value = truncate(value, width)
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when *value* is aligned to *alignment* (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value & (alignment - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to the nearest multiple of *alignment*."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)
