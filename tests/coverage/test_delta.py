"""Unit tests for NCD1 coverage deltas (DESIGN.md §15).

Pins the codec round-trip, the monotone-map algebra that makes run
application a plain merge (apply == OR, subsume == nothing-new), the
corruption → :class:`DeltaError` contract the transport's resync
fallback is built on, the gap-coalescing run scan, and the
:class:`DeltaTracker` watermark state machine producers drive.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.coverage import delta
from repro.coverage.bitmap import MAP_SIZE, VirginMap


def _random_map(rng: random.Random, cells: int) -> bytearray:
    bits = bytearray(MAP_SIZE)
    for _ in range(cells):
        bits[rng.randrange(MAP_SIZE)] |= 1 << rng.randrange(8)
    return bits


def _grown(rng: random.Random, base: bytearray, cells: int) -> bytearray:
    grown = bytearray(base)
    for _ in range(cells):
        grown[rng.randrange(MAP_SIZE)] |= 1 << rng.randrange(8)
    return grown


# --- codec -----------------------------------------------------------------


def test_encode_decode_round_trip():
    rng = random.Random(7)
    old = _random_map(rng, 200)
    new = _grown(rng, old, 150)
    original = delta.delta_between(bytes(old), bytes(new), 3, 9)
    decoded = delta.decode(delta.encode(original))
    assert decoded == original
    assert decoded.base_generation == 3
    assert decoded.generation == 9
    assert not decoded.full


def test_empty_delta_round_trips():
    bits = bytes(MAP_SIZE)
    original = delta.delta_between(bits, bits, 5, 5)
    assert original.empty
    assert original.payload_bytes() == 0
    assert delta.decode(delta.encode(original)) == original


def test_full_delta_is_resync_snapshot():
    rng = random.Random(11)
    bits = _random_map(rng, 300)
    snap = delta.full_delta(bytes(bits), 42)
    assert snap.full and snap.base_generation == 0
    rebuilt = bytearray(MAP_SIZE)
    delta.apply_runs(rebuilt, snap.runs)
    assert rebuilt == bits


def test_corrupt_payload_raises_delta_error():
    snap = delta.full_delta(bytes(_random_map(random.Random(3), 50)), 1)
    wire = bytearray(delta.encode(snap))
    wire[len(wire) // 2] ^= 0xFF  # same flip the corrupt_delta fault makes
    with pytest.raises(delta.DeltaError, match="CRC"):
        delta.decode(bytes(wire))


def test_truncated_payload_raises_delta_error():
    snap = delta.full_delta(bytes(_random_map(random.Random(4), 50)), 1)
    with pytest.raises(delta.DeltaError):
        delta.decode(delta.encode(snap)[:10])


def test_bad_magic_rejected():
    from repro.parallel import checksum

    payload = struct.pack("<4sIII", b"XXXX", 0, 1, 0)
    with pytest.raises(delta.DeltaError, match="magic"):
        delta.decode(checksum.seal(payload))


def test_out_of_order_runs_rejected():
    from repro.parallel import checksum

    header = struct.pack("<4sIII", delta.DELTA_MAGIC, 0, 1, 2)
    run_a = struct.pack("<II", 100, 1) + b"\x01"
    run_b = struct.pack("<II", 50, 1) + b"\x01"  # overlaps backwards
    with pytest.raises(delta.DeltaError, match="out of"):
        delta.decode(checksum.seal(header + run_a + run_b))


def test_wrong_size_payload_rejected():
    with pytest.raises(ValueError, match="MAP_SIZE"):
        delta.diff_runs(b"\x00" * 10, bytes(MAP_SIZE))


# --- run algebra -----------------------------------------------------------


def test_apply_runs_reconstructs_new_map_exactly():
    rng = random.Random(21)
    old = _random_map(rng, 400)
    new = _grown(rng, old, 300)
    diff = delta.delta_between(bytes(old), bytes(new), 1, 2)
    rebuilt = bytearray(old)
    assert delta.apply_runs(rebuilt, diff.runs)
    assert rebuilt == new


def test_apply_runs_is_idempotent_merge():
    rng = random.Random(22)
    old = _random_map(rng, 100)
    new = _grown(rng, old, 100)
    diff = delta.delta_between(bytes(old), bytes(new), 1, 2)
    # Applying to a map already past the base (here: new itself) is a
    # no-op merge — the monotone property the protocol leans on.
    target = bytearray(new)
    assert not delta.apply_runs(target, diff.runs)
    assert target == new


def test_runs_subsumed_matches_apply_result():
    rng = random.Random(23)
    for _ in range(20):
        old = _random_map(rng, rng.randrange(300))
        new = _grown(rng, old, rng.randrange(300))
        local = _grown(rng, _random_map(rng, 200), 0)
        diff = delta.delta_between(bytes(old), bytes(new), 1, 2)
        probe = bytearray(local)
        changed = delta.apply_runs(probe, diff.runs)
        assert delta.runs_subsumed(local, diff.runs) == (not changed)


def test_run_scan_coalesces_small_gaps():
    old = bytes(MAP_SIZE)
    new = bytearray(MAP_SIZE)
    new[100] = 1
    new[105] = 1  # 4-byte gap: cheaper as literal zeros than a new run
    new[200] = 1  # far away: its own run
    runs = delta.diff_runs(old, bytes(new))
    assert [start for start, _run in runs] == [100, 200]
    assert len(runs[0][1]) == 6


def test_run_scan_splits_large_gaps():
    old = bytes(MAP_SIZE)
    new = bytearray(MAP_SIZE)
    new[100] = 1
    new[120] = 1  # 19-byte gap: two runs beat shipping the zeros
    runs = delta.diff_runs(old, bytes(new))
    assert [start for start, _run in runs] == [100, 120]


def test_delta_payload_is_sparse():
    rng = random.Random(31)
    old = _random_map(rng, 500)
    new = _grown(rng, old, 40)
    diff = delta.delta_between(bytes(old), bytes(new), 1, 2)
    # 40 new cells must cost a tiny fraction of the 64 KiB map.
    assert len(delta.encode(diff)) < MAP_SIZE // 16


# --- VirginMap integration -------------------------------------------------


def test_virgin_map_delta_round_trip():
    producer = VirginMap()
    rng = random.Random(41)
    producer.merge_bits(bytes(_random_map(rng, 250)))
    baseline = producer.snapshot()
    base_gen = producer.generation
    producer.merge_bits(bytes(_grown(rng, bytearray(baseline), 200)))

    diff = producer.delta_since(baseline, base_gen)
    assert diff.base_generation == base_gen
    assert diff.generation == producer.generation

    consumer = VirginMap()
    consumer.restore(baseline)
    assert consumer.apply_delta(diff)
    assert bytes(consumer.bits) == producer.snapshot()
    assert consumer.subsumes_delta(diff)
    assert producer.subsumes_delta(diff)


# --- DeltaTracker ----------------------------------------------------------


def test_tracker_take_commit_advances_baseline():
    virgin = VirginMap()
    rng = random.Random(51)
    tracker = delta.DeltaTracker()

    virgin.merge_bits(bytes(_random_map(rng, 100)))
    first = tracker.take(virgin)
    assert first.full  # nothing acked yet: full snapshot
    tracker.commit(first)
    assert tracker.generation == virgin.generation

    virgin.merge_bits(bytes(_grown(rng, virgin.bits, 100)))
    second = tracker.take(virgin)
    assert not second.full
    assert second.base_generation == first.generation
    # The chain replays to the live map.
    rebuilt = bytearray(MAP_SIZE)
    delta.apply_runs(rebuilt, first.runs)
    delta.apply_runs(rebuilt, second.runs)
    assert rebuilt == virgin.bits


def test_tracker_uncommitted_take_keeps_baseline():
    virgin = VirginMap()
    rng = random.Random(52)
    tracker = delta.DeltaTracker()
    virgin.merge_bits(bytes(_random_map(rng, 80)))
    taken = tracker.take(virgin)
    tracker.commit(taken)

    virgin.merge_bits(bytes(_grown(rng, virgin.bits, 80)))
    lost = tracker.take(virgin)  # peer never acks (timeout)
    retry = tracker.take(virgin)  # resent diff covers the same ground
    assert retry == lost


def test_tracker_commit_of_foreign_delta_rejected():
    virgin = VirginMap()
    virgin.merge_bits(bytes(_random_map(random.Random(53), 10)))
    tracker = delta.DeltaTracker()
    tracker.take(virgin)
    foreign = delta.full_delta(bytes(virgin.bits), virgin.generation)
    with pytest.raises(delta.DeltaError, match="did not take"):
        tracker.commit(foreign)


def test_tracker_resync_produces_full_snapshot():
    virgin = VirginMap()
    rng = random.Random(54)
    tracker = delta.DeltaTracker()
    virgin.merge_bits(bytes(_random_map(rng, 120)))
    tracker.commit(tracker.take(virgin))
    virgin.merge_bits(bytes(_grown(rng, virgin.bits, 60)))

    tracker.resync()  # peer lost state / rejected a corrupt delta
    snap = tracker.take(virgin)
    assert snap.full
    rebuilt = bytearray(MAP_SIZE)
    delta.apply_runs(rebuilt, snap.runs)
    assert rebuilt == virgin.bits
