"""Telemetry is observational: fingerprints are mode-independent.

The campaign fingerprint digests everything a campaign found (covered
lines, virgin map, corpus bytes + provenance, engine stats). Running
the identical campaign under ``off``/``metrics``/``full`` must produce
the same digest bit for bit on both nesting stacks — telemetry draws no
RNG, touches no scheduling, and is excluded from the fingerprint.
"""

import pytest

from repro import Vendor
from repro.resilience import ParallelCampaign, campaign_fingerprint

SEED = 11
BUDGET = 30

STACKS = [
    pytest.param("kvm", Vendor.INTEL, id="vmx-intel"),
    pytest.param("kvm", Vendor.AMD, id="svm-amd"),
]


@pytest.mark.parametrize("hypervisor,vendor", STACKS)
def test_fingerprint_identical_across_telemetry_modes(tmp_path, hypervisor,
                                                      vendor):
    prints = {}
    for mode in ("off", "metrics", "full"):
        campaign = ParallelCampaign(
            hypervisor=hypervisor, vendor=vendor, seed=SEED, workers=2,
            sync_every=10, mode="inline", sync_dir=tmp_path / mode,
            telemetry_mode=mode)
        prints[mode] = campaign_fingerprint(campaign.run(BUDGET))
    assert prints["off"] == prints["metrics"] == prints["full"]


def test_unknown_telemetry_mode_is_rejected():
    with pytest.raises(ValueError):
        ParallelCampaign(telemetry_mode="verbose")
