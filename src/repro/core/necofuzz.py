"""The top-level NecoFuzz campaign API.

``NecoFuzz`` wires the agent (target side) to the AFL++-style engine
(input side), seeds the corpus, and runs an iteration-budgeted campaign
while sampling the coverage timeline. This is the public entry point the
examples and benchmarks use:

    >>> from repro import NecoFuzz, Vendor
    >>> campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=7)
    >>> result = campaign.run(iterations=200)
    >>> result.coverage_percent  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import perf
from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.core.agent import Agent, AgentConfig
from repro.core.executor import ComponentToggles
from repro.core.reports import CrashReport
from repro.fuzzer.crashes import CrashStore
from repro.fuzzer.engine import EngineStats, FuzzEngine
from repro.fuzzer.input import INPUT_SIZE, VM_STATE_REGION
from repro.fuzzer.rng import Rng
from repro.schedule import make_schedule
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx.msr_caps import default_capabilities


def golden_seed(vendor: Vendor, rng: Rng | None = None) -> bytes:
    """A seed input whose VM-state region is the golden VM state.

    The other regions (mutation directives, harness choices, vCPU
    configuration) are filled with random bytes: they are *directive*
    bytes, and all-zero directives would degenerate to a single fixed
    behaviour until havoc slowly diversified them.
    """
    rng = rng or Rng(0)
    data = bytearray(rng.bytes(INPUT_SIZE))
    if vendor is Vendor.INTEL:
        image = golden_vmcs(default_capabilities()).serialize()
    else:
        image = golden_vmcb().serialize()
    # Pad or truncate to exactly the region size for both vendors: a
    # short image must not shrink the input below INPUT_SIZE through the
    # slice assignment, and a long one must not spill into the
    # mutation-directive region.
    start, end = VM_STATE_REGION
    size = end - start
    image = image[:size].ljust(size, b"\0")
    data[start:end] = image
    return bytes(data)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    timeline: CoverageTimeline
    covered_lines: set
    instrumented_lines: set
    reports: list[CrashReport]
    engine_stats: EngineStats
    watchdog_restarts: int

    @property
    def coverage_fraction(self) -> float:
        """Cumulative covered fraction of instrumented lines."""
        if not self.instrumented_lines:
            return 0.0
        return len(self.covered_lines) / len(self.instrumented_lines)

    @property
    def coverage_percent(self) -> float:
        """Coverage as a percentage."""
        return 100.0 * self.coverage_fraction

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"coverage {self.coverage_percent:.1f}% "
                f"({len(self.covered_lines)}/{len(self.instrumented_lines)} lines), "
                f"{len(self.reports)} report(s), "
                f"{self.engine_stats.iterations} iterations, "
                f"{self.watchdog_restarts} watchdog restart(s)")


@dataclass
class NecoFuzz:
    """One configured NecoFuzz campaign."""

    hypervisor: str = "kvm"
    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    coverage_guided: bool = True
    patched: frozenset[str] = frozenset()
    runtime_iterations: int = 24
    #: §6.3 extension: asynchronous-event injection (off by default).
    async_events: bool = False
    iterations_per_hour: float = 10.0
    reports_dir: Path | None = None
    #: Optional saved corpus (``FuzzEngine.save_corpus`` layout) loaded
    #: on top of the built-in seeds, so a campaign can resume from a
    #: previous run's queue — or import a sync-partner's findings.
    corpus_dir: Path | None = None
    #: Forwarded to :class:`AgentConfig`: reuse built hypervisors across
    #: same-configuration cases (throughput over bit-for-bit defaults).
    reuse_hypervisor: bool = False
    #: Where deduplicated, minimized crash reproducers land. Defaults to
    #: ``corpus_dir/crashes`` when a corpus directory is set; None (with
    #: no corpus_dir) disables persistence — case isolation still counts
    #: and reports the exceptions.
    crash_dir: Path | None = None
    #: Batched execution (DESIGN.md §12): ``0`` keeps the classic one
    #: case per tick loop; ``N > 0`` runs the campaign under
    #: ``perf.batch_mode(N)``, executing up to N cases per tick through
    #: the struct-of-arrays oracle hot path. Size 1 is pinned
    #: bit-identical to the incremental loop; larger sizes stay
    #: deterministic but schedule mid-tick findings one tick later.
    batch_size: int = 0
    #: Seed scheduling (DESIGN.md §16): ``flat`` is the classic uniform
    #: draw, fingerprint-pinned to the historical behaviour; ``fast``
    #: enables AFLFast-style energy weighting, the operator bandit, and
    #: periodic corpus distillation. Deterministic either way.
    power_schedule: str = "flat"

    def __post_init__(self) -> None:
        self.agent = Agent(AgentConfig(
            hypervisor=self.hypervisor,
            vendor=self.vendor,
            toggles=self.toggles,
            patched=self.patched,
            runtime_iterations=self.runtime_iterations,
            async_events=self.async_events,
            reports_dir=self.reports_dir,
            reuse_hypervisor=self.reuse_hypervisor))
        rng = Rng(self.seed)
        schedule, bandit = make_schedule(self.power_schedule, rng)
        self.engine = FuzzEngine(
            execute=self.agent.execute_for_engine,
            rng=rng,
            coverage_guided=self.coverage_guided,
            warm_batch=self.agent.warm_batch,
            schedule=schedule,
            bandit=bandit)
        # Corpus: a few golden-state seeds with distinct directive
        # regions, plus fully random inputs for raw diversity.
        for salt in range(3):
            self.engine.add_seed(golden_seed(self.vendor,
                                             rng.fork(salt + 1)))
        for _ in range(2):
            self.engine.add_seed(rng.bytes(INPUT_SIZE))
        if self.corpus_dir is not None and Path(self.corpus_dir).is_dir():
            self.engine.load_corpus(Path(self.corpus_dir))
        crash_dir = self.crash_dir
        if crash_dir is None and self.corpus_dir is not None:
            crash_dir = Path(self.corpus_dir) / "crashes"
        if crash_dir is not None:
            self.engine.crashes = CrashStore(
                Path(crash_dir), self.hypervisor, self.vendor.value,
                self.seed)

    def run(self, iterations: int, *, sample_every: int = 10) -> CampaignResult:
        """Run the campaign for *iterations* test cases."""
        label = f"NecoFuzz/{self.hypervisor}/{self.vendor.value}"
        timeline = CoverageTimeline(label, self.iterations_per_hour)
        if self.batch_size > 0:
            with perf.batch_mode(self.batch_size):
                done = 0
                while done < iterations:
                    count = min(self.batch_size, iterations - done)
                    self.engine.step_batch(count)
                    for i in range(done + 1, done + count + 1):
                        if i % sample_every == 0 or i == iterations:
                            timeline.record(i, self.agent.coverage_fraction)
                    done += count
        else:
            for i in range(1, iterations + 1):
                self.engine.step()
                if i % sample_every == 0 or i == iterations:
                    timeline.record(i, self.agent.coverage_fraction)
        return CampaignResult(
            timeline=timeline,
            covered_lines=self.agent.covered_lines(),
            instrumented_lines=set(self.agent.tracer.instrumented),
            reports=list(self.agent.reports.reports),
            engine_stats=self.engine.stats,
            watchdog_restarts=self.agent.watchdog.restarts)
