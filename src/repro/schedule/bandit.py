"""Deterministic Thompson-sampling bandit over mutation operators.

The uniform havoc table treats a bit flip and a block copy as equally
promising forever; the bandit learns, per campaign, which operators
actually light virgin bits on *this* hypervisor target. Each operator
is one arm with a Beta(α, β) posterior over "a case this operator
touched found new coverage":

* havoc stack slots pick the arm whose sampled θ is largest (classic
  Thompson sampling);
* the optional ``splice`` and ``region_havoc`` stages are Bernoulli
  gates — the stage runs with its sampled posterior probability, so a
  stage that keeps paying stays frequent and a useless one decays
  toward (but never reaches) zero.

Every stochastic decision draws from the bandit's **own** RNG stream,
forked off the campaign seed via :meth:`repro.fuzzer.rng.Rng.fork` —
the engine's main stream never sees a bandit draw, and a pickled
bandit (worker checkpoints, lease-log replays) resumes both posterior
and stream position exactly, so fast-mode campaigns replay bit for bit.

Credit assignment is per *case*: the ops applied while building one
candidate are collected on a ticket, and when the case's feedback folds
the whole ticket is rewarded (α+1 on new coverage) or penalised (β+1).
Per-operator use/hit counters are mirrored into the telemetry registry
(``sched.op_uses.*`` / ``sched.op_hits.*``) for the
``repro telemetry-report`` scheduler-learning section.
"""

from __future__ import annotations

from typing import Callable

from repro import telemetry
from repro.fuzzer.mutators import HAVOC_OPS
from repro.fuzzer.rng import Rng

#: ``Rng.fork`` salt for the bandit's private stream. Disjoint from the
#: corpus-seed salts (1..3 in ``NecoFuzz.__post_init__``) and the
#: worker-seed salt space (``repro.parallel.worker._WORKER_SALT``).
_BANDIT_SALT = 0x0B4D17

#: Stage arms: optional pipeline stages the bandit gates, as opposed to
#: the havoc arms it selects among.
STAGE_ARMS = ("splice", "region_havoc")

#: Every arm, in posterior-sampling order (determinism depends on it).
BANDIT_ARMS = tuple(name for name, _ in HAVOC_OPS) + STAGE_ARMS


class OperatorBandit:
    """Thompson sampling over :data:`BANDIT_ARMS` with Beta posteriors."""

    def __init__(self, rng: Rng) -> None:
        self.rng = rng
        self.alpha = {name: 1.0 for name in BANDIT_ARMS}
        self.beta = {name: 1.0 for name in BANDIT_ARMS}
        self.uses = {name: 0 for name in BANDIT_ARMS}
        self.hits = {name: 0 for name in BANDIT_ARMS}
        self._ticket: list[str] = []

    @classmethod
    def fork_from(cls, rng: Rng) -> "OperatorBandit":
        """A bandit on its own child stream of the campaign RNG."""
        return cls(rng.fork(_BANDIT_SALT))

    # --- per-case ticket ----------------------------------------------

    def begin_case(self) -> None:
        """Start collecting the ops applied to the next candidate."""
        self._ticket = []

    def take_ticket(self) -> tuple[str, ...]:
        """The (deduplicated, order-preserving) ops of the current case."""
        ticket = tuple(dict.fromkeys(self._ticket))
        self._ticket = []
        return ticket

    # --- decisions ----------------------------------------------------

    def _sample(self, name: str) -> float:
        return self.rng.beta(self.alpha[name], self.beta[name])

    def choose_havoc(self) -> Callable:
        """Pick one havoc operator by posterior sampling (argmax θ)."""
        best_fn: Callable | None = None
        best_name = ""
        best_theta = -1.0
        for name, fn in HAVOC_OPS:
            theta = self._sample(name)
            if theta > best_theta:
                best_theta = theta
                best_name, best_fn = name, fn
        self._ticket.append(best_name)
        return best_fn

    def gate(self, name: str) -> bool:
        """Probability-matching gate for an optional pipeline stage."""
        applied = self.rng.chance(self._sample(name))
        if applied:
            self._ticket.append(name)
        return applied

    # --- learning -----------------------------------------------------

    def settle(self, ticket: tuple[str, ...], hit: bool) -> None:
        """Reward (or penalise) every op that touched a finished case."""
        for name in ticket:
            self.uses[name] += 1
            telemetry.counter(f"sched.op_uses.{name}")
            if hit:
                self.alpha[name] += 1.0
                self.hits[name] += 1
                telemetry.counter(f"sched.op_hits.{name}")
            else:
                self.beta[name] += 1.0

    def hit_rates(self) -> dict[str, float]:
        """Observed per-operator hit rates (used arms only)."""
        return {name: self.hits[name] / self.uses[name]
                for name in BANDIT_ARMS if self.uses[name]}
