"""Process-pool supervision: heartbeats, deadlines, restarts, breakers.

The supervisor is what makes a process-mode campaign outlive the
failures it provokes. Each worker process stamps a heartbeat file
before every case; the supervisor polls process liveness and heartbeat
freshness, classifies what it sees (see :class:`FailureKind`), and
responds:

* a dead or hung worker is killed (if needed) and **restarted from its
  last checkpoint** with capped exponential backoff, so at most one
  sync round of work is replayed and no corpus entries are lost;
* after ``max_restarts`` consecutive failures on the same shard the
  **circuit breaker** opens and the shard's remainder runs inline in
  the supervisor process — the slow-but-sure path;
* if the process pool is unusable at all (``Process.start`` raising on
  a broken spawn context), the whole campaign falls back to inline
  execution, loudly.

Failure taxonomy
----------------

=============   ===========================================================
CASE_CRASH      exception inside one test case; absorbed *in-process* by
                the engine's case-boundary isolation, never seen here
WORKER_CRASH    the worker OS process died (crash, injected kill, OOM…)
HANG            the heartbeat went stale past the per-case deadline
SYNC_ERROR      the worker exited cleanly but its report/sync artifacts
                were missing or unreadable
=============   ===========================================================
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro import faults, telemetry
from repro.parallel.backoff import expo_backoff
from repro.parallel.scheduler import AdaptiveSync, FileLeaseBoard, LeaseBoardError
from repro.parallel.worker import CampaignWorker, WorkerReport, WorkerSpec

log = logging.getLogger("repro.parallel")


class CampaignAborted(RuntimeError):
    """A shard failed beyond every recovery path the runtime has."""


class FailureKind(Enum):
    """What the supervisor decided went wrong with a worker."""

    CASE_CRASH = "case-crash"
    WORKER_CRASH = "worker-crash"
    HANG = "hang"
    SYNC_ERROR = "sync-error"


@dataclass(frozen=True)
class SupervisorEvent:
    """One observed failure and the action taken on it."""

    worker: int
    kind: FailureKind
    detail: str
    action: str  # "restart" | "circuit-open" | "inline-fallback" | "abort"


@dataclass
class SupervisorConfig:
    """Tunables for the monitoring loop."""

    #: Per-case wall-clock deadline; a heartbeat older than this means
    #: the current case hung.
    case_timeout: float = 30.0
    #: Consecutive failures per shard before the circuit breaker opens.
    max_restarts: int = 3
    #: Exponential-backoff schedule for restarts: base * 2^(n-1), capped.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    poll_interval: float = 0.05
    #: Extra allowance before the first heartbeat (worker startup
    #: instruments modules and builds the agent).
    startup_grace: float = 10.0


def mp_context():
    """A usable multiprocessing context, preferring ``fork``.

    Fork is the fast path (no re-import, arguments shared by COW);
    platforms without it — and platforms where building the context
    itself fails — fall back to the default start method. The chosen
    mode is always logged: silently degrading to spawn (or to inline,
    one level up) has burned enough debugging hours already.
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
        log.debug("process mode: using the fork start method")
        return ctx
    except (ValueError, OSError, RuntimeError) as exc:
        ctx = multiprocessing.get_context()
        log.warning("process mode: fork unavailable (%s); using %r",
                    exc, ctx.get_start_method())
        return ctx


def worker_dir(root: Path, index: int) -> Path:
    return Path(root) / f"worker-{index:03d}"


def heartbeat_path(root: Path, index: int) -> Path:
    return worker_dir(root, index) / "heartbeat"


def checkpoint_path(root: Path, index: int) -> Path:
    return worker_dir(root, index) / "state.pkl"


def report_path(root: Path, index: int) -> Path:
    return Path(root) / f"report-{index:03d}.pkl"


def process_worker_main(spec: WorkerSpec, campaign_kwargs: dict,
                        sample_every: int, sync_every: int, root: str,
                        total_workers: int, case_timeout: float | None,
                        fault_plan: faults.FaultPlan | None,
                        sync_format: str = "v2",
                        subsumption_filter: bool = True,
                        sync_delta: bool = True,
                        shm_name: str | None = None,
                        shm_lock=None,
                        telemetry_mode: str = "metrics",
                        schedule: str = "static",
                        sync_adaptive: bool = False) -> None:
    """Child-process entry point: run one share, write the report.

    Resumes from the shard checkpoint when one exists (this is how a
    restarted replacement avoids redoing the whole share), installs the
    fault plan scoped to this worker, and converts an injected
    :class:`~repro.faults.WorkerKilled` into an abrupt ``os._exit`` —
    no cleanup, no report, exactly like a real worker death.

    When the supervisor created a shared virgin-map segment, its name
    and lock arrive here and the worker publishes into it at sync
    rounds instead of shipping a 64 KiB snapshot in its report. The
    attached mapping is closed in a ``finally`` — even a fault raised
    mid-sync must not leak the segment out of the worker (an injected
    kill is the one exception: ``os._exit`` models a real SIGKILL,
    where the OS reclaims the mapping, not the process).
    """
    rootp = Path(root)
    shard_dir = worker_dir(rootp, spec.index)
    shard_dir.mkdir(parents=True, exist_ok=True)
    telemetry.init_worker(telemetry_mode, rootp, spec.index)
    if fault_plan is not None:
        faults.install(fault_plan)
        faults.set_current_worker(spec.index)
    worker = CampaignWorker.load_checkpoint(checkpoint_path(rootp, spec.index))
    if worker is None:
        from repro.parallel.sync import SyncDirectory

        worker = CampaignWorker(
            spec, campaign_kwargs, sample_every=sample_every,
            sync=SyncDirectory(rootp, spec.index, total_workers,
                               sync_format=sync_format,
                               subsumption_filter=subsumption_filter,
                               delta_plane=sync_delta),
            heartbeat_path=heartbeat_path(rootp, spec.index),
            checkpoint_path=checkpoint_path(rootp, spec.index),
            case_timeout=case_timeout)
    shm_publisher = None
    if shm_name is not None and shm_lock is not None:
        from repro.parallel.shared_map import publisher

        shm_publisher = publisher(shm_name, shm_lock)
        worker.virgin_publisher = shm_publisher
    adaptive = (AdaptiveSync(base=sync_every) if sync_adaptive else None)
    try:
        try:
            if schedule == "stealing":
                board = FileLeaseBoard(rootp)
                report = worker.run_leases(board, adaptive=adaptive)
            else:
                report = worker.run_share(sync_every, adaptive)
        finally:
            if shm_publisher is not None:
                shm_publisher.close()
    except faults.WorkerKilled:
        os._exit(faults.KILL_EXIT_CODE)
    report.telemetry = telemetry.snapshot()
    if telemetry_mode != "off":
        telemetry.save_metrics(shard_dir / telemetry.METRICS_NAME)
        telemetry.flush()
    from repro.fuzzer.crashes import atomic_write_bytes

    atomic_write_bytes(report_path(rootp, spec.index), pickle.dumps(report))


@dataclass
class Supervisor:
    """Runs process-mode workers to completion, whatever it takes."""

    root: Path
    specs: list[WorkerSpec]
    campaign_kwargs: dict
    sample_every: int
    sync_every: int
    config: SupervisorConfig = field(default_factory=SupervisorConfig)
    fault_plan: faults.FaultPlan | None = None
    sync_format: str = "v2"
    subsumption_filter: bool = True
    #: Coverage-sidecar batch rejection in the workers (DESIGN.md §15).
    sync_delta: bool = True
    telemetry_mode: str = "metrics"
    #: "static" (fixed shares) or "stealing" (shared lease board).
    schedule: str = "static"
    #: Adaptive sync-interval back-off in the workers (DESIGN.md §13).
    sync_adaptive: bool = False
    #: The shared lease board when ``schedule == "stealing"`` — the
    #: supervisor reclaims a confirmed-dead worker's claims from it
    #: before restarting, so stragglers' leases are re-issued instead
    #: of lost.
    lease_board: FileLeaseBoard | None = None
    events: list[SupervisorEvent] = field(default_factory=list)
    restarts: dict[int, int] = field(default_factory=dict)
    #: Heartbeat-staleness tracking: index -> ((mtime_ns, size),
    #: monotonic time that token was first observed). Hang detection
    #: compares monotonic now against monotonic first-seen — file
    #: mtimes are only ever compared with other mtimes, never with the
    #: (NTP-steppable) wall clock.
    _beat_seen: dict = field(default_factory=dict, init=False, repr=False)
    #: Final shared virgin-map snapshot; ``None`` when the segment was
    #: unavailable and reports carried full snapshots instead.
    merged_virgin_bits: bytes | None = field(default=None, init=False)
    #: Live SharedVirginMap while :meth:`run` is executing.
    _shared: object = field(default=None, init=False, repr=False)

    def run(self) -> list[WorkerReport]:
        """Supervise every shard to a report; raises CampaignAborted
        only when even the inline last resort fails."""
        from repro.parallel.shared_map import SharedVirginMap

        ctx = mp_context()
        self._shared = SharedVirginMap.create(ctx)
        try:
            return self._run(ctx)
        finally:
            if self._shared is not None:
                self.merged_virgin_bits = self._shared.snapshot()
                self._shared.destroy()
                self._shared = None

    def _run(self, ctx) -> list[WorkerReport]:
        reports: dict[int, WorkerReport] = {}
        running: dict[int, tuple] = {}  # index -> (process, started_at)
        pending = list(self.specs)
        by_index = {spec.index: spec for spec in self.specs}

        while len(reports) < len(self.specs):
            # Launch (or relaunch) pending shards.
            while pending:
                spec = pending.pop(0)
                # A dead incarnation's last heartbeat is stale by
                # definition; left in place it would flag the fresh
                # process as hung before it stamps its first case.
                try:
                    heartbeat_path(self.root, spec.index).unlink()
                except OSError:
                    pass
                self._beat_seen.pop(spec.index, None)
                shared = self._shared
                try:
                    proc = ctx.Process(
                        target=process_worker_main,
                        args=(spec, self.campaign_kwargs, self.sample_every,
                              self.sync_every, str(self.root),
                              len(self.specs), self.config.case_timeout,
                              self.fault_plan, self.sync_format,
                              self.subsumption_filter, self.sync_delta,
                              shared.name if shared else None,
                              shared.lock if shared else None,
                              self.telemetry_mode, self.schedule,
                              self.sync_adaptive),
                        daemon=False)
                    proc.start()
                except (OSError, RuntimeError, pickle.PicklingError) as exc:
                    # The pool itself is unusable: run this shard inline.
                    log.warning("worker %d: process start failed (%s); "
                                "falling back to inline execution",
                                spec.index, exc)
                    self.events.append(SupervisorEvent(
                        spec.index, FailureKind.WORKER_CRASH,
                        f"process start failed: {exc}", "inline-fallback"))
                    telemetry.counter("supervisor.inline_fallbacks")
                    telemetry.event("supervisor.inline-fallback",
                                    worker=spec.index, detail=str(exc))
                    reports[spec.index] = self._run_shard_inline(spec)
                    continue
                running[spec.index] = (proc, time.monotonic())

            # Poll the herd.
            progressed = False
            for index, (proc, started) in list(running.items()):
                if proc.is_alive():
                    if self._hung(index, started):
                        proc.terminate()
                        proc.join(timeout=self.config.case_timeout)
                        if proc.is_alive():
                            proc.kill()
                            proc.join()
                        running.pop(index)
                        self._disarm_after(index, FailureKind.HANG)
                        self._handle_failure(
                            index, FailureKind.HANG,
                            "heartbeat stale past the case deadline",
                            pending, reports, by_index)
                        progressed = True
                    continue
                proc.join()
                running.pop(index)
                progressed = True
                if proc.exitcode == 0:
                    report = self._load_report(index)
                    if report is not None:
                        reports[index] = report
                        self.restarts.pop(index, None)
                    else:
                        self._handle_failure(
                            index, FailureKind.SYNC_ERROR,
                            "worker exited cleanly but left no readable "
                            "report", pending, reports, by_index)
                else:
                    self._disarm_after(index, FailureKind.WORKER_CRASH)
                    self._handle_failure(
                        index, FailureKind.WORKER_CRASH,
                        f"exit code {proc.exitcode}",
                        pending, reports, by_index)
            if not progressed and running:
                time.sleep(self.config.poll_interval)
        return [reports[spec.index] for spec in self.specs]

    # --- classification helpers ----------------------------------------

    def _hung(self, index: int, started: float) -> bool:
        """Stale-heartbeat detection on the monotonic clock only.

        The obvious ``time.time() - st_mtime > budget`` check is wrong:
        an NTP step (or any wall-clock skew between the clock that
        stamps mtimes and the one ``time.time`` reads) makes a healthy
        worker look hung — while ``started`` was already monotonic, so
        the two branches disagreed about what a second even was. A
        heartbeat's *mtime* is therefore only compared against other
        observations of the same file: the supervisor remembers the
        last (mtime_ns, size) token per worker and the monotonic
        instant it first saw that token; the worker is hung when the
        token has not changed for ``case_timeout`` monotonic seconds.
        """
        beat = heartbeat_path(self.root, index)
        try:
            stat = beat.stat()
        except OSError:
            # No heartbeat yet: measure from process start, with grace
            # for agent construction and module instrumentation.
            self._beat_seen.pop(index, None)
            return (time.monotonic() - started
                    > self.config.case_timeout + self.config.startup_grace)
        token = (stat.st_mtime_ns, stat.st_size)
        now = time.monotonic()
        seen = self._beat_seen.get(index)
        if seen is None or seen[0] != token:
            self._beat_seen[index] = (token, now)
            return False
        return now - seen[1] > self.config.case_timeout

    def _load_report(self, index: int) -> WorkerReport | None:
        try:
            report = pickle.loads(report_path(self.root, index).read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return report if isinstance(report, WorkerReport) else None

    def _disarm_after(self, index: int, kind: FailureKind) -> None:
        """Consume the injected fault a dead child fired in-memory.

        A child that died took its copy of the plan's ``consumed`` set
        with it; without this, the replacement worker would replay the
        same case and die on the same spec forever.
        """
        if self.fault_plan is None:
            return
        kinds = (("kill_worker",) if kind is FailureKind.WORKER_CRASH
                 else ("delay_case",))
        self.fault_plan.disarm(index, kinds)

    # --- recovery -------------------------------------------------------

    def _handle_failure(self, index: int, kind: FailureKind, detail: str,
                        pending: list, reports: dict, by_index: dict) -> None:
        if self.lease_board is not None:
            # Every path into here has confirmed the worker process
            # dead (exited, or terminated after a stale heartbeat), so
            # its unfinished leases are safe to re-issue: the partial
            # work died unrecorded with the process, and the restarted
            # replacement resumes from its last checkpoint and claims
            # fresh — a lease is only ever *executed to completion*
            # once.
            reclaimed = self.lease_board.reclaim(index)
            if reclaimed:
                log.warning("worker %d: reclaimed %d unfinished lease(s) "
                            "for re-issue", index, reclaimed)
                telemetry.event("sched.reclaim", worker=index,
                                leases=reclaimed)
        count = self.restarts.get(index, 0) + 1
        self.restarts[index] = count
        telemetry.counter(f"supervisor.failures.{kind.value}")
        if count > self.config.max_restarts:
            log.error("worker %d: %s (%s); circuit breaker open after "
                      "%d failures, finishing the shard inline",
                      index, kind.value, detail, count - 1)
            self.events.append(SupervisorEvent(index, kind, detail,
                                               "circuit-open"))
            telemetry.counter("supervisor.circuit_opens")
            telemetry.event("supervisor.circuit-open", worker=index,
                            kind=kind.value, detail=detail)
            reports[index] = self._run_shard_inline(by_index[index])
            return
        delay = expo_backoff(self.config.backoff_base,
                             self.config.backoff_cap, count)
        log.warning("worker %d: %s (%s); restart %d/%d after %.2fs",
                    index, kind.value, detail, count,
                    self.config.max_restarts, delay)
        self.events.append(SupervisorEvent(index, kind, detail, "restart"))
        telemetry.counter("supervisor.restarts")
        telemetry.event("supervisor.restart", worker=index, kind=kind.value,
                        attempt=count, detail=detail)
        time.sleep(delay)
        pending.append(by_index[index])

    def _run_shard_inline(self, spec: WorkerSpec) -> WorkerReport:
        """Last resort: finish one shard in the supervisor process."""
        from repro.parallel.sync import SyncDirectory

        worker = CampaignWorker.load_checkpoint(
            checkpoint_path(self.root, spec.index))
        if worker is None:
            worker = CampaignWorker(
                spec, self.campaign_kwargs, sample_every=self.sample_every,
                sync=SyncDirectory(self.root, spec.index, len(self.specs),
                                   sync_format=self.sync_format,
                                   subsumption_filter=self.subsumption_filter,
                                   delta_plane=self.sync_delta),
                heartbeat_path=heartbeat_path(self.root, spec.index),
                checkpoint_path=checkpoint_path(self.root, spec.index),
                case_timeout=self.config.case_timeout)
        if self._shared is not None:
            worker.virgin_publisher = self._shared.publish
        previous_worker = faults.current_worker()
        if self.fault_plan is not None:
            faults.install(self.fault_plan)
        adaptive = (AdaptiveSync(base=self.sync_every)
                    if self.sync_adaptive else None)
        try:
            if self.lease_board is not None:
                return worker.run_leases(self.lease_board,
                                         adaptive=adaptive)
            return worker.run_share(self.sync_every, adaptive)
        except faults.WorkerKilled as death:
            self.events.append(SupervisorEvent(
                spec.index, FailureKind.WORKER_CRASH, str(death), "abort"))
            raise CampaignAborted(
                f"shard {spec.index} failed inline after the circuit "
                f"breaker opened: {death}") from death
        except LeaseBoardError as damage:
            # The inline fallback shares the board file with everyone
            # else; if the board itself is the casualty there is no
            # schedule left to run, and the operator needs the board
            # path, not a JSON traceback.
            self.events.append(SupervisorEvent(
                spec.index, FailureKind.SYNC_ERROR, str(damage), "abort"))
            raise CampaignAborted(
                f"shard {spec.index} cannot continue: {damage}") from damage
        finally:
            faults.set_current_worker(previous_worker)
