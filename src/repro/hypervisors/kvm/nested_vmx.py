"""KVM nested VMX emulation — the analogue of ``arch/x86/kvm/vmx/nested.c``.

This file is the Intel-side *coverage target*: the paper restricts KVM
coverage measurement to ``{vmx,svm}/nested.c``, and every L2-to-L0 and
nested L1-to-L0 VM exit eventually dispatches into the handlers here.

Structure mirrors the real file: one handler per VMX instruction
(`handle_vmxon` ... `handle_invvpid`), the VM-entry consistency checks
KVM re-implements in software (`check_vm_controls`, `check_host_state`,
`check_guest_state`, `check_msr_entries`), VMCS12→VMCS02 merging
(`prepare_vmcs02`), the nested exit path (`nested_vmx_vmexit`), and the
exit-reflection policy (`l1_wants_exit`).

Seeded bugs (controlled by the ``patched`` set, default unpatched):

* ``cr4_pae_consistency`` — CVE-2023-30456: the guest-state checks do
  not reject "IA-32e mode guest" with ``CR4.PAE = 0``; with EPT disabled
  the shadow page walk then indexes the PDPTE cache out of bounds.
* ``dummy_root`` — invalid EPTP: ``mmu_check_root()`` failure triggers a
  triple-fault exit to L1 although L2 never ran; the fix loads a dummy
  root backed by the zero page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.cpu.physical_cpu import VmxCpu
from repro.hypervisors.base import ExecResult, GuestInstruction, SanitizerKind
from repro.hypervisors.kvm.mmu import KvmMmu
from repro.hypervisors.kvm.module import KvmModuleParams
from repro.hypervisors.memory import GuestMemory
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    ExitControls,
    PinBased,
    ProcBased,
    Secondary,
)
from repro.vmx.exit_reasons import ENTRY_FAILURE_BIT, ExitReason, VmInstructionError
from repro.vmx.msr_caps import default_capabilities
from repro.vmx.vmcs import Vmcs
from repro.arch.msr import CANONICAL_MSRS, MSR_LOAD_FORBIDDEN, is_canonical
from repro.arch.paging import MAX_PHYSADDR_WIDTH, EptPointer

#: "current VMCS pointer is invalid" sentinel (KVM's INVALID_GPA).
VMPTR_INVALID = (1 << 64) - 1

#: Host-physical addresses where the L0 hypervisor keeps its VMCSs.
VMCS01_HPA = 0x100000
VMCS02_HPA = 0x101000
L0_VMXON_HPA = 0x102000

#: Guest-state field specs, precomputed for the VMCS12->VMCS02 merge.
_GUEST_SPECS: tuple = tuple(
    spec for spec in F.ALL_FIELDS if spec.group is F.FieldGroup.GUEST)
_GUEST_ENCODINGS: frozenset[int] = frozenset(s.encoding for s in _GUEST_SPECS)

#: VMCS12 fields feeding the control section of prepare_vmcs02; when
#: none of these changed since the cached merge, that section is skipped.
_MERGE_CONTROL_INPUTS: frozenset[int] = frozenset({
    F.PIN_BASED_VM_EXEC_CONTROL, F.CPU_BASED_VM_EXEC_CONTROL,
    F.SECONDARY_VM_EXEC_CONTROL, F.VM_ENTRY_CONTROLS, F.EXCEPTION_BITMAP,
    F.VM_ENTRY_INTR_INFO_FIELD, F.VM_ENTRY_EXCEPTION_ERROR_CODE,
})


@dataclass
class VmxNestedState:
    """Per-vCPU nested VMX state (struct nested_vmx analogue)."""

    vmxon: bool = False
    vmxon_ptr: int = VMPTR_INVALID
    current_vmptr: int = VMPTR_INVALID
    guest_mode: bool = False          # True while L2 is active
    l2_ever_ran: bool = False
    prev_l2_long_mode: bool = False
    vmcs02: Vmcs = field(default_factory=Vmcs)
    #: Incremental-merge cache: (vmcs12, vmcs12 generation, merged vmcs02).
    merge_cache: tuple | None = None
    #: L1 architectural state KVM tracks for the vCPU.
    cr0: int = Cr0.PE | Cr0.PG | Cr0.NE | Cr0.ET
    cr4: int = Cr4.PAE | Cr4.VMXE
    efer: int = Efer.LME | Efer.LMA


class NestedVmx:
    """The nested-virtualization half of kvm-intel, for one VM."""

    def __init__(self, hypervisor, params: KvmModuleParams,
                 memory: GuestMemory, patched: frozenset[str] = frozenset()) -> None:
        self.hv = hypervisor
        self.params = params
        self.memory = memory
        self.patched = patched
        #: Capabilities exposed to L1 (shaped by module parameters).
        self.caps = params.l1_vmx_capabilities()
        #: The physical CPU under L0 (full capabilities).
        self.phys = VmxCpu(default_capabilities())
        self.phys.vmxon(L0_VMXON_HPA)
        self.mmu = KvmMmu(memory)
        self._vmcs01 = golden_vmcs(self.phys.caps)
        # Prototype for vmcs02 construction — building the golden image
        # field by field on every nested entry would dominate runtime.
        self._vmcs02_proto = golden_vmcs(self.phys.caps)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    HANDLERS = {
        "vmxon": "handle_vmxon",
        "vmxoff": "handle_vmxoff",
        "vmclear": "handle_vmclear",
        "vmptrld": "handle_vmptrld",
        "vmptrst": "handle_vmptrst",
        "vmread": "handle_vmread",
        "vmwrite": "handle_vmwrite",
        "vmlaunch": "handle_vmlaunch",
        "vmresume": "handle_vmresume",
        "invept": "handle_invept",
        "invvpid": "handle_invvpid",
        "vmcall": "handle_vmcall",
    }

    def handle(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate one VMX instruction executed by L1."""
        if not self.params.nested:
            return ExecResult.fault("#UD: nested virtualization disabled")
        handler_name = self.HANDLERS.get(instr.mnemonic)
        if handler_name is None:
            return ExecResult.fault(f"#UD: unknown VMX instruction {instr.mnemonic}")
        return getattr(self, handler_name)(state, instr)

    # --- VMfail helpers ----------------------------------------------------

    @staticmethod
    def _vmfail_invalid() -> ExecResult:
        return ExecResult.success("VMfailInvalid", value=-1)

    def _vmfail_valid(self, state: VmxNestedState,
                      error: VmInstructionError) -> ExecResult:
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is not None:
            vmcs12.write(F.VM_INSTRUCTION_ERROR, int(error))
        return ExecResult.success(f"VMfailValid({int(error)})", value=int(error))

    def get_vmcs12(self, state: VmxNestedState) -> Vmcs | None:
        """The VMCS12 currently selected by L1, if any."""
        if state.current_vmptr == VMPTR_INVALID:
            return None
        return self.memory.get_vmcs(state.current_vmptr)

    # ------------------------------------------------------------------
    # Instruction handlers
    # ------------------------------------------------------------------

    def handle_vmxon(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxon` instruction."""
        if not state.cr4 & Cr4.VMXE:
            return ExecResult.fault("#UD: CR4.VMXE clear")
        if state.vmxon:
            return self._vmfail_valid(state, VmInstructionError.VMXON_IN_VMX_ROOT)
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return self._vmfail_invalid()
        region = self.memory.ensure_vmcs(ptr, self.caps.vmcs_revision_id)
        if region.revision_id != self.caps.vmcs_revision_id:
            return self._vmfail_invalid()
        state.vmxon = True
        state.vmxon_ptr = ptr
        state.current_vmptr = VMPTR_INVALID
        return ExecResult.success("vmxon ok")

    def handle_vmxoff(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxoff` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        state.vmxon = False
        state.current_vmptr = VMPTR_INVALID
        return ExecResult.success("vmxoff ok")

    def handle_vmclear(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmclear` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return self._vmfail_valid(state, VmInstructionError.VMCLEAR_INVALID_ADDRESS)
        if ptr == state.vmxon_ptr:
            return self._vmfail_valid(state, VmInstructionError.VMCLEAR_VMXON_POINTER)
        vmcs12 = self.memory.ensure_vmcs(ptr, self.caps.vmcs_revision_id)
        vmcs12.clear()
        if state.current_vmptr == ptr:
            state.current_vmptr = VMPTR_INVALID
        return ExecResult.success("vmclear ok")

    def handle_vmptrld(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrld` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        ptr = instr.op("addr")
        if ptr & 0xFFF or not self.memory.in_guest_ram(ptr):
            return self._vmfail_valid(state, VmInstructionError.VMPTRLD_INVALID_ADDRESS)
        if ptr == state.vmxon_ptr:
            return self._vmfail_valid(state, VmInstructionError.VMPTRLD_VMXON_POINTER)
        vmcs12 = self.memory.get_vmcs(ptr)
        if vmcs12 is None or vmcs12.revision_id != self.caps.vmcs_revision_id:
            return self._vmfail_valid(
                state, VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID)
        state.current_vmptr = ptr
        return ExecResult.success("vmptrld ok")

    def handle_vmptrst(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrst` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        return ExecResult.success("vmptrst ok", value=state.current_vmptr)

    def handle_vmread(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmread` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return self._vmfail_invalid()
        encoding = instr.op("field")
        spec = F.SPEC_BY_ENCODING.get(encoding)
        if spec is None:
            return self._vmfail_valid(
                state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        return ExecResult.success("vmread ok", value=vmcs12.read(encoding))

    def handle_vmwrite(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmwrite` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return self._vmfail_invalid()
        encoding = instr.op("field")
        spec = F.SPEC_BY_ENCODING.get(encoding)
        if spec is None:
            return self._vmfail_valid(
                state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        if spec.group is F.FieldGroup.READ_ONLY:
            return self._vmfail_valid(
                state, VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)
        vmcs12.write(encoding, instr.op("value"))
        return ExecResult.success("vmwrite ok")

    def handle_vmlaunch(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmlaunch` instruction."""
        return self.nested_vmx_run(state, launch=True)

    def handle_vmresume(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmresume` instruction."""
        return self.nested_vmx_run(state, launch=False)

    def handle_invept(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invept` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        if not self.params.ept:
            return ExecResult.fault("#UD: INVEPT unsupported without EPT")
        ept_type = instr.op("type")
        if ept_type not in (1, 2):  # single-context, all-context
            return self._vmfail_valid(
                state, VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        if ept_type == 1:
            eptp = EptPointer(instr.op("eptp"))
            if not eptp.valid():
                return self._vmfail_valid(
                    state, VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        return ExecResult.success("invept ok")

    def handle_invvpid(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invvpid` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        if not self.params.vpid:
            return ExecResult.fault("#UD: INVVPID unsupported without VPID")
        vpid_type = instr.op("type")
        if vpid_type > 3:
            return self._vmfail_valid(
                state, VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        vpid = instr.op("vpid")
        if vpid_type != 2 and vpid == 0:  # non-all-context needs VPID != 0
            return self._vmfail_valid(
                state, VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        if vpid_type == 0 and not is_canonical(instr.op("linear_addr")):
            return self._vmfail_valid(
                state, VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        return ExecResult.success("invvpid ok")

    def handle_vmcall(self, state: VmxNestedState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmcall` instruction."""
        if state.vmxon and state.current_vmptr != VMPTR_INVALID:
            vmcs12 = self.get_vmcs12(state)
            if vmcs12 is not None and not vmcs12.launched:
                return self._vmfail_valid(
                    state, VmInstructionError.VMCALL_NONCLEAR_VMCS)
        return ExecResult.success("vmcall ok (hypercall nop)")

    # ------------------------------------------------------------------
    # Nested VM entry (nested_vmx_run analogue)
    # ------------------------------------------------------------------

    def nested_vmx_run(self, state: VmxNestedState, *, launch: bool) -> ExecResult:
        """The nested VM entry path (vmlaunch/vmresume from L1)."""
        if not state.vmxon:
            return ExecResult.fault("#UD: not in VMX operation")
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is None:
            return self._vmfail_invalid()
        if launch and vmcs12.launched:
            return self._vmfail_valid(
                state, VmInstructionError.VMLAUNCH_NONCLEAR_VMCS)
        if not launch and not vmcs12.launched:
            return self._vmfail_valid(
                state, VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

        # Software re-implementation of the hardware checks (§2.2). The
        # three pure-VMCS12 checks are memoized on the structure (keyed
        # by this instance — a VMCS12 belongs to exactly one hypervisor,
        # whose caps/patches are constant for its lifetime) and re-run
        # only when fields they read changed; check_msr_entries reads
        # guest memory, so it is never memoized.
        if perf.memoized_check(vmcs12, ("kvm_vmx", id(self), "controls"),
                               lambda: self.check_vm_controls(vmcs12)):
            return self._vmfail_valid(
                state, VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS)
        if perf.memoized_check(vmcs12, ("kvm_vmx", id(self), "host"),
                               lambda: self.check_host_state(vmcs12)):
            return self._vmfail_valid(
                state, VmInstructionError.ENTRY_INVALID_HOST_STATE)
        guest_problems = perf.memoized_check(
            vmcs12, ("kvm_vmx", id(self), "guest"),
            lambda: self.check_guest_state(vmcs12))
        if guest_problems:
            return self._fail_entry(state, vmcs12,
                                    ExitReason.INVALID_GUEST_STATE,
                                    detail=guest_problems[0])

        msr_problem = self.check_msr_entries(vmcs12)
        if msr_problem is not None:
            return self._fail_entry(state, vmcs12, ExitReason.MSR_LOAD_FAIL,
                                    detail=msr_problem)

        prep = self.prepare_vmcs02(state, vmcs12)
        if prep is not None:
            return prep

        outcome = self._enter_l2(state, launch=launch)
        if outcome is not None:
            return outcome

        if launch:
            vmcs12.mark_launched()
        state.guest_mode = True
        state.l2_ever_ran = True
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        state.prev_l2_long_mode = bool(entry & EntryControls.IA32E_MODE_GUEST)
        return ExecResult.success("nested VM entry", level=2)

    def _fail_entry(self, state: VmxNestedState, vmcs12: Vmcs,
                    reason: ExitReason, detail: str) -> ExecResult:
        """A VM entry that fails with an exit back to L1 (reason bit 31)."""
        full = int(reason) | ENTRY_FAILURE_BIT
        vmcs12.write(F.VM_EXIT_REASON, full)
        vmcs12.write(F.EXIT_QUALIFICATION, 0)
        return ExecResult.success(f"entry failed: {detail}",
                                  exit_reason=full, level=1)

    def _enter_l2(self, state: VmxNestedState, *, launch: bool) -> ExecResult | None:
        """Run VMCS02 on the physical CPU; None means success."""
        self.phys.vmclear(VMCS02_HPA)
        image = state.vmcs02.copy()
        image.clear()
        self.phys.install_vmcs(VMCS02_HPA, image)
        self.phys.vmptrld(VMCS02_HPA)
        outcome = self.phys.vmlaunch()
        if not outcome.entered:
            # KVM WARNs when the hardware rejects a vmcs02 it built.
            self.hv.report_sanitizer(
                SanitizerKind.WARN, "nested_vmx_run",
                f"hardware rejected vmcs02: "
                f"{outcome.violations[0] if outcome.violations else outcome.vmx_result.kind}")
            vmcs12 = self.get_vmcs12(state)
            assert vmcs12 is not None
            return self._fail_entry(state, vmcs12,
                                    ExitReason.INVALID_GUEST_STATE,
                                    detail="vmcs02 rejected by hardware")
        state.vmcs02 = image
        return None

    # ------------------------------------------------------------------
    # Consistency checks (KVM's software re-implementation)
    # ------------------------------------------------------------------

    def check_vm_controls(self, vmcs12: Vmcs) -> list[str]:
        """nested_vmx_check_controls() analogue; returns problems."""
        problems: list[str] = []
        pin = vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        exit_ = vmcs12.read(F.VM_EXIT_CONTROLS)

        if not self.caps.pin_based.permits(pin):
            problems.append("pin-based controls violate MSR capabilities")
        if not self.caps.proc_based.permits(proc):
            problems.append("proc-based controls violate MSR capabilities")
        secondary_on = bool(proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS)
        if secondary_on and not self.caps.secondary.permits(proc2):
            problems.append("secondary controls violate MSR capabilities")
        if not self.caps.entry.permits(entry):
            problems.append("entry controls violate MSR capabilities")
        if not self.caps.exit.permits(exit_):
            problems.append("exit controls violate MSR capabilities")
        effective2 = proc2 if secondary_on else 0

        if vmcs12.read(F.CR3_TARGET_COUNT) > 4:
            problems.append("cr3 target count > 4")

        if proc & ProcBased.USE_IO_BITMAPS:
            for enc in (F.IO_BITMAP_A, F.IO_BITMAP_B):
                if not self._gpa_ok(vmcs12.read(enc), 4096):
                    problems.append("bad I/O bitmap address")
        if proc & ProcBased.USE_MSR_BITMAPS:
            if not self._gpa_ok(vmcs12.read(F.MSR_BITMAP), 4096):
                problems.append("bad MSR bitmap address")
        if proc & ProcBased.USE_TPR_SHADOW:
            if not self._gpa_ok(vmcs12.read(F.VIRTUAL_APIC_PAGE_ADDR), 4096):
                problems.append("bad virtual-APIC page")
        else:
            if effective2 & (Secondary.VIRTUALIZE_X2APIC
                             | Secondary.APIC_REGISTER_VIRT
                             | Secondary.VIRTUAL_INTR_DELIVERY):
                problems.append("APIC virtualization without TPR shadow")

        if pin & PinBased.VIRTUAL_NMIS and not pin & PinBased.NMI_EXITING:
            problems.append("virtual NMIs without NMI exiting")
        if proc & ProcBased.NMI_WINDOW_EXITING and not pin & PinBased.VIRTUAL_NMIS:
            problems.append("NMI-window exiting without virtual NMIs")

        if pin & PinBased.POSTED_INTERRUPTS:
            if not effective2 & Secondary.VIRTUAL_INTR_DELIVERY:
                problems.append("posted interrupts without vintr delivery")
            if not exit_ & ExitControls.ACK_INTR_ON_EXIT:
                problems.append("posted interrupts without ack-on-exit")
            if not self._gpa_ok(vmcs12.read(F.POSTED_INTR_DESC_ADDR), 64):
                problems.append("bad posted-interrupt descriptor")

        if effective2 & Secondary.ENABLE_EPT:
            if not self._check_eptp(vmcs12.read(F.EPT_POINTER)):
                problems.append("invalid EPT pointer format")
        if effective2 & Secondary.UNRESTRICTED_GUEST and not effective2 & Secondary.ENABLE_EPT:
            problems.append("unrestricted guest without EPT")
        if effective2 & Secondary.ENABLE_VPID and not vmcs12.read(F.VIRTUAL_PROCESSOR_ID):
            problems.append("VPID zero with enable-VPID")
        if effective2 & Secondary.ENABLE_PML:
            if not effective2 & Secondary.ENABLE_EPT:
                problems.append("PML without EPT")
            if not self._gpa_ok(vmcs12.read(F.PML_ADDRESS), 4096):
                problems.append("bad PML address")
        if effective2 & Secondary.SHADOW_VMCS:
            if not self._gpa_ok(vmcs12.read(F.VMREAD_BITMAP), 4096):
                problems.append("bad vmread bitmap")
            if not self._gpa_ok(vmcs12.read(F.VMWRITE_BITMAP), 4096):
                problems.append("bad vmwrite bitmap")
        if effective2 & Secondary.ENABLE_VMFUNC:
            if vmcs12.read(F.VM_FUNCTION_CONTROL) & ~1:
                problems.append("unsupported VM functions")

        # Isolation rule (§2.2): VMCS12 structures must not point at L0.
        for enc in (F.IO_BITMAP_A, F.IO_BITMAP_B, F.MSR_BITMAP,
                    F.VIRTUAL_APIC_PAGE_ADDR, F.APIC_ACCESS_ADDR,
                    F.PML_ADDRESS, F.VM_ENTRY_MSR_LOAD_ADDR,
                    F.VM_EXIT_MSR_STORE_ADDR, F.VM_EXIT_MSR_LOAD_ADDR):
            if self.memory.in_l0_reserved(vmcs12.read(enc)):
                problems.append("guest structure points into L0 memory")
                break

        info = vmcs12.read(F.VM_ENTRY_INTR_INFO_FIELD)
        if info >> 31:
            from repro.arch.exceptions import InterruptionInfo
            if not InterruptionInfo.decode(info).consistent():
                problems.append("inconsistent event injection")
        return problems

    def check_host_state(self, vmcs12: Vmcs) -> list[str]:
        """nested_vmx_check_host_state() analogue."""
        problems: list[str] = []
        cr0 = vmcs12.read(F.HOST_CR0)
        cr4 = vmcs12.read(F.HOST_CR4)
        if not self.caps.cr0_valid_for_vmx(cr0):
            problems.append("host CR0 fixed-bit violation")
        if not self.caps.cr4_valid_for_vmx(cr4):
            problems.append("host CR4 fixed-bit violation")
        if vmcs12.read(F.HOST_CR3) >> MAX_PHYSADDR_WIDTH:
            problems.append("host CR3 out of range")
        for enc in (F.HOST_RIP, F.HOST_GDTR_BASE, F.HOST_IDTR_BASE,
                    F.HOST_TR_BASE, F.HOST_FS_BASE, F.HOST_GS_BASE,
                    F.HOST_IA32_SYSENTER_ESP, F.HOST_IA32_SYSENTER_EIP):
            if not is_canonical(vmcs12.read(enc)):
                problems.append("host address not canonical")
                break
        if not vmcs12.read(F.HOST_CS_SELECTOR):
            problems.append("host CS selector null")
        if not vmcs12.read(F.HOST_TR_SELECTOR):
            problems.append("host TR selector null")
        for name, enc in F.HOST_SELECTOR_FIELDS.items():
            if vmcs12.read(enc) & 7:
                problems.append(f"host {name} selector TI/RPL set")
                break
        exit_ = vmcs12.read(F.VM_EXIT_CONTROLS)
        if exit_ & ExitControls.LOAD_EFER:
            efer = vmcs12.read(F.HOST_IA32_EFER)
            if efer & Efer.RESERVED:
                problems.append("host EFER reserved bits")
            host64 = bool(exit_ & ExitControls.HOST_ADDR_SPACE_SIZE)
            if bool(efer & Efer.LMA) != host64 or bool(efer & Efer.LME) != host64:
                problems.append("host EFER.LMA/LME mismatch")
        return problems

    def check_guest_state(self, vmcs12: Vmcs) -> list[str]:
        """nested_vmx_check_guest_state() analogue.

        The CVE-2023-30456 omission lives here: without the
        ``cr4_pae_consistency`` patch, the IA-32e/CR4.PAE rule is not
        enforced — matching pre-fix KVM, which deferred to hardware that
        silently tolerates the combination.
        """
        problems: list[str] = []
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        ia32e = bool(entry & EntryControls.IA32E_MODE_GUEST)
        cr0 = vmcs12.read(F.GUEST_CR0)
        cr4 = vmcs12.read(F.GUEST_CR4)

        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
        effective2 = proc2 if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS else 0
        unrestricted = bool(effective2 & Secondary.UNRESTRICTED_GUEST)

        if not self.caps.cr0_valid_for_vmx(cr0, unrestricted_guest=unrestricted):
            problems.append("guest CR0 fixed-bit violation")
        if not self.caps.cr4_valid_for_vmx(cr4):
            problems.append("guest CR4 fixed-bit violation")
        if cr0 & Cr0.PG and not cr0 & Cr0.PE:
            problems.append("guest PG without PE")
        if ia32e:
            if not cr0 & Cr0.PG:
                problems.append("IA-32e guest without paging")
            if "cr4_pae_consistency" in self.patched and not cr4 & Cr4.PAE:
                # The 2023 fix: reject the state hardware would silently
                # tolerate but KVM's software walker cannot handle.
                problems.append("IA-32e guest requires CR4.PAE")
        if vmcs12.read(F.GUEST_CR3) >> MAX_PHYSADDR_WIDTH:
            problems.append("guest CR3 out of range")

        if entry & EntryControls.LOAD_EFER:
            efer = vmcs12.read(F.GUEST_IA32_EFER)
            if efer & Efer.RESERVED:
                problems.append("guest EFER reserved bits")
            if bool(efer & Efer.LMA) != ia32e:
                problems.append("guest EFER.LMA != IA-32e control")
            if cr0 & Cr0.PG and bool(efer & Efer.LMA) != bool(efer & Efer.LME):
                problems.append("guest EFER.LMA != LME with paging")

        rflags = vmcs12.read(F.GUEST_RFLAGS)
        if not rflags & Rflags.FIXED_1 or rflags & Rflags.RESERVED:
            problems.append("guest RFLAGS fixed bits")
        if rflags & Rflags.VM and ia32e:
            problems.append("v8086 in IA-32e mode")

        activity = vmcs12.read(F.GUEST_ACTIVITY_STATE)
        # KVM sanitizes: only ACTIVE and HLT are accepted from L1 (the
        # contrast with Xen's blind copy, paper §5.5.2).
        if activity not in (ActivityState.ACTIVE, ActivityState.HLT):
            problems.append(f"unsupported guest activity state {activity}")

        interruptibility = vmcs12.read(F.GUEST_INTERRUPTIBILITY_INFO)
        if interruptibility & ~0x1F:
            problems.append("guest interruptibility reserved bits")
        if (interruptibility & 1) and (interruptibility & 2):
            problems.append("STI and MOV-SS blocking both set")

        link = vmcs12.read(F.VMCS_LINK_POINTER)
        if link != VMPTR_INVALID and not self._gpa_ok(link, 4096):
            problems.append("bad VMCS link pointer")
        return problems

    def check_msr_entries(self, vmcs12: Vmcs) -> str | None:
        """Validate the VM-entry MSR-load area (KVM does this *correctly*;
        the missing analogue in VirtualBox is CVE-2024-21106)."""
        count = vmcs12.read(F.VM_ENTRY_MSR_LOAD_COUNT)
        if not count:
            return None
        if count > self.memory.MSR_AREA_MAX:
            return f"msr-load count {count} exceeds the architectural limit"
        addr = vmcs12.read(F.VM_ENTRY_MSR_LOAD_ADDR)
        if not self.memory.in_guest_ram(addr):
            return f"msr-load area {addr:#x} not readable guest memory"
        entries = self.memory.get_msr_area(addr, count)
        for slot, entry in enumerate(entries):
            if entry.reserved:
                return f"msr-load[{slot}] reserved dword set"
            if entry.index in MSR_LOAD_FORBIDDEN:
                return f"msr-load[{slot}] loads forbidden MSR {entry.index:#x}"
            if entry.index in CANONICAL_MSRS and not is_canonical(entry.value):
                return (f"msr-load[{slot}] non-canonical value "
                        f"{entry.value:#x} for MSR {entry.index:#x}")
        return None

    def _gpa_ok(self, gpa: int, alignment: int) -> bool:
        return not gpa & (alignment - 1) and gpa < (1 << MAX_PHYSADDR_WIDTH)

    def _check_eptp(self, eptp: int) -> bool:
        """nested_vmx_check_eptp(): format only — visibility is the MMU's
        problem (which is exactly where bug #3 hides)."""
        return EptPointer(eptp).valid()

    # ------------------------------------------------------------------
    # VMCS12 -> VMCS02 merge (prepare_vmcs02 analogue)
    # ------------------------------------------------------------------

    def prepare_vmcs02(self, state: VmxNestedState, vmcs12: Vmcs) -> ExecResult | None:
        """Build VMCS02 from VMCS12 (guest half) and VMCS01 (host half).

        Returns an ExecResult on failure (bug #3's early exit), else None.

        In incremental mode the last merged vmcs02 is cached per vCPU
        keyed by (vmcs12 identity, generation): only dirty guest fields
        are re-copied, and the control section re-runs only when one of
        its input fields changed (perf.merge_state replays the skipped
        sections' kcov event slices, so coverage is mode-independent).
        Sections with side effects outside the vmcs02 (paging/MMU setup
        and the sanitizer probes in it) always run, so bug behaviour and
        early-exit paths are identical to a full merge. The cached
        structure also carries the warm entry-check memo into the copy
        installed for the hardware entry.
        """
        vmcs02 = perf.merge_state(
            state, vmcs12,
            build=lambda: self._vmcs02_base(vmcs12),
            controls=lambda merged: self._vmcs02_controls(vmcs12, merged),
            state_fields=_GUEST_ENCODINGS,
            control_inputs=_MERGE_CONTROL_INPUTS)

        # KVM sanitizes the activity state on the way through (checked
        # above, enforced here for defence in depth). The clamps are
        # change-detecting writes, so re-applying them on a cached merge
        # is free and keeps them correct without dependency tracking.
        activity = vmcs12.read(F.GUEST_ACTIVITY_STATE)
        if activity not in (ActivityState.ACTIVE, ActivityState.HLT):
            vmcs02.write(F.GUEST_ACTIVITY_STATE, ActivityState.ACTIVE)
        # The vmcs02 link pointer never inherits vmcs12's.
        vmcs02.write(F.VMCS_LINK_POINTER, VMPTR_INVALID)

        # Paging: nested EPT when L1 asked for it; a direct shadow-EPT
        # map when it did not; legacy shadow paging (the PDPTE-cache
        # walker, CVE-2023-30456's home) only when the module itself
        # runs with ept=0.
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
        secondary_on = bool(proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS)
        nested_ept = bool(secondary_on and proc2 & Secondary.ENABLE_EPT)
        if self.params.ept:
            if nested_ept:
                result = self._load_nested_ept_root(state, vmcs12, vmcs02)
                if result is not None:
                    return result
            else:
                # Direct map: L0's own EPT root backs the whole of L2.
                vmcs02.write(F.EPT_POINTER, 0x20000 | 6 | (3 << 3))
        else:
            result = self._prepare_shadow_paging(state, vmcs12, vmcs02)
            if result is not None:
                return result

        proc2_merged = proc2 | Secondary.ENABLE_EPT | Secondary.ENABLE_VPID
        vmcs02.write(F.SECONDARY_VM_EXEC_CONTROL,
                     self.phys.caps.secondary.round(proc2_merged))
        if not vmcs02.read(F.VIRTUAL_PROCESSOR_ID):
            vmcs02.write(F.VIRTUAL_PROCESSOR_ID, 2)  # vpid02

        # Publish a fast copy on the incremental path (never the cached
        # master: a later *failed* prepare re-copies dirty fields into
        # the master before bailing out, and must not scribble over the
        # last successfully published vmcs02). The entry-check memo is
        # pre-warmed first so the copy inherits it and re-validates
        # from the journal.
        state.vmcs02 = perf.publish_merged(
            vmcs02, lambda: self.phys.checker.check_all(vmcs02))
        return None

    def _vmcs02_base(self, vmcs12: Vmcs) -> Vmcs:
        """Prototype copy with vmcs12's guest-state fields applied."""
        vmcs02 = self._vmcs02_proto.copy()
        for spec in _GUEST_SPECS:
            vmcs02.write(spec.encoding, vmcs12.read(spec.encoding))
        return vmcs02

    def _vmcs02_controls(self, vmcs12: Vmcs, vmcs02: Vmcs) -> None:
        """Merge control fields: L1's requests plus L0's own requirements.

        A pure function of the _MERGE_CONTROL_INPUTS fields of vmcs12
        (plus the constant capability MSRs) — the contract that lets
        perf.merge_state skip it while those fields are clean.
        """
        pin = vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        vmcs02.write(F.PIN_BASED_VM_EXEC_CONTROL,
                     self.phys.caps.pin_based.round(pin | PinBased.NMI_EXITING))
        vmcs02.write(F.CPU_BASED_VM_EXEC_CONTROL,
                     self.phys.caps.proc_based.round(
                         proc | ProcBased.USE_MSR_BITMAPS
                         | ProcBased.ACTIVATE_SECONDARY_CONTROLS))
        vmcs02.write(F.VM_ENTRY_CONTROLS, self.phys.caps.entry.round(entry))
        vmcs02.write(F.VM_EXIT_CONTROLS, self.phys.caps.exit.round(
            ExitControls.HOST_ADDR_SPACE_SIZE | ExitControls.LOAD_EFER
            | ExitControls.SAVE_EFER | ExitControls.ACK_INTR_ON_EXIT))
        vmcs02.write(F.EXCEPTION_BITMAP,
                     vmcs12.read(F.EXCEPTION_BITMAP) | (1 << 14))  # L0 traps #PF
        vmcs02.write(F.VM_ENTRY_INTR_INFO_FIELD,
                     vmcs12.read(F.VM_ENTRY_INTR_INFO_FIELD))
        vmcs02.write(F.VM_ENTRY_EXCEPTION_ERROR_CODE,
                     vmcs12.read(F.VM_ENTRY_EXCEPTION_ERROR_CODE))

    def _load_nested_ept_root(self, state: VmxNestedState, vmcs12: Vmcs,
                              vmcs02: Vmcs) -> ExecResult | None:
        """Install the shadow-EPT root for L2 — bug #3's home."""
        eptp12 = vmcs12.read(F.EPT_POINTER)
        root_gpa = EptPointer(eptp12).pml4_address
        if not self.mmu.load_root(root_gpa,
                                  dummy_root_patch="dummy_root" in self.patched):
            # BUG (pre-patch): the root is invisible, and KVM responds by
            # synthesizing a triple-fault exit to L1 — but L2 never ran.
            self.hv.bug_assert(
                state.l2_ever_ran and False, "nested_ept_load_root",
                "triple-fault VM exit synthesized before L2 ever entered "
                f"(invisible EPT root {root_gpa:#x})")
            return self._triple_fault_without_entry(state, vmcs12)
        assert self.mmu.root is not None
        vmcs02.write(F.EPT_POINTER, self.mmu.root.hpa | 6 | (3 << 3))
        return None

    def _triple_fault_without_entry(self, state: VmxNestedState,
                                    vmcs12: Vmcs) -> ExecResult:
        vmcs12.write(F.VM_EXIT_REASON, int(ExitReason.TRIPLE_FAULT))
        vmcs12.write(F.EXIT_QUALIFICATION, 0)
        state.guest_mode = False
        return ExecResult.success("spurious triple fault (bug)",
                                  exit_reason=int(ExitReason.TRIPLE_FAULT),
                                  level=1)

    def _prepare_shadow_paging(self, state: VmxNestedState, vmcs12: Vmcs,
                               vmcs02: Vmcs) -> ExecResult | None:
        """Shadow-paging setup for L2 when EPT is unavailable.

        This is where CVE-2023-30456 detonates: the PDPTE load trusts
        CR4.PAE literally while the entry control says IA-32e.
        """
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        ia32e = bool(entry & EntryControls.IA32E_MODE_GUEST)
        cr4 = vmcs12.read(F.GUEST_CR4)
        cr0 = vmcs12.read(F.GUEST_CR0)
        cr3 = vmcs12.read(F.GUEST_CR3)
        if not cr0 & Cr0.PG:
            return None  # unpaged guest: identity shadow, nothing to walk
        pae = bool(cr4 & Cr4.PAE)
        oob_index = self.mmu.load_pdptrs(
            cr3,
            believed_long_mode=ia32e,
            pae_enabled=pae,
            walk_address=vmcs12.read(F.GUEST_RIP))
        if oob_index is not None:
            self.hv.report_sanitizer(
                SanitizerKind.UBSAN, "nested_vmx.load_pdptrs",
                f"array-index-out-of-bounds: index {oob_index} of 4-entry "
                f"pdptrs (CVE-2023-30456 condition: IA-32e guest with "
                f"CR4.PAE=0 and ept=0)")
        vmcs02.write(F.GUEST_CR3, cr3)
        return None

    # ------------------------------------------------------------------
    # L2 shadow page walks (!EPT) — CVE-2023-30456's corruption site
    # ------------------------------------------------------------------

    def handle_l2_shadow_fault(self, state: VmxNestedState, vmcs12: Vmcs,
                               address: int) -> None:
        """Resolve an L2 page fault under shadow paging.

        Every L2 memory access KVM resolves walks the guest page tables
        with the mode KVM *believes* the guest is in; the literal
        CR4.PAE interpretation corrupts the PDPTE cache here.
        """
        if self.params.ept:
            # With ept=1 the L2 is always backed by two-dimensional
            # paging (nested EPT or a direct shadow-EPT map); KVM never
            # walks the guest's legacy structures. The PDPTE-cache walk
            # exists only when the module was loaded with ept=0 — which
            # is why the paper credits the vCPU configurator for bug #1.
            return
        entry = vmcs12.read(F.VM_ENTRY_CONTROLS)
        cr0 = vmcs12.read(F.GUEST_CR0)
        if not cr0 & Cr0.PG:
            return  # real-mode shadow: identity map, no walk
        ia32e = bool(entry & EntryControls.IA32E_MODE_GUEST)
        pae = bool(vmcs12.read(F.GUEST_CR4) & Cr4.PAE)
        oob_index = self.mmu.load_pdptrs(
            vmcs12.read(F.GUEST_CR3),
            believed_long_mode=ia32e,
            pae_enabled=pae,
            walk_address=address)
        if oob_index is not None:
            self.hv.report_sanitizer(
                SanitizerKind.UBSAN, "nested_vmx.load_pdptrs",
                f"array-index-out-of-bounds: index {oob_index} of 4-entry "
                f"pdptrs during L2 page walk (CVE-2023-30456)")

    # ------------------------------------------------------------------
    # Host-side ioctl surface (KVM_{GET,SET}_NESTED_STATE, module setup)
    #
    # Reachable only through host ioctls — live migration and module
    # load/unload — which the threat model excludes (paper §3.1/§5.2:
    # "functions that can only be invoked by host-side operations ...
    # accounts for approximately 4.8% on Intel"). They are instrumented
    # like the rest of the file but no guest instruction reaches them.
    # ------------------------------------------------------------------

    def vmx_get_nested_state(self, state: VmxNestedState) -> dict:
        """KVM_GET_NESTED_STATE: snapshot nested state for migration."""
        blob: dict = {
            "format": "vmx",
            "vmxon": state.vmxon,
            "vmxon_ptr": state.vmxon_ptr,
            "current_vmptr": state.current_vmptr,
            "guest_mode": state.guest_mode,
        }
        vmcs12 = self.get_vmcs12(state)
        if vmcs12 is not None:
            blob["vmcs12"] = vmcs12.serialize()
        if state.guest_mode:
            blob["vmcs02_launch_state"] = state.vmcs02.launch_state
        return blob

    def vmx_set_nested_state(self, state: VmxNestedState, blob: dict) -> int:
        """KVM_SET_NESTED_STATE: restore nested state after migration."""
        if blob.get("format") != "vmx":
            return -22  # -EINVAL
        if blob.get("guest_mode") and not blob.get("vmxon"):
            return -22
        vmxon_ptr = blob.get("vmxon_ptr", VMPTR_INVALID)
        if blob.get("vmxon"):
            if vmxon_ptr == VMPTR_INVALID or vmxon_ptr & 0xFFF:
                return -22
            state.vmxon = True
            state.vmxon_ptr = vmxon_ptr
        current = blob.get("current_vmptr", VMPTR_INVALID)
        if current != VMPTR_INVALID:
            if current & 0xFFF or not self.memory.in_guest_ram(current):
                return -22
            state.current_vmptr = current
            raw = blob.get("vmcs12")
            if raw is not None:
                self.memory.put_vmcs(current, Vmcs.deserialize(
                    raw, self.caps.vmcs_revision_id))
        state.guest_mode = bool(blob.get("guest_mode"))
        return 0

    def nested_vmx_hardware_setup(self) -> bool:
        """Module-load-time setup of the nested MSR set."""
        if not self.params.nested:
            return False
        for control_caps in (self.caps.pin_based, self.caps.proc_based,
                             self.caps.entry, self.caps.exit):
            if control_caps.allowed0 & ~control_caps.allowed1:
                return False  # inconsistent capability advertisement
        return True

    def nested_vmx_hardware_unsetup(self) -> None:
        """Module-unload-time teardown: drop cached shadow state."""
        self.memory.vmcs_pages.clear()
        self.mmu.root = None

    def nested_enable_evmcs(self, state: VmxNestedState, version: int) -> int:
        """Hyper-V enlightened-VMCS negotiation (hypervisor-specific
        support the evaluation lists among rarely-exercised residue)."""
        if version not in (1, 2):
            return -22
        if state.vmxon:
            return -16  # -EBUSY: must negotiate before vmxon
        return 0

    # ------------------------------------------------------------------
    # Nested VM exit (nested_vmx_vmexit analogue)
    # ------------------------------------------------------------------

    def nested_vmx_vmexit(self, state: VmxNestedState, vmcs12: Vmcs,
                          reason: int, *, qualification: int = 0,
                          intr_info: int = 0) -> None:
        """Reflect an exit to L1: sync vmcs02 -> vmcs12, restore vmcs01."""
        # Guest state written back from vmcs02.
        for spec in F.ALL_FIELDS:
            if spec.group is F.FieldGroup.GUEST:
                vmcs12.write(spec.encoding, state.vmcs02.read(spec.encoding))
        vmcs12.write(F.VMCS_LINK_POINTER, VMPTR_INVALID)
        # Exit information fields.
        vmcs12.write(F.VM_EXIT_REASON, reason)
        vmcs12.write(F.EXIT_QUALIFICATION, qualification)
        vmcs12.write(F.VM_EXIT_INTR_INFO, intr_info)
        vmcs12.write(F.VM_EXIT_INSTRUCTION_LEN, 3)
        vmcs12.write(F.IDT_VECTORING_INFO_FIELD, 0)
        # L1 resumes from the vmcs12 host state.
        state.guest_mode = False
        self.phys.vmclear(VMCS01_HPA)
        image = self._vmcs01.copy()
        image.clear()
        self.phys.install_vmcs(VMCS01_HPA, image)
        self.phys.vmptrld(VMCS01_HPA)
        self.phys.vmlaunch()

    # ------------------------------------------------------------------
    # Exit reflection policy (nested_vmx_l1_wants_exit analogue)
    # ------------------------------------------------------------------

    def l1_wants_exit(self, vmcs12: Vmcs, reason: ExitReason,
                      instr: GuestInstruction) -> bool:
        """Decide whether an L2 exit is forwarded to L1 or handled by L0."""
        pin = vmcs12.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vmcs12.read(F.SECONDARY_VM_EXEC_CONTROL)
        if not proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS:
            proc2 = 0

        if reason == ExitReason.EXCEPTION_NMI:
            vector = instr.op("vector")
            return bool(vmcs12.read(F.EXCEPTION_BITMAP) & (1 << (vector & 31)))
        if reason == ExitReason.EXTERNAL_INTERRUPT:
            return bool(pin & PinBased.EXT_INTR_EXITING)
        if reason == ExitReason.TRIPLE_FAULT:
            return True
        if reason in (ExitReason.INTERRUPT_WINDOW, ExitReason.NMI_WINDOW):
            return bool(proc & (ProcBased.INTR_WINDOW_EXITING
                                if reason == ExitReason.INTERRUPT_WINDOW
                                else ProcBased.NMI_WINDOW_EXITING))
        if reason in (ExitReason.CPUID, ExitReason.GETSEC, ExitReason.INVD,
                      ExitReason.XSETBV):
            return True  # unconditional exits
        if reason == ExitReason.TASK_SWITCH:
            return True
        if reason == ExitReason.HLT:
            return bool(proc & ProcBased.HLT_EXITING)
        if reason == ExitReason.INVLPG:
            return bool(proc & ProcBased.INVLPG_EXITING)
        if reason == ExitReason.RDPMC:
            return bool(proc & ProcBased.RDPMC_EXITING)
        if reason in (ExitReason.RDTSC, ExitReason.RDTSCP):
            return bool(proc & ProcBased.RDTSC_EXITING)
        if reason in (ExitReason.VMCLEAR, ExitReason.VMLAUNCH,
                      ExitReason.VMPTRLD, ExitReason.VMPTRST,
                      ExitReason.VMREAD, ExitReason.VMRESUME,
                      ExitReason.VMWRITE, ExitReason.VMXOFF,
                      ExitReason.VMXON, ExitReason.INVEPT,
                      ExitReason.INVVPID, ExitReason.VMCALL):
            return True  # VMX instructions in L2 always go to L1
        if reason == ExitReason.CR_ACCESS:
            return self._cr_access_reflects(vmcs12, instr)
        if reason == ExitReason.DR_ACCESS:
            return bool(proc & ProcBased.MOV_DR_EXITING)
        if reason == ExitReason.IO_INSTRUCTION:
            return self._io_reflects(vmcs12, proc, instr)
        if reason in (ExitReason.MSR_READ, ExitReason.MSR_WRITE):
            return self._msr_reflects(vmcs12, proc, instr)
        if reason == ExitReason.MWAIT_INSTRUCTION:
            return bool(proc & ProcBased.MWAIT_EXITING)
        if reason == ExitReason.MONITOR_TRAP_FLAG:
            return bool(proc & ProcBased.MONITOR_TRAP_FLAG)
        if reason == ExitReason.MONITOR_INSTRUCTION:
            return bool(proc & ProcBased.MONITOR_EXITING)
        if reason == ExitReason.PAUSE_INSTRUCTION:
            return bool(proc & ProcBased.PAUSE_EXITING
                        or proc2 & Secondary.PAUSE_LOOP_EXITING)
        if reason == ExitReason.APIC_ACCESS:
            return bool(proc2 & Secondary.VIRTUALIZE_APIC_ACCESSES)
        if reason == ExitReason.APIC_WRITE:
            return bool(proc2 & Secondary.APIC_REGISTER_VIRT)
        if reason == ExitReason.VIRTUALIZED_EOI:
            return bool(proc2 & Secondary.VIRTUAL_INTR_DELIVERY)
        if reason == ExitReason.TPR_BELOW_THRESHOLD:
            return bool(proc & ProcBased.USE_TPR_SHADOW)
        if reason in (ExitReason.GDTR_IDTR_ACCESS, ExitReason.LDTR_TR_ACCESS):
            return bool(proc2 & Secondary.DESC_TABLE_EXITING)
        if reason in (ExitReason.EPT_VIOLATION, ExitReason.EPT_MISCONFIG):
            # With nested EPT the violation belongs to L1; with shadow
            # paging L0 resolves it invisibly.
            return bool(proc2 & Secondary.ENABLE_EPT)
        if reason == ExitReason.PREEMPTION_TIMER:
            return bool(pin & PinBased.PREEMPTION_TIMER)
        if reason == ExitReason.RDRAND:
            return bool(proc2 & Secondary.RDRAND_EXITING)
        if reason == ExitReason.RDSEED:
            return bool(proc2 & Secondary.RDSEED_EXITING)
        if reason == ExitReason.INVPCID:
            return bool(proc2 & Secondary.ENABLE_INVPCID
                        and proc & ProcBased.INVLPG_EXITING)
        if reason == ExitReason.WBINVD:
            return bool(proc2 & Secondary.WBINVD_EXITING)
        if reason == ExitReason.VMFUNC:
            return True
        if reason == ExitReason.ENCLS:
            return bool(proc2 & Secondary.ENCLS_EXITING)
        if reason == ExitReason.PML_FULL:
            return False  # L0 manages the PML buffer
        if reason in (ExitReason.XSAVES, ExitReason.XRSTORS):
            return bool(proc2 & Secondary.ENABLE_XSAVES)
        return True

    def _cr_access_reflects(self, vmcs12: Vmcs, instr: GuestInstruction) -> bool:
        """MOV CR intercept policy from CR masks and target lists."""
        cr = instr.op("cr")
        write = bool(instr.op("write", 1))
        value = instr.op("value")
        proc = vmcs12.read(F.CPU_BASED_VM_EXEC_CONTROL)
        if cr == 0:
            mask = vmcs12.read(F.CR0_GUEST_HOST_MASK)
            shadow = vmcs12.read(F.CR0_READ_SHADOW)
            return bool(mask and (value & mask) != (shadow & mask))
        if cr == 3:
            if write:
                if not proc & ProcBased.CR3_LOAD_EXITING:
                    return False
                count = min(vmcs12.read(F.CR3_TARGET_COUNT), 4)
                targets = (F.CR3_TARGET_VALUE0, F.CR3_TARGET_VALUE1,
                           F.CR3_TARGET_VALUE2, F.CR3_TARGET_VALUE3)
                for idx in range(count):
                    if vmcs12.read(targets[idx]) == value:
                        return False  # whitelisted target
                return True
            return bool(proc & ProcBased.CR3_STORE_EXITING)
        if cr == 4:
            mask = vmcs12.read(F.CR4_GUEST_HOST_MASK)
            shadow = vmcs12.read(F.CR4_READ_SHADOW)
            return bool(mask and (value & mask) != (shadow & mask))
        if cr == 8:
            if write:
                return bool(proc & ProcBased.CR8_LOAD_EXITING)
            return bool(proc & ProcBased.CR8_STORE_EXITING)
        return True

    def _io_reflects(self, vmcs12: Vmcs, proc: int,
                     instr: GuestInstruction) -> bool:
        """IN/OUT intercept policy from the I/O bitmaps."""
        if proc & ProcBased.USE_IO_BITMAPS:
            port = instr.op("port") & 0xFFFF
            # Modelled bitmap: L1 typically traps the low half of the
            # port space it populated; an unpopulated bitmap traps all.
            bitmap_gpa = vmcs12.read(F.IO_BITMAP_A if port < 0x8000
                                     else F.IO_BITMAP_B)
            if bitmap_gpa and self.memory.in_guest_ram(bitmap_gpa):
                return bool(port & 1)  # odd ports trapped in the model
            return True
        return bool(proc & ProcBased.UNCOND_IO_EXITING)

    def _msr_reflects(self, vmcs12: Vmcs, proc: int,
                      instr: GuestInstruction) -> bool:
        """RDMSR/WRMSR intercept policy from the MSR bitmap."""
        if not proc & ProcBased.USE_MSR_BITMAPS:
            return True
        bitmap_gpa = vmcs12.read(F.MSR_BITMAP)
        if not bitmap_gpa or not self.memory.in_guest_ram(bitmap_gpa):
            return True
        index = instr.op("msr")
        if index >= 0xC0000000 and index < 0xC0002000:
            return bool(index & 1)  # modelled high-range bitmap
        if index < 0x2000:
            return bool(index & 1)  # modelled low-range bitmap
        return True  # out-of-range MSRs always exit
