"""Periodic corpus distillation: a greedy minimal-subset cover.

After enough findings, many queue entries cover only bits that earlier
entries already cover; spending mutation energy on them re-explores
known behaviour. Distillation walks the queue in discovery order and
keeps the first entry to contribute each ``(cell, class-bit)`` pair —
the same greedy minimal-cover AFL's ``cull_queue`` approximates — and
**demotes** the rest by setting :attr:`QueueEntry.redundant`.

Demotion, never deletion: the fast power schedule drops a redundant
entry's energy to the floor, but the entry stays in the queue (corpus
digests, sync exports, and reproducibility all depend on the queue
being append-only). Three classes are exempt even from demotion:

* crashed entries and anomaly entries — they are evidence, and their
  inputs are the cheapest route back to the behaviour;
* seeds and legacy-loaded entries (``coverage is None``) — with no
  recorded coverage there is nothing to prove redundancy against.
"""

from __future__ import annotations

from repro.coverage.bitmap import VirginMap
from repro.fuzzer.queue import SeedQueue


def distill(queue: SeedQueue) -> int:
    """Recompute every entry's ``redundant`` flag; returns the count.

    Deterministic: the greedy cover is built in discovery (queue)
    order, so two replicas of the same queue always demote the same
    entries. Exempt entries still merge their coverage into the cover —
    a later duplicate of a crasher's coverage is exactly the kind of
    entry distillation exists to demote.
    """
    cover = VirginMap()
    bits = cover.bits
    redundant = 0
    for entry in queue.entries:
        if entry.coverage is None or entry.crashed or entry.anomaly:
            entry.redundant = False
            if entry.coverage:
                for idx, cls in entry.coverage:
                    bits[idx] |= cls
            continue
        if cover.subsumes(entry.coverage):
            entry.redundant = True
            redundant += 1
        else:
            entry.redundant = False
            for idx, cls in entry.coverage:
                bits[idx] |= cls
    return redundant
