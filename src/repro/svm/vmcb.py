"""The VM control block (VMCB) object — AMD-V's counterpart to the VMCS."""

from __future__ import annotations

from typing import Iterator

from repro.arch.bits import bytes_hamming
from repro.arch.registers import Cr0, Efer
from repro.svm import fields as F
from repro.svm.fields import ALL_FIELDS, LAYOUT_BYTES, VmcbField

#: Hot-path lookup tables (same rationale as repro.vmx.vmcs): width
#: masks and byte sizes precomputed so per-write truncation is a single
#: dict lookup plus an ``&`` instead of two helper frames.
_FIELD_MASK: dict[str, int] = {s.name: (1 << s.bits) - 1 for s in ALL_FIELDS}
_FIELD_NBYTES: tuple[tuple[str, int], ...] = tuple(
    (s.name, (s.bits + 7) // 8) for s in ALL_FIELDS)

#: Change-journal bounds (see repro.vmx.vmcs for the rationale).
_LOG_MAX = 4096
_LOG_KEEP = 1024


def _build_layout(field_nbytes):
    """(name, offset, nbytes) rows plus a byte-offset -> row map."""
    layout = []
    byte_map = []
    offset = 0
    for index, (name, nbytes) in enumerate(field_nbytes):
        layout.append((name, offset, nbytes))
        byte_map.extend([index] * nbytes)
        offset += nbytes
    return tuple(layout), tuple(byte_map)


#: Batched-deserialize support (DESIGN.md §12) — same scheme as
#: repro.vmx.vmcs: byte-diff incoming images against a small MRU set of
#: frozen reference masters and build near matches as light images plus
#: journalled writes of the differing fields only.
_LAYOUT, _BYTE_FIELD = _build_layout(_FIELD_NBYTES)
_DESER_REFS: list = []
_DESER_REF_LIMIT = 8
_DESER_DIFF_LIMIT = 48
_DESER_EARLY_BITS = 64
_DESER_PROMOTE = 8


def _changed_fields(x: int, layout=_LAYOUT, byte_map=_BYTE_FIELD):
    """Layout rows whose bytes are set in XOR-image *x*, low to high."""
    out = []
    while x:
        if len(out) >= _DESER_DIFF_LIMIT:
            return None
        row = layout[byte_map[((x & -x).bit_length() - 1) >> 3]]
        out.append(row)
        end = (row[1] + row[2]) * 8
        x = (x >> end) << end
    return out

_EMPTY_SET: frozenset = frozenset()


class Vmcb:
    """One VM control block.

    Unlike the VMCS, the VMCB is addressed by plain field names — AMD-V
    has no vmread/vmwrite indirection; software reads and writes the
    structure directly in memory.

    Dirty tracking mirrors :class:`repro.vmx.vmcs.Vmcs`: value-changing
    writes bump a generation counter and journal the field name, memo
    entries ride along on ``copy()``, and ``serialize()`` is cached
    behind the generation counter.
    """

    #: Frozen reference image this structure was byte-diffed from by the
    #: batched deserializer (never returned, never written; see
    #: ``repro.vmx.vmcs.Vmcs._anchor``).
    _anchor: "Vmcb | None" = None

    def __init__(self) -> None:
        self._values: dict[str, int] = {spec.name: 0 for spec in ALL_FIELDS}
        self._gen = 0
        self._log: list[str] = []
        self._log_base = 0
        self._memo: dict = {}
        self._ser: bytes | None = None
        self._ser_gen = -1
        self._read_trace: set[str] | None = None

    def read(self, name: str) -> int:
        """Read a field by name."""
        if self._read_trace is not None:
            self._read_trace.add(name)
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(f"unknown VMCB field {name!r}") from None

    def write(self, name: str, value: int) -> None:
        """Write a field by name, truncating to the field width."""
        fmask = _FIELD_MASK.get(name)
        if fmask is None:
            raise KeyError(f"unknown VMCB field {name!r}")
        value &= fmask
        values = self._values
        if values[name] != value:
            values[name] = value
            self._gen += 1
            log = self._log
            log.append(name)
            if len(log) >= _LOG_MAX:
                del log[:len(log) - _LOG_KEEP]
                self._log_base = self._gen - _LOG_KEEP

    # --- dirty tracking ----------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of value-changing writes."""
        return self._gen

    def changes_since(self, gen: int) -> frozenset[str] | set[str] | None:
        """Field names written (with a new value) since generation *gen*.

        ``None`` means the journal was truncated past *gen*: treat as
        "everything may have changed".
        """
        if gen == self._gen:
            return _EMPTY_SET
        if gen < self._log_base:
            return None
        return set(self._log[gen - self._log_base:])

    def memo_get(self, key):
        """Fetch a memoized derived result (opaque entry) by *key*."""
        return self._memo.get(key)

    def memo_put(self, key, entry) -> None:
        """Store a memoized result (entries are shared by copies —
        replace, never mutate)."""
        self._memo[key] = entry

    def __getitem__(self, name: str) -> int:
        return self.read(name)

    def __setitem__(self, name: str, value: int) -> None:
        self.write(name, value)

    def fields(self) -> Iterator[tuple[VmcbField, int]]:
        """Iterate (spec, value) pairs in canonical layout order."""
        for spec in ALL_FIELDS:
            yield spec, self._values[spec.name]

    # --- convenience predicates used by emulation code ---------------------

    # All predicates go through ``read`` so dynamic read-set recording
    # sees the underlying field dependency.

    @property
    def nested_paging(self) -> bool:
        """True when the NP_ENABLE control bit is set."""
        return bool(self.read(F.NP_CONTROL) & F.NpControl.NP_ENABLE)

    @property
    def long_mode_active(self) -> bool:
        """True when EFER.LMA is set in the save area."""
        return bool(self.read(F.EFER) & Efer.LMA)

    @property
    def paging_enabled(self) -> bool:
        """True when CR0.PG is set in the save area."""
        return bool(self.read(F.CR0) & Cr0.PG)

    @property
    def vgif_enabled(self) -> bool:
        """True when the VGIF feature-enable bit is set."""
        return bool(self.read(F.VINTR_CONTROL) & F.VintrControl.V_GIF_ENABLE)

    @property
    def vgif_value(self) -> bool:
        """The virtual GIF value (meaningful only with VGIF)."""
        return bool(self.read(F.VINTR_CONTROL) & F.VintrControl.V_GIF)

    @property
    def avic_enabled(self) -> bool:
        """True when the AVIC-enable bit is set."""
        return bool(self.read(F.VINTR_CONTROL) & F.VintrControl.AVIC_ENABLE)

    # --- whole-structure operations ----------------------------------------

    def copy(self) -> "Vmcb":
        """Deep copy (fast path: no ``__init__`` field-table rebuild).

        The generation counter, change journal, memo entries, and the
        serialization cache are carried over, so a snapshot starts warm
        and diverges from its parent through its own journal.
        """
        dup = Vmcb.__new__(Vmcb)
        dup._values = dict(self._values)
        dup._gen = self._gen
        dup._log = list(self._log)
        dup._log_base = self._log_base
        dup._memo = dict(self._memo)
        dup._ser = self._ser
        dup._ser_gen = self._ser_gen
        dup._read_trace = None
        dup._anchor = self._anchor
        return dup

    def light_image(self) -> "Vmcb":
        """Journal-free copy for throwaway execution images.

        Same contract as ``Vmcs.light_image``: field values and memo
        entries carry over, the journal starts empty anchored at the
        copy generation, so consumers holding pre-copy generations fall
        back to a full recompute while post-copy generations resolve
        normally.
        """
        dup = Vmcb.__new__(Vmcb)
        dup._values = dict(self._values)
        dup._gen = self._gen
        dup._log = []
        dup._log_base = self._gen
        dup._memo = dict(self._memo)
        dup._ser = self._ser
        dup._ser_gen = self._ser_gen
        dup._read_trace = None
        return dup

    def snapshot(self) -> "Vmcb":
        """Alias for :meth:`copy` in snapshot/restore pairs."""
        return self.copy()

    def restore(self, snap: "Vmcb") -> None:
        """Restore field values from *snap*, journalling the deltas."""
        values = snap._values
        for name, value in self._values.items():
            other = values[name]
            if other != value:
                self.write(name, other)

    def diff(self, other: "Vmcb") -> list[tuple[VmcbField, int, int]]:
        """Fields whose values differ, as (spec, self_value, other_value)."""
        return [
            (spec, self._values[spec.name], other._values[spec.name])
            for spec in ALL_FIELDS
            if self._values[spec.name] != other._values[spec.name]
        ]

    def serialize(self) -> bytes:
        """Pack every field into the canonical little-endian layout.

        Cached behind the generation counter (same contract as
        ``Vmcs.serialize``).
        """
        if self._ser_gen == self._gen and self._ser is not None:
            return self._ser
        values = self._values
        out = bytearray()
        for name, nbytes in _FIELD_NBYTES:
            out += values[name].to_bytes(nbytes, "little")
        packed = bytes(out)
        self._ser = packed
        self._ser_gen = self._gen
        return packed

    @classmethod
    def deserialize(cls, raw: bytes) -> "Vmcb":
        """Unpack a serialised layout; short input raises ValueError.

        Batched hot path: same XOR byte-diff against reference masters
        as ``Vmcs.deserialize``. Field widths are byte-exact (so the
        per-field masks are identities) and parsing is raw little-endian
        per field, making the diffed candidate value-identical to a
        full parse.
        """
        if len(raw) < LAYOUT_BYTES:
            raise ValueError(
                f"need {LAYOUT_BYTES} bytes for a VMCB image, got {len(raw)}"
            )
        from repro import perf

        if not perf.batch_enabled():
            return cls._parse(raw)
        from repro import telemetry

        image = bytes(raw[:LAYOUT_BYTES])
        image_int = int.from_bytes(image, "little")
        best = best_x = None
        for index, (_ref_image, ref_int, master) in enumerate(_DESER_REFS):
            x = image_int ^ ref_int
            if not x:
                telemetry.counter("batch.deser_fast")
                if index:
                    _DESER_REFS.insert(0, _DESER_REFS.pop(index))
                dup = master.light_image()
                dup._anchor = master
                return dup
            count = x.bit_count()
            if best_x is None or count < best_count:
                best, best_x, best_count = index, x, count
                if count <= _DESER_EARLY_BITS:
                    break
        if best is not None:
            changed = _changed_fields(best_x)
            if changed is not None and len(changed) <= _DESER_PROMOTE:
                telemetry.counter("batch.deser_fast")
                master = _DESER_REFS[best][2]
                if best:
                    _DESER_REFS.insert(0, _DESER_REFS.pop(best))
                dup = master.light_image()
                dup._anchor = master
                for name, offset, nbytes in changed:
                    dup.write(name, int.from_bytes(
                        image[offset:offset + nbytes], "little"))
                return dup
        telemetry.counter("batch.deser_full")
        master = cls._parse(image)
        master._ser = image
        master._ser_gen = master._gen
        _DESER_REFS.insert(0, (image, image_int, master))
        del _DESER_REFS[_DESER_REF_LIMIT:]
        dup = master.light_image()
        dup._anchor = master
        return dup

    @classmethod
    def _parse(cls, raw: bytes) -> "Vmcb":
        """Plain full parse of the canonical layout."""
        vmcb = cls()
        offset = 0
        for name, nbytes in _FIELD_NBYTES:
            value = int.from_bytes(raw[offset:offset + nbytes], "little")
            vmcb._values[name] = value & _FIELD_MASK[name]
            offset += nbytes
        return vmcb

    def hamming(self, other: "Vmcb") -> int:
        """Bitwise Hamming distance over the serialised layout."""
        return bytes_hamming(self.serialize(), other.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vmcb):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self.serialize())

    def __repr__(self) -> str:
        nonzero = sum(1 for v in self._values.values() if v)
        return f"<Vmcb nonzero_fields={nonzero}/{len(self._values)}>"
