"""Tests for the Klees-et-al. statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    cohens_d,
    compare,
    confidence_interval,
    mann_whitney_u,
    median_of,
)

samples = st.lists(st.floats(min_value=0, max_value=100,
                             allow_nan=False), min_size=3, max_size=12)


class TestMedianCi:
    def test_median(self):
        assert median_of([3.0, 1.0, 2.0]) == 2.0
        assert median_of([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median_of([])

    def test_ci_contains_median(self):
        data = [84.2, 84.5, 84.7, 85.0, 85.2]
        lo, hi = confidence_interval(data)
        assert lo <= median_of(data) <= hi

    def test_tiny_sample_degenerates_to_range(self):
        assert confidence_interval([1.0, 5.0]) == (1.0, 5.0)

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_ci_within_data_range(self, data):
        lo, hi = confidence_interval(data)
        assert min(data) <= lo <= hi <= max(data)


class TestMannWhitney:
    def test_clearly_different_samples(self):
        a = [84.0, 84.5, 85.0, 84.7, 84.9]
        b = [61.0, 61.5, 60.8, 61.4, 61.2]
        _, p = mann_whitney_u(a, b)
        assert p < 0.05  # the paper reports p = 0.012 for this shape

    def test_identical_samples_not_significant(self):
        a = [50.0] * 5
        _, p = mann_whitney_u(a, list(a))
        assert p > 0.5

    def test_symmetric(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]
        _, p1 = mann_whitney_u(a, b)
        _, p2 = mann_whitney_u(b, a)
        assert p1 == pytest.approx(p2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    @given(samples, samples)
    @settings(max_examples=50, deadline=None)
    def test_p_in_unit_interval(self, a, b):
        _, p = mann_whitney_u(a, b)
        assert 0.0 <= p <= 1.0


class TestCohensD:
    def test_large_effect(self):
        a = [84.0, 84.5, 85.0, 84.7, 84.9]
        b = [61.0, 61.5, 60.8, 61.4, 61.2]
        assert cohens_d(a, b) > 8  # the paper reports d = 12.17

    def test_zero_variance_infinite(self):
        assert math.isinf(cohens_d([74.2] * 5, [7.0] * 5))

    def test_zero_variance_equal_means_zero(self):
        assert cohens_d([5.0] * 4, [5.0] * 4) == 0.0

    def test_sign_follows_direction(self):
        assert cohens_d([10.0, 11.0], [1.0, 2.0]) > 0
        assert cohens_d([1.0, 2.0], [10.0, 11.0]) < 0

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError):
            cohens_d([1.0], [2.0, 3.0])


class TestComparison:
    def test_full_comparison(self):
        comp = compare("NecoFuzz", [84.0, 84.5, 85.0, 84.7, 84.9],
                       "Syzkaller", [61.0, 61.5, 60.8, 61.4, 61.2])
        assert comp.improvement == pytest.approx(84.7 / 61.2, rel=0.05)
        assert comp.p_value < 0.05
        rendered = comp.render()
        assert "NecoFuzz" in rendered and "p =" in rendered and "d =" in rendered

    def test_improvement_infinite_when_b_zero(self):
        comp = compare("A", [1.0, 2.0, 3.0], "B", [0.0, 0.0, 0.0])
        assert math.isinf(comp.improvement)
