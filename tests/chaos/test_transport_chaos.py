"""Chaos suite, federation transport: network faults against the
coordinator/node protocol (DESIGN.md §14).

The contract pinned here is the acceptance criterion of the federated
transport: a federated campaign with a fixed ``lease_size`` produces
the **identical campaign fingerprint** to the equivalent inline
stealing run — and keeps producing it under every injected network
fault (dropped, delayed, and corrupted frames; partitions shorter than
the node TTL; coordinator crash/restart). Separately, lease accounting
stays exactly-once when a node goes permanently silent and its lease
is expired and re-issued, and the corpus relay never holds a corrupt
record (zero record loss).
"""

from __future__ import annotations

import threading

import pytest

from repro import Vendor
from repro.faults import FaultPlan, FaultSpec
from repro.parallel import FileLeaseBoard, ParallelCampaign
from repro.parallel.transport import NodeClient
from repro.parallel.transport.coordinator import Coordinator
from repro.parallel.wire import (
    QUEUE_BIN,
    parse_record,
    read_manifest,
    read_record_blob,
)
from repro.resilience import FederatedCampaign, campaign_fingerprint

SEED = 11
BUDGET = 32
LEASE = 8
WORKERS = 2


def _federated(**overrides) -> FederatedCampaign:
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=WORKERS, lease_size=LEASE, telemetry_mode="off",
                  transport_timeout=1.0, heartbeat_interval=0.1)
    kwargs.update(overrides)
    return FederatedCampaign(**kwargs)


def _inline(**overrides) -> ParallelCampaign:
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=WORKERS, schedule="stealing", lease_size=LEASE,
                  mode="inline", telemetry_mode="off")
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


@pytest.fixture(scope="module")
def inline_fingerprint() -> str:
    """The clean inline-stealing fingerprint every chaos run must hit."""
    return campaign_fingerprint(_inline().run(BUDGET))


def _ledger_is_sound(result, budget=BUDGET):
    assert result.engine_stats.iterations == budget
    assert sum(record.size for record in result.lease_log) == budget
    ids = [record.id for record in result.lease_log]
    assert len(ids) == len(set(ids)), "a lease completed twice"


def _relay_is_clean(root) -> int:
    """Every record in every relay queue must be CRC-valid and
    parseable — the transport never persists a corrupt record."""
    total = 0
    for relay in sorted((root / Coordinator.RELAY).glob("node-*")):
        manifest = read_manifest(relay)
        with open(relay / QUEUE_BIN, "rb") as handle:
            for offset, length, crc in manifest:
                blob = read_record_blob(handle, offset, length, crc)
                assert blob is not None, "relay record failed its CRC"
                assert parse_record(blob) is not None
        total += len(manifest)
    return total


# --- fault-free parity ------------------------------------------------------


class TestFaultFreeParity:
    def test_federated_matches_inline_stealing(self, inline_fingerprint,
                                               tmp_path):
        result = _federated(sync_dir=tmp_path).run(BUDGET)
        _ledger_is_sound(result)
        assert result.schedule == "federated"
        assert campaign_fingerprint(result) == inline_fingerprint
        assert _relay_is_clean(tmp_path) > 0

    def test_remainder_lease_parity(self):
        """Budget that does not divide evenly: the last round grants a
        short lease to one node and None to the other — both paths must
        match inline exactly."""
        federated = _federated(lease_size=20).run(50)
        inline = _inline(lease_size=20).run(50)
        _ledger_is_sound(federated, budget=50)
        assert (campaign_fingerprint(federated)
                == campaign_fingerprint(inline))

    def test_parity_over_loopback_tcp(self, inline_fingerprint):
        result = _federated(address="127.0.0.1:0").run(BUDGET)
        assert campaign_fingerprint(result) == inline_fingerprint

    def test_net_counters_reach_telemetry(self, tmp_path):
        from repro.telemetry.report import campaign_summary
        _federated(sync_dir=tmp_path, telemetry_mode="metrics").run(BUDGET)
        net = campaign_summary(tmp_path)["net"]
        assert net.get("net.frames_sent", 0) > 0
        assert net.get("net.records_pushed", 0) > 0
        assert net.get("net.records_fetched", 0) > 0


# --- frame-level faults -----------------------------------------------------


class TestFrameFaults:
    # at_frame counts each node's outbound protocol frames (heartbeats
    # excluded): 1=hello, 2=claim(r0), then push/complete/fetch…
    @pytest.mark.parametrize("spec", [
        FaultSpec("drop_frame", worker=0, at_frame=2),   # claim swallowed
        FaultSpec("drop_frame", worker=1, at_frame=5),   # fetch swallowed
        FaultSpec("delay_frame", worker=0, at_frame=3, seconds=0.3),
        FaultSpec("corrupt_frame", worker=1, at_frame=3),  # push corrupted
        FaultSpec("corrupt_frame", worker=0, at_frame=2),  # claim corrupted
    ], ids=["drop-claim", "drop-fetch", "delay-push", "corrupt-push",
            "corrupt-claim"])
    def test_single_fault_preserves_fingerprint(self, spec,
                                                inline_fingerprint,
                                                tmp_path):
        plan = FaultPlan([spec])
        result = _federated(sync_dir=tmp_path, fault_plan=plan).run(BUDGET)
        assert plan.exhausted, "the fault never fired"
        assert plan.fired and plan.fired[0][0] == spec.kind
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint
        _relay_is_clean(tmp_path)

    def test_fault_volley_preserves_fingerprint(self, inline_fingerprint,
                                                tmp_path):
        """Several faults across both nodes in one campaign."""
        plan = FaultPlan([
            FaultSpec("drop_frame", worker=0, at_frame=2),
            FaultSpec("corrupt_frame", worker=1, at_frame=4),
            FaultSpec("drop_frame", worker=1, at_frame=7),
            FaultSpec("delay_frame", worker=0, at_frame=6, seconds=0.2),
        ])
        result = _federated(sync_dir=tmp_path, fault_plan=plan).run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint
        _relay_is_clean(tmp_path)


# --- partitions -------------------------------------------------------------


class TestPartition:
    def test_partition_shorter_than_ttl_recovers(self, inline_fingerprint,
                                                 tmp_path):
        """A partitioned node falls silent, reconnects with backoff once
        the window ends, and catches back up via resends — no expiry,
        no lost records, identical fingerprint."""
        plan = FaultPlan([
            FaultSpec("partition", worker=1, at_frame=4, seconds=0.6),
        ])
        result = _federated(sync_dir=tmp_path, fault_plan=plan,
                            node_ttl=300.0).run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint
        assert result.reclaims == 0, "a partition must not expire a node"
        _relay_is_clean(tmp_path)

    def test_double_partition_both_nodes(self, inline_fingerprint):
        plan = FaultPlan([
            FaultSpec("partition", worker=0, at_frame=3, seconds=0.4),
            FaultSpec("partition", worker=1, at_frame=5, seconds=0.4),
        ])
        result = _federated(fault_plan=plan, node_ttl=300.0).run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint


# --- coordinator crash/restart ---------------------------------------------


class TestCoordinatorCrash:
    @pytest.mark.parametrize("at_event", [3, 6, 9],
                             ids=["mid-claim", "mid-round", "late"])
    def test_crash_restart_preserves_fingerprint(self, at_event,
                                                 inline_fingerprint,
                                                 tmp_path):
        """The coordinator drops every connection and reloads persisted
        state; nodes reconnect and resend. Grants are keyed and
        persisted with the board, so the replayed schedule is
        identical."""
        plan = FaultPlan([FaultSpec("kill_coordinator", at_event=at_event)])
        result = _federated(sync_dir=tmp_path, fault_plan=plan).run(BUDGET)
        assert plan.exhausted, "the coordinator crash never fired"
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint
        _relay_is_clean(tmp_path)

    def test_two_crashes_one_campaign(self, inline_fingerprint):
        plan = FaultPlan([
            FaultSpec("kill_coordinator", at_event=4),
            FaultSpec("kill_coordinator", at_event=12),
        ])
        result = _federated(fault_plan=plan).run(BUDGET)
        assert plan.exhausted
        _ledger_is_sound(result)
        assert campaign_fingerprint(result) == inline_fingerprint


# --- lease expiry (permanently silent node) ---------------------------------


class TestLeaseExpiry:
    def test_expired_lease_reissued_exactly_once(self, tmp_path):
        """Node 0 claims a lease and goes permanently silent; the
        coordinator expires it after ``node_ttl`` and reclaims the
        lease, and node 1 finishes the whole budget. Every lease id
        completes exactly once and completed sizes sum to the budget —
        exactly-once accounting under expiry."""
        total, lease_size = 40, 20
        board = FileLeaseBoard.create(tmp_path, total, 2,
                                      lease_size=lease_size)
        coordinator = Coordinator(tmp_path, board, 2, node_ttl=0.8)
        address = coordinator.start(("unix", str(tmp_path / "c.sock")))
        silent_grant: list = []
        survivor_rounds: list = []
        errors: list = []

        def silent_node():
            client = NodeClient(address, 0, timeout=0.3,
                                heartbeat_interval=0.1)
            try:
                client.hello()
                silent_grant.append(client.claim(0, 0.0))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                client.close()  # goes dark holding its lease

        def survivor_node():
            client = NodeClient(address, 1, timeout=0.3,
                                heartbeat_interval=0.1)
            try:
                client.hello()
                client.start_heartbeats()
                rounds = 0
                while True:
                    grant = client.claim(rounds, 0.0)
                    if grant.get("drained") or grant.get("retired"):
                        break
                    lease = grant.get("lease")
                    if lease is not None:
                        client.complete(lease[0], rounds)
                    client.fetch(rounds, {})
                    rounds += 1
                survivor_rounds.append(rounds)
                client.bye()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=silent_node),
                   threading.Thread(target=survivor_node)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads), \
                "federation hung instead of expiring the silent node"
        finally:
            coordinator.stop()
        assert not errors, errors
        assert coordinator.error is None

        # The silent node really held a lease when it went dark.
        assert silent_grant and silent_grant[0]["lease"] is not None
        held_id = silent_grant[0]["lease"][0]

        # Exactly-once accounting: budget conserved, ids unique, the
        # dead node's lease re-issued (same id) and completed once.
        summary = board.summary()
        assert board.finished()
        assert sum(r.size for r in summary["log"]) == total
        ids = [r.id for r in summary["log"]]
        assert len(ids) == len(set(ids))
        assert held_id in ids
        reissued = [r for r in summary["log"] if r.id == held_id]
        assert reissued[0].reissued and reissued[0].worker == 1
        assert summary["reclaims"] == 1
        assert coordinator._state["expired"] == [0]

    def test_expired_node_returning_is_told_so(self, tmp_path):
        board = FileLeaseBoard.create(tmp_path, 8, 1, lease_size=8)
        coordinator = Coordinator(tmp_path, board, 1, node_ttl=300.0)
        coordinator._state["expired"] = [0]
        address = coordinator.start(("unix", str(tmp_path / "c.sock")))
        try:
            client = NodeClient(address, 0, timeout=0.5)
            try:
                reply, _raw = client.hello()
                assert reply["status"] == "expired"
            finally:
                client.close()
        finally:
            coordinator.stop()
