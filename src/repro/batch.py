"""Struct-of-arrays batching primitives for the oracle hot path.

This module is the substrate of the batched execution pipeline
(DESIGN.md §12). Three ideas compose:

* **Column signatures.** Every check unit and correction pass in the
  hot path is a deterministic function of a bounded field read set
  (pinned by the declared-reads property tests). The tuple of *values*
  of that read set — the column signature — therefore keys the result
  independently of which structure object held the values. Signature
  caches are shared across copies, attempts, cases, and batches: one
  probe per (unit, column-signature) instead of one evaluation per
  case.

* **Struct-of-arrays columns.** :class:`StructBatch` mirrors N tracked
  structures into per-field columns (one array per field across the
  batch). Columns are built lazily and, when the lanes share a common
  ancestor, the change journals prove most fields identical — those
  share a broadcast column instead of N dict probes.

* **Big-int lane masking.** For mask-style predicates a whole column is
  packed into one Python big int and tested with a single replicated
  AND — the same dense pre-check idiom the corpus-protocol bitmap
  loops use. A zero result clears every lane at once; the (rare)
  nonzero case narrows to the offending lanes via a translate table.

Nothing here changes results: every consumer gates on
``repro.perf.batch_enabled()`` and is pinned bit-identical to the
incremental path by tests/unit/test_batch_equivalence.py.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import telemetry

#: Bounded-cache flush thresholds. Caches only affect speed, never
#: results, so wholesale flushes are the simplest sound eviction.
_SIGNATURE_CACHE_LIMIT = 65536
_REPLAY_VARIANT_LIMIT = 64


class SignatureCache:
    """Value-keyed memo shared across structure objects.

    Keys are ``(consumer_key, signature)`` where the signature is the
    tuple of values of the consumer's declared read set. Entries must be
    treated as immutable by callers (results are shared between lanes).
    """

    __slots__ = ("_table", "_limit")

    _MISS = object()

    def __init__(self, limit: int = _SIGNATURE_CACHE_LIMIT) -> None:
        self._table: dict = {}
        self._limit = limit

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key, signature):
        """The cached result, or the :data:`MISS` sentinel."""
        hit = self._table.get((key, signature), self._MISS)
        if hit is self._MISS:
            telemetry.counter("batch.memo_miss")
        else:
            telemetry.counter("batch.memo_hit")
        return hit

    @property
    def MISS(self):
        """Sentinel distinguishing a miss from a cached ``None``."""
        return self._MISS

    def peek(self, key, signature):
        """Like :meth:`lookup` but without touching the hit/miss
        counters — for warm passes probing before they seed."""
        return self._table.get((key, signature), self._MISS)

    def store(self, key, signature, value) -> None:
        """Record a result for (key, signature)."""
        if len(self._table) >= self._limit:
            self._table.clear()
        self._table[(key, signature)] = value


class _FirstReads:
    """Read-trace sink recording each field's value at *first* read.

    Duck-types the ``set`` surface the structures' ``_read_trace`` hook
    uses (``add``/``update``), but captures values: a deterministic
    pass re-reading identical first-read values takes identical
    branches, which is what makes replay sound.
    """

    __slots__ = ("values", "_struct_values")

    def __init__(self, struct) -> None:
        self.values: dict = {}
        self._struct_values = struct._values

    def add(self, key) -> None:
        if key not in self.values:
            self.values[key] = self._struct_values[key]

    def update(self, keys) -> None:
        for key in keys:
            self.add(key)


class ReplayMemo:
    """Memo for a deterministic pass that may *write* its structure.

    ``memoized_fixpoint`` only caches a pass at its fixed point — every
    mutating invocation re-runs in full. This memo closes that gap for
    the batched path: a run records (first-read values, net writes,
    result); a later structure whose current values match every
    recorded first-read value gets the writes replayed and the result
    returned without running the pass. Replay applies only each field's
    *final* value — the journal then carries the same changed-field set
    (write/revert churn inside one pass collapses), which is all any
    journal consumer observes.

    Soundness: the probe demands that *all* recorded first-read values
    match. Fields first read after the pass wrote them record derived
    values and can only cause spurious misses, never spurious hits.
    Returned results are shared between hits; callers must not mutate
    them.
    """

    __slots__ = ("fn", "variants", "_limit")

    def __init__(self, fn: Callable, limit: int = _REPLAY_VARIANT_LIMIT) -> None:
        self.fn = fn
        self.variants: list = []
        self._limit = limit

    def _probe(self, struct):
        values = struct._values
        anchor = struct._anchor
        delta = None
        if anchor is not None:
            # Anchored structs (batched deserialize) know their exact
            # field delta vs. a frozen master: a variant whose reads are
            # verified against the master once is then re-checked on
            # only the delta fields — O(journal) instead of O(reads).
            delta = struct.changes_since(anchor.generation)
        # Witness propagation for the full-scan path: when a variant
        # fails on some field, sibling variants (recorded from similar
        # inputs) usually disagree with the probe on that same field,
        # so each candidate first re-tests the last witness — one
        # lookup — before paying a full scan.
        witness = None
        for index, variant in enumerate(self.variants):
            reads = variant[0]
            if delta is not None:
                matched = variant[3]
                mm = matched.get(id(anchor))
                if mm is None:
                    mvals = anchor._values
                    bad = None
                    for key, val in reads.items():
                        if mvals[key] != val:
                            bad = key
                            break
                    # The anchor reference keeps the id stable for the
                    # lifetime of the cache row.
                    mm = (anchor, bad)
                    if len(matched) >= _REPLAY_VARIANT_LIMIT:
                        matched.clear()
                    matched[id(anchor)] = mm
                bad = mm[1]
                if bad is None:
                    for key in delta:
                        val = reads.get(key)
                        if val is not None and values[key] != val:
                            break
                    else:
                        if index:
                            self.variants.insert(0, self.variants.pop(index))
                        telemetry.counter("batch.memo_hit")
                        return variant
                    continue
                if bad not in delta:
                    # Master mismatch on an untouched field: the struct
                    # holds the master's value there, so it mismatches
                    # identically. One lookup, no scan.
                    continue
                # The struct rewrote the master's mismatching field —
                # fall through to the full scan.
            if witness is not None:
                current = values[witness]
                if reads.get(witness, current) != current:
                    continue
            for key, val in reads.items():
                if values[key] != val:
                    witness = key
                    break
            else:
                if index:  # move-to-front: recent signatures repeat
                    self.variants.insert(0, self.variants.pop(index))
                telemetry.counter("batch.memo_hit")
                return variant
        telemetry.counter("batch.memo_miss")
        return None

    def _record(self, struct):
        """Run the pass on *struct* with first-read tracing; record it."""
        outer = struct._read_trace
        recorder = _FirstReads(struct)
        struct._read_trace = recorder
        log_base = struct._log_base
        mark = len(struct._log)
        try:
            result = self.fn(struct)
        finally:
            struct._read_trace = outer
        if outer is not None:
            outer.update(recorder.values)
        writes: tuple = ()
        recordable = struct._log_base == log_base  # journal not truncated
        if recordable:
            seen: set = set()
            changed = []
            for key in struct._log[mark:]:
                if key not in seen:
                    seen.add(key)
                    changed.append(key)
            values = struct._values
            writes = tuple((key, values[key]) for key in changed)
            if len(self.variants) >= self._limit:
                self.variants.pop()
            # Fourth slot: per-master match cache for anchored probes —
            # {id(master): (master, first mismatching read or None)}.
            self.variants.insert(0, (recorder.values, writes, result, {}))
        return result, writes

    def run(self, struct):
        """Run (or replay) the pass against *struct*, mutating it."""
        variant = self._probe(struct)
        if variant is not None:
            reads, writes, result = variant[0], variant[1], variant[2]
            for key, value in writes:
                struct.write(key, value)
            outer = struct._read_trace
            if outer is not None:
                outer.update(reads)
            return result
        result, _ = self._record(struct)
        return result

    def predict(self, struct):
        """The pass's (result, net writes) for *struct*, without mutating.

        A miss runs the pass on a throwaway light image of *struct*, so
        prediction is exactly as accurate as execution.
        """
        variant = self._probe(struct)
        if variant is not None:
            reads, writes, result = variant[0], variant[1], variant[2]
            outer = struct._read_trace
            if outer is not None:
                outer.update(reads)
            return result, writes
        return self._record(struct.light_image())


class StructBatch:
    """Struct-of-arrays view over N tracked structures (Vmcs or Vmcb).

    Columns (one tuple of per-lane values per field) build lazily. With
    a *base* ancestor, the lanes' change journals bound which fields
    can differ: everything outside the union of journals shares one
    broadcast column built from a single read of the base.
    """

    def __init__(self, structs: Sequence, base=None,
                 base_generation: int | None = None) -> None:
        self.structs = list(structs)
        self._columns: dict = {}
        self._changed = None
        if base is not None:
            gen = (base.generation if base_generation is None
                   else base_generation)
            changed: set | None = set()
            for struct in self.structs:
                delta = struct.changes_since(gen)
                if delta is None:  # journal truncated: no bound known
                    changed = None
                    break
                changed |= delta
            self._changed = changed
            self._base_values = base._values
        else:
            self._base_values = None

    def __len__(self) -> int:
        return len(self.structs)

    def column(self, key) -> tuple:
        """The per-lane value column for field *key*."""
        col = self._columns.get(key)
        if col is None:
            if (self._changed is not None and key not in self._changed
                    and self._base_values is not None):
                col = (self._base_values[key],) * len(self.structs)
            else:
                col = tuple(s._values[key] for s in self.structs)
            self._columns[key] = col
        return col

    def signatures(self, reads: Sequence) -> list[tuple]:
        """Per-lane column signatures over *reads* (zip of columns)."""
        if not self.structs:
            return []
        return list(zip(*(self.column(key) for key in reads)))


# --------------------------------------------------------------------------
# Big-int lane masking (the PR-4 dense bitmap idioms, lifted to columns)
# --------------------------------------------------------------------------

#: Translate table classifying bytes as zero / nonzero in C speed.
_NONZERO_BYTE = bytes(1 if b else 0 for b in range(256))


def pack_lanes(column: Sequence[int], bits: int) -> int:
    """Pack a value column into one big int, *bits* per lane."""
    packed = 0
    shift = 0
    for value in column:
        packed |= value << shift
        shift += bits
    return packed


def replicate_mask(mask: int, bits: int, lanes: int) -> int:
    """*mask* repeated across *lanes* lane slots of *bits* each."""
    out = mask
    width = bits
    total = bits * lanes
    while width < total:  # geometric doubling
        out |= out << width
        width *= 2
    return out & ((1 << total) - 1)


def masked_lanes(column: Sequence[int], mask: int, bits: int) -> list[int]:
    """Lane indices where ``value & mask`` is nonzero.

    One replicated AND answers the common all-clean case with a single
    big-int zero test; only a dirty column pays the per-lane narrowing,
    which classifies bytes through a translate table instead of
    shifting the big int once per lane.
    """
    lanes = len(column)
    if not lanes:
        return []
    hits = pack_lanes(column, bits) & replicate_mask(mask, bits, lanes)
    if not hits:
        return []
    lane_bytes = bits // 8
    flags = hits.to_bytes(lanes * lane_bytes, "little").translate(_NONZERO_BYTE)
    return [i for i in range(lanes)
            if 1 in flags[i * lane_bytes:(i + 1) * lane_bytes]]
