"""x86 architecture substrate: registers, segments, MSRs, paging, events."""

from repro.arch.cpuid import Vendor
from repro.arch.exceptions import GuestFault, HostCrash, TripleFault, Vector

__all__ = ["Vendor", "GuestFault", "HostCrash", "TripleFault", "Vector"]
