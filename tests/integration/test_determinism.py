"""End-to-end determinism: the reproducibility contract of the suite.

Every number in EXPERIMENTS.md relies on campaigns being pure functions
of (seed, budget, configuration); these tests pin that property across
every hypervisor and both vendors.
"""

import pytest

from repro import ComponentToggles, NecoFuzz, Vendor
from repro.baselines import NestFuzzCampaign, SyzkallerCampaign


def fingerprint(result):
    return (sorted(result.covered_lines),
            result.engine_stats.queue_adds,
            [(r.iteration, r.anomaly.signature()) for r in result.reports])


CONFIGS = [
    ("kvm", Vendor.INTEL),
    ("kvm", Vendor.AMD),
    ("xen", Vendor.INTEL),
    ("xen", Vendor.AMD),
    ("virtualbox", Vendor.INTEL),
]


class TestCampaignDeterminism:
    @pytest.mark.parametrize("hypervisor,vendor", CONFIGS,
                             ids=[f"{h}-{v.value}" for h, v in CONFIGS])
    def test_identical_reruns(self, hypervisor, vendor):
        results = [
            NecoFuzz(hypervisor=hypervisor, vendor=vendor, seed=13).run(60)
            for _ in range(2)
        ]
        assert fingerprint(results[0]) == fingerprint(results[1])

    def test_toggles_change_behaviour_but_stay_deterministic(self):
        toggles = ComponentToggles(use_validator=False)
        a = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=13,
                     toggles=toggles).run(40)
        b = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=13,
                     toggles=toggles).run(40)
        assert fingerprint(a) == fingerprint(b)

    def test_async_extension_deterministic(self):
        a = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=13,
                     async_events=True).run(40)
        b = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=13,
                     async_events=True).run(40)
        assert fingerprint(a) == fingerprint(b)


class TestBaselineDeterminism:
    def test_syzkaller(self):
        a = SyzkallerCampaign(vendor=Vendor.INTEL, seed=4).run(30)
        b = SyzkallerCampaign(vendor=Vendor.INTEL, seed=4).run(30)
        assert sorted(a.covered_lines) == sorted(b.covered_lines)

    def test_nestfuzz(self):
        a = NestFuzzCampaign(vendor=Vendor.AMD, seed=4).run(30)
        b = NestFuzzCampaign(vendor=Vendor.AMD, seed=4).run(30)
        assert sorted(a.covered_lines) == sorted(b.covered_lines)
