"""Campaign telemetry: the measurement plane (DESIGN.md §11).

One module-level switch (like :mod:`repro.perf`'s incremental knob)
selects between three modes:

``off``
    Every call is a near-free early return. The mode the overhead gate
    compares against.
``metrics`` (default)
    Counters, gauges, and fixed-bucket histograms accumulate in a
    process-local :class:`~repro.telemetry.registry.MetricsRegistry`.
    No I/O on the hot path.
``full``
    ``metrics`` plus a structured JSONL event stream per worker
    (``<root>/worker-NNN/events.jsonl``), merged by the orchestrator.

Telemetry is observational by contract: no RNG draws, no influence on
scheduling, corpus, or coverage — campaign fingerprints are bit-for-bit
identical across all three modes (pinned by
``tests/telemetry/test_fingerprint_modes.py``), which is why the mode
flag is excluded from the fingerprint in the first place.

All span timing uses ``time.perf_counter`` — a monotonic clock — so an
NTP step or wall-clock skew mid-campaign cannot produce negative or
inflated durations. Wall-clock time never enters a duration anywhere in
this package.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.telemetry.events import EventStream, merge_events, read_events
from repro.telemetry.registry import BUCKETS, Histogram, MetricsRegistry

__all__ = [
    "BUCKETS",
    "EventStream",
    "Histogram",
    "MODES",
    "MetricsRegistry",
    "METRICS_NAME",
    "campaign_scope",
    "counter",
    "current_shard",
    "event",
    "gauge",
    "init_worker",
    "load_metrics",
    "merge_events",
    "mode",
    "observe",
    "read_events",
    "registry",
    "save_metrics",
    "set_mode",
    "set_shard",
    "shard_scope",
    "snapshot",
    "span",
]

MODES = ("off", "metrics", "full")
METRICS_NAME = "metrics.json"

_mode: str = "metrics"
_registry: MetricsRegistry = MetricsRegistry()
_events: EventStream | None = None
_shard = None


def mode() -> str:
    """The active telemetry mode."""
    return _mode


def set_mode(value: str) -> None:
    global _mode
    if value not in MODES:
        raise ValueError(f"unknown telemetry mode {value!r}")
    _mode = value


def registry() -> MetricsRegistry:
    """The live process-local registry."""
    return _registry


def current_shard():
    return _shard


def set_shard(index) -> None:
    """Label subsequent metrics/events with worker *index* (or None)."""
    global _shard
    _shard = index


@contextmanager
def shard_scope(index) -> Iterator[None]:
    """Temporarily attribute metrics to one shard (inline workers)."""
    global _shard
    saved = _shard
    _shard = index
    try:
        yield
    finally:
        _shard = saved


# --- recording ---------------------------------------------------------


def counter(name: str, n: int = 1) -> None:
    if _mode == "off":
        return
    _registry.counter(name, n, shard=_shard)


def gauge(name: str, value: float) -> None:
    if _mode == "off":
        return
    _registry.gauge(name, value, shard=_shard)


def observe(name: str, seconds: float) -> None:
    """Record one span duration (histogram + full-mode event)."""
    if _mode == "off":
        return
    _registry.observe(name, seconds, shard=_shard)
    if _events is not None:
        _events.emit(_shard, "span", span=name, dur=round(seconds, 6))


def event(name: str, **fields) -> None:
    """Emit one structured event (``full`` mode only)."""
    if _events is not None:
        _events.emit(_shard, name, **fields)


class _Span:
    """Monotonic-clock span; records its duration even when the body
    raises (the ``try/finally`` the old hand-rolled timers lacked)."""

    __slots__ = ("name", "elapsed", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._started
        observe(self.name, self.elapsed)
        return False


class _NoopSpan:
    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def span(name: str):
    """A context manager timing its body into histogram *name*."""
    if _mode == "off":
        return _NOOP_SPAN
    return _Span(name)


# --- lifecycle ---------------------------------------------------------


def snapshot() -> dict:
    """JSON-ready copy of the live registry."""
    return _registry.snapshot()


def save_metrics(path: Path) -> None:
    """Atomically persist the live registry snapshot to *path*."""
    from repro.fuzzer.crashes import atomic_write_bytes

    payload = json.dumps(snapshot(), indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(Path(path), payload.encode())


def load_metrics(path: Path) -> MetricsRegistry | None:
    """Read a persisted snapshot; ``None`` when missing or corrupt."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return MetricsRegistry.from_snapshot(data)


def init_worker(mode_value: str, root: Path | None, shard) -> None:
    """Configure telemetry inside a freshly spawned worker process.

    Installs a fresh registry (the parent's pre-fork metrics must not
    be double-counted through the worker's report) and, in ``full``
    mode with a root, opens the worker's event stream.
    """
    global _registry, _events, _shard
    set_mode(mode_value)
    _registry = MetricsRegistry()
    _shard = shard
    if _events is not None:
        _events.close()
    _events = (EventStream(Path(root))
               if mode_value == "full" and root is not None else None)


@contextmanager
def campaign_scope(mode_value: str, root: Path | None) -> Iterator[MetricsRegistry]:
    """Scope one campaign's telemetry: fresh registry, own event root.

    Everything recorded inside the scope lands in the yielded registry;
    on exit the previous mode/registry/stream are restored (and the
    scope's event files closed), so campaigns — and tests — can never
    leak metrics into each other.
    """
    global _mode, _registry, _events, _shard
    saved = (_mode, _registry, _events, _shard)
    set_mode(mode_value)
    _registry = MetricsRegistry()
    _events = (EventStream(Path(root))
               if mode_value == "full" and root is not None else None)
    _shard = None
    try:
        yield _registry
    finally:
        if _events is not None:
            _events.close()
        _mode, _registry, _events, _shard = saved


def flush() -> None:
    """Flush any open event stream (pre-checkpoint, pre-exit)."""
    if _events is not None:
        _events.flush()
