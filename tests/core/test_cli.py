"""Tests for the `python -m repro` command-line interface."""

from pathlib import Path

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.hypervisor == "kvm"
        assert args.vendor == "intel"
        assert args.iterations == 500

    def test_all_flags(self):
        args = build_parser().parse_args([
            "--hypervisor", "xen", "--vendor", "amd", "--iterations", "50",
            "--seed", "9", "--patched", "a,b", "--blackbox",
            "--no-validator", "--async-events"])
        assert args.hypervisor == "xen"
        assert args.patched == "a,b"
        assert args.blackbox and args.no_validator and args.async_events


class TestMain:
    def test_short_campaign(self, capsys):
        code = main(["--iterations", "25", "--seed", "2",
                     "--sample-every", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nested-code coverage" in out
        assert "coverage" in out

    def test_vbox_amd_rejected(self, capsys):
        code = main(["--hypervisor", "virtualbox", "--vendor", "amd"])
        assert code == 2

    def test_reports_dir(self, tmp_path: Path, capsys):
        code = main(["--iterations", "250", "--seed", "3",
                     "--reports-dir", str(tmp_path / "findings")])
        assert code == 0
        out = capsys.readouterr().out
        if "iteration" in out and (tmp_path / "findings").exists():
            assert list((tmp_path / "findings").iterdir())

    def test_patched_flags_applied(self, capsys):
        code = main(["--iterations", "250", "--seed", "3",
                     "--patched", "cr4_pae_consistency,dummy_root"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Assertion" not in out  # bug #3 silenced by dummy_root
