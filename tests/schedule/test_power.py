"""Power-schedule invariants: energy, flat parity, fast determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.fuzzer.queue import EXERCISE_CAP, QueueEntry, SeedQueue
from repro.fuzzer.rng import Rng
from repro.schedule import (
    BASE_ENERGY,
    SCHEDULE_MODES,
    FastSchedule,
    FlatSchedule,
    OperatorBandit,
    make_schedule,
)

coverage_strategy = st.one_of(
    st.none(),
    st.lists(st.tuples(st.integers(0, 65535), st.sampled_from((1, 2, 4, 8))),
             max_size=300).map(tuple))

entry_strategy = st.builds(
    QueueEntry,
    data=st.binary(min_size=0, max_size=8),
    found_at=st.integers(0, 10**9),
    new_bits=st.integers(0, 2),
    exercised=st.integers(0, 10**4),
    favored=st.booleans(),
    imported=st.booleans(),
    coverage=coverage_strategy,
    crashed=st.booleans(),
    anomaly=st.booleans(),
    redundant=st.booleans())


class TestEnergy:
    @given(entry_strategy)
    @settings(max_examples=200, deadline=None)
    def test_energy_always_positive_integer(self, entry):
        energy = FastSchedule().energy(entry)
        assert isinstance(energy, int)
        assert energy >= 1

    def test_novelty_orders_energy(self):
        sched = FastSchedule()
        entries = [QueueEntry(b"x", found_at=10, new_bits=bits)
                   for bits in (0, 1, 2)]
        energies = [sched.energy(e) for e in entries]
        assert energies == sorted(energies)
        assert energies[0] < energies[2]

    def test_favored_under_cap_boosted(self):
        sched = FastSchedule()
        plain = QueueEntry(b"x", found_at=10, new_bits=1)
        favored = QueueEntry(b"x", found_at=10, new_bits=1, favored=True)
        assert sched.energy(favored) > sched.energy(plain)

    def test_favored_boost_expires_at_cap(self):
        sched = FastSchedule()
        spent = QueueEntry(b"x", found_at=10, new_bits=1, favored=True,
                           exercised=EXERCISE_CAP)
        plain = QueueEntry(b"x", found_at=10, new_bits=1,
                           exercised=EXERCISE_CAP)
        assert sched.energy(spent) == sched.energy(plain)

    def test_exercise_decays_energy(self):
        sched = FastSchedule()
        fresh = QueueEntry(b"x", found_at=10, new_bits=2)
        tired = QueueEntry(b"x", found_at=10, new_bits=2, exercised=40)
        assert sched.energy(tired) < sched.energy(fresh)

    def test_costly_coverage_penalised(self):
        sched = FastSchedule()
        cheap = QueueEntry(b"x", found_at=10, new_bits=2,
                           coverage=tuple((i, 1) for i in range(8)))
        costly = QueueEntry(b"x", found_at=10, new_bits=2,
                            coverage=tuple((i, 1) for i in range(512)))
        assert sched.energy(costly) < sched.energy(cheap)

    def test_redundant_sits_at_floor(self):
        sched = FastSchedule()
        entry = QueueEntry(b"x", found_at=10, new_bits=2, favored=True,
                           redundant=True)
        assert sched.energy(entry) == 1

    def test_base_energy_is_the_plain_seed_scale(self):
        # A fresh initial seed (new_bits 0, found_at 0) carries exactly
        # the base energy — the formula's neutral point.
        assert FastSchedule().energy(
            QueueEntry(b"x", found_at=0, new_bits=0)) == BASE_ENERGY


def _queue(entries=6):
    queue = SeedQueue()
    queue.add_seed(b"seed")
    for i in range(entries - 1):
        queue.add_finding(bytes([i]) * 4, iteration=10 * (i + 1),
                          new_bits=2 - (i % 2),
                          coverage=((i, 1), (i + 100, 2)))
    return queue


class TestFlatParity:
    def test_flat_pick_is_queue_pick_verbatim(self):
        """FlatSchedule must add zero draws and zero behaviour.

        Drive two equal queues, one through the schedule and one
        through the raw pre-schedule call; every pick and the final RNG
        stream position must match exactly.
        """
        sched = FlatSchedule()
        q1, q2 = _queue(), _queue()
        r1, r2 = Rng(7), Rng(7)
        for _ in range(64):
            assert (q1.entries.index(sched.pick(q1, r1))
                    == q2.entries.index(q2.pick(r2)))
        assert r1.getstate() == r2.getstate()


class TestFastSchedule:
    def test_pick_sequence_deterministic(self):
        s1, s2 = FastSchedule(), FastSchedule()
        q1, q2 = _queue(), _queue()
        r1, r2 = Rng(5), Rng(5)
        seq1 = [q1.entries.index(s1.pick(q1, r1)) for _ in range(200)]
        seq2 = [q2.entries.index(s2.pick(q2, r2)) for _ in range(200)]
        assert seq1 == seq2

    def test_pick_increments_exercised(self):
        sched, queue, rng = FastSchedule(), _queue(), Rng(5)
        before = sum(e.exercised for e in queue.entries)
        sched.pick(queue, rng)
        assert sum(e.exercised for e in queue.entries) == before + 1

    def test_empty_queue_raises(self):
        with pytest.raises(RuntimeError):
            FastSchedule().pick(SeedQueue(), Rng(1))

    def test_distillation_runs_on_cadence(self):
        sched = FastSchedule(distill_every=10)
        queue, rng = _queue(), Rng(5)
        # A duplicate of an earlier entry's coverage: distillable.
        queue.add_finding(b"dup", iteration=99, new_bits=1,
                          coverage=queue.entries[1].coverage)
        for _ in range(10):
            sched.pick(queue, rng)
        assert sched.distill_runs == 1
        assert queue.entries[-1].redundant

    def test_distillation_disabled_at_zero(self):
        sched = FastSchedule(distill_every=0)
        queue, rng = _queue(), Rng(5)
        for _ in range(50):
            sched.pick(queue, rng)
        assert sched.distill_runs == 0


class TestMakeSchedule:
    def test_flat_has_no_bandit(self):
        sched, bandit = make_schedule("flat", Rng(3))
        assert isinstance(sched, FlatSchedule) and bandit is None

    def test_fast_gets_forked_bandit(self):
        rng = Rng(3)
        before = rng.getstate()
        sched, bandit = make_schedule("fast", rng)
        assert isinstance(sched, FastSchedule)
        assert isinstance(bandit, OperatorBandit)
        # Forking must not consume main-stream draws.
        assert rng.getstate() == before
        assert bandit.rng.seed != rng.seed

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_schedule("bogus", Rng(1))

    def test_modes_enumerated(self):
        assert SCHEDULE_MODES == ("flat", "fast")
