"""Campaign-fingerprint pins: corpus protocol v2 must match v1 exactly.

The strongest contract this PR makes: switching the sync wire format —
including letting the subsumption filter skip executions — changes
*nothing* a campaign can observe. Covered lines, virgin map, corpus
digests, and every fingerprinted stat are bit-for-bit identical for
both vendors; only ``imports_skipped_subsumed`` (deliberately outside
the fingerprint) reveals which path ran.
"""

import pytest

from repro import Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import (
    CampaignAborted,
    ParallelCampaign,
    campaign_fingerprint,
)

SEED = 11
BUDGET = 40
SYNC_EVERY = 10

VENDORS = [("kvm", Vendor.INTEL), ("xen", Vendor.AMD)]


def run(sync_format, hypervisor, vendor, **overrides):
    kwargs = dict(hypervisor=hypervisor, vendor=vendor, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="inline",
                  sync_format=sync_format)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs).run(BUDGET)


class TestFormatEquivalence:
    @pytest.mark.parametrize("hypervisor,vendor", VENDORS,
                             ids=["vmx", "svm"])
    def test_v2_matches_v1_bit_for_bit(self, hypervisor, vendor):
        v1 = run("v1", hypervisor, vendor)
        v2 = run("v2", hypervisor, vendor)
        assert campaign_fingerprint(v2) == campaign_fingerprint(v1)
        # The filter really did elide executions — same outcome, less work.
        assert v2.engine_stats.imports_skipped_subsumed > 0
        assert v1.engine_stats.imports_skipped_subsumed == 0

    @pytest.mark.parametrize("hypervisor,vendor", VENDORS,
                             ids=["vmx", "svm"])
    def test_v2_is_self_deterministic(self, hypervisor, vendor):
        first = run("v2", hypervisor, vendor)
        second = run("v2", hypervisor, vendor)
        assert campaign_fingerprint(first) == campaign_fingerprint(second)
        assert (first.engine_stats.imports_skipped_subsumed
                == second.engine_stats.imports_skipped_subsumed)

    def test_merged_result_reports_subsumed_imports(self):
        result = run("v2", "kvm", Vendor.INTEL)
        assert result.engine_stats.imports_skipped_subsumed > 0
        assert str(result.engine_stats.imports_skipped_subsumed) \
            in result.summary()

    def test_sync_overhead_breakdown_is_populated(self):
        result = run("v2", "kvm", Vendor.INTEL)
        overhead = result.sync_overhead
        assert overhead.export_seconds > 0
        assert overhead.scan_seconds > 0
        assert overhead.entries_exported > 0
        assert overhead.entries_scanned > 0
        # Filter time only accrues when candidates carried coverage.
        assert overhead.filter_seconds >= 0

    def test_filter_off_still_matches_v1(self):
        # Isolates the wire format from the filter: with the filter
        # disabled, v2 is purely a serialization change.
        v1 = run("v1", "kvm", Vendor.INTEL)
        v2 = run("v2", "kvm", Vendor.INTEL, subsumption_filter=False)
        assert campaign_fingerprint(v2) == campaign_fingerprint(v1)
        assert v2.engine_stats.imports_skipped_subsumed == 0


class TestResumeAcrossFormats:
    """Kill-and-resume stays fingerprint-deterministic on both formats."""

    @pytest.mark.parametrize("sync_format", ["v1", "v2"])
    def test_checkpointed_resume_is_fingerprint_equal(self, tmp_path,
                                                      sync_format):
        def campaign(sync_dir, **overrides):
            kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                          workers=2, sync_every=SYNC_EVERY, mode="inline",
                          sync_format=sync_format, sync_dir=sync_dir,
                          checkpoint_interval=1)
            kwargs.update(overrides)
            return ParallelCampaign(**kwargs)

        clean = campaign(tmp_path / "clean").run(BUDGET)

        crashed_dir = tmp_path / "crashed"
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                campaign(crashed_dir, max_restarts=0).run(BUDGET)
        assert (crashed_dir / "campaign.ckpt").exists()

        resumed = campaign(crashed_dir, resume=True).run(BUDGET)
        assert resumed.engine_stats.iterations == BUDGET
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)
