"""The federation node: retrying RPC client + the per-node protocol loop.

:class:`NodeClient` owns one socket to the coordinator and gives the
protocol loop exactly one primitive: :meth:`request` — send an
idempotent, sequence-numbered message and wait for the matching reply.
Everything unreliable about the link is absorbed here:

* **Timeout + resend.** Replies are matched by ``seq``; stale replies
  are discarded. "Patient" requests (the barrier ops — claim, fetch)
  resend forever, one send per timeout period, which doubles as a
  keepalive while the coordinator holds them at a barrier; short ops
  resend up to ``max_attempts`` and then raise
  :class:`~repro.parallel.transport.coordinator.TransportError`.
* **Reconnect with capped exponential backoff + jitter**
  (:func:`repro.parallel.backoff.expo_backoff`) after any connection
  failure — including the ones the chaos plan injects.
* **Fault gate.** Every outbound protocol frame passes
  :meth:`FaultPlan.take_net_fault`: ``drop_frame`` swallows the send
  (the resend recovers it), ``delay_frame`` sleeps first,
  ``corrupt_frame`` flips a byte so the coordinator's CRC check tears
  the connection down, ``partition`` closes the link and holds it down
  for ``seconds`` — execution continues locally; on reconnect the
  resends and the offset-based push catch the node back up.
* **Heartbeats.** A daemon thread sends ``hb`` frames every interval so
  the coordinator can tell a slow node from a dead one. Heartbeats
  bypass the fault gate and the frame counter (they are timing-driven;
  counting them would make ``at_frame`` plans machine-dependent) and
  fall silent during a partition, exactly like the real link.

:func:`run_node` is the whole node-side protocol: the lockstep
claim → run → push → complete → fetch → apply round, identical in
observable schedule to one worker of the inline stealing loop.
"""

from __future__ import annotations

import pickle
import threading
import time

from repro import faults, telemetry
from repro.coverage import delta
from repro.parallel import wire
from repro.parallel.backoff import expo_backoff
from repro.parallel.sync import consume_record
from repro.parallel.transport import frames
from repro.parallel.transport.coordinator import (
    TransportError,
    connect_socket,
)

#: The telemetry registry has no internal locking; node threads and
#: their heartbeat threads share one process, so net.* counters funnel
#: through this lock.
_TELEMETRY_LOCK = threading.Lock()


def _count(name: str, value: int = 1) -> None:
    with _TELEMETRY_LOCK:
        telemetry.counter(name, value)


class NodeClient:
    """One node's connection to the coordinator (thread-compatible:
    owned by a single protocol thread plus its heartbeat daemon)."""

    def __init__(self, address: tuple, node: int | None, *,
                 timeout: float = 5.0,
                 max_attempts: int = 8,
                 connect_attempts: int = 64,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 heartbeat_interval: float = 1.0,
                 fault_plan: faults.FaultPlan | None = None) -> None:
        self.address = address
        self.node = node
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.connect_attempts = connect_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat_interval = heartbeat_interval
        self.fault_plan = fault_plan
        self._sock = None
        self._decoder = frames.FrameDecoder()
        self._seq = 0
        self._frames = 0  # outbound protocol frames (heartbeats excluded)
        self._send_lock = threading.Lock()
        self._partition_until = 0.0
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None

    # --- connection management ----------------------------------------------

    def _plan(self) -> faults.FaultPlan | None:
        return (self.fault_plan if self.fault_plan is not None
                else faults.active())

    def _close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _ensure_connected(self) -> None:
        """Connect (or reconnect) with capped expo backoff + jitter.

        A live partition window is honoured first: the link is down by
        decree, so connecting blocks until the window ends — which is
        exactly what the node loop should do, because running an
        already-held lease needs no network (graceful degradation)."""
        if self._sock is not None:
            return
        self._wait_partition()
        attempt = 0
        while True:
            attempt += 1
            try:
                sock = connect_socket(self.address, self.timeout)
            except OSError as exc:
                if attempt >= self.connect_attempts:
                    raise TransportError(
                        f"node {self.node}: coordinator at "
                        f"{self.address} unreachable after {attempt} "
                        f"attempts: {exc}") from exc
                time.sleep(expo_backoff(self.backoff_base, self.backoff_cap,
                                        attempt, jitter=0.25))
                self._wait_partition()
                continue
            sock.settimeout(self.timeout)
            self._sock = sock
            self._decoder = frames.FrameDecoder()
            if attempt > 1 or self._frames:
                _count("net.reconnects")
            return

    def _wait_partition(self) -> None:
        while True:
            remaining = self._partition_until - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))

    # --- sending ------------------------------------------------------------

    def _send_protocol(self, data: bytes) -> None:
        """One outbound protocol frame, through the fault gate."""
        with self._send_lock:
            self._frames += 1
            plan = self._plan()
            if plan is not None:
                spec = plan.take_net_fault(self.node, self._frames)
                if spec is not None:
                    plan.record(spec.kind, self.node,
                                f"frame {self._frames}")
                    if spec.kind == "drop_frame":
                        _count("net.frames_dropped")
                        return
                    if spec.kind == "partition":
                        self._partition_until = (time.monotonic()
                                                 + spec.seconds)
                        self._close()
                        _count("net.partition_seconds", int(spec.seconds))
                        return  # the frame is lost with the link
                    if spec.kind == "delay_frame":
                        time.sleep(spec.seconds)
                    elif spec.kind == "corrupt_frame":
                        flipped = bytearray(data)
                        flipped[-1] ^= 0xFF
                        data = bytes(flipped)
            self._ensure_connected()
            try:
                self._sock.sendall(data)
                _count("net.frames_sent")
            except OSError:
                # The await/resend path notices and reconnects.
                self._close()

    def _send_heartbeat(self) -> None:
        with self._send_lock:
            if self._sock is None or time.monotonic() < self._partition_until:
                return  # a downed link carries no heartbeats
            try:
                self._sock.sendall(frames.pack_ctrl(
                    {"op": "hb", "node": self.node}))
            except OSError:
                self._close()

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_interval):
            self._send_heartbeat()

    def start_heartbeats(self) -> None:
        if self._hb_thread is None:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name=f"necofuzz-hb-{self.node}")
            self._hb_thread.start()

    def close(self) -> None:
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
            self._hb_thread = None
        with self._send_lock:
            self._close()

    # --- request/reply ------------------------------------------------------

    def request(self, op: str, body: dict | None = None, *,
                blob: bytes | None = None,
                blob_type: int = frames.FT_BLOB,
                patient: bool = False) -> tuple[dict, bytes]:
        """Send one idempotent request; return ``(reply, raw)``.

        At-least-once delivery: the request is resent after every
        timeout period until its reply arrives (*patient*), or up to
        ``max_attempts`` times. The receiving side is exactly-once by
        construction — every op is idempotent — so resends are always
        safe.
        """
        self._seq += 1
        seq = self._seq
        msg = {"op": op, "node": self.node, "seq": seq}
        if body:
            msg.update(body)
        data = (frames.pack_blob(msg, blob, ftype=blob_type)
                if blob is not None else frames.pack_ctrl(msg))
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                _count("net.frames_resent")
            self._send_protocol(data)
            reply = self._await_reply(seq)
            if reply is not None:
                return reply
            if not patient and attempt >= self.max_attempts:
                raise TransportError(
                    f"node {self.node}: no reply to {op!r} after "
                    f"{attempt} attempt(s)")

    def _await_reply(self, seq: int) -> tuple[dict, bytes] | None:
        """Wait up to one timeout period for the reply matching *seq*.

        ``None`` means resend: the period elapsed, the link died, or
        the inbound stream was corrupt.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            sock = self._sock
            if sock is None:
                return None  # dropped mid-wait; resend reconnects
            try:
                sock.settimeout(min(remaining, 0.25))
                data = sock.recv(65536)
            except (TimeoutError, OSError) as exc:
                if isinstance(exc, TimeoutError):
                    continue
                self._close()
                return None
            if not data:
                self._close()
                return None
            try:
                received = self._decoder.feed(data)
            except frames.FrameError:
                _count("net.decode_errors")
                self._close()
                return None
            for ftype, payload in received:
                _count("net.frames_received")
                if ftype in (frames.FT_BLOB, frames.FT_DELTA):
                    reply, raw = frames.split_blob(payload)
                else:
                    reply, raw = frames.parse_ctrl(payload), b""
                if reply.get("seq") == seq:
                    return reply, raw
                # A stale reply to an earlier (resent) request: discard.

    # --- protocol ops -------------------------------------------------------

    def hello(self, *, want_config: bool = False) -> tuple[dict, bytes]:
        body: dict = {"want_config": True} if want_config else {}
        return self.request("hello", body)

    def claim(self, round_no: int, rate: float) -> dict:
        reply, _raw = self.request("claim",
                                   {"round": round_no, "rate": rate},
                                   patient=True)
        return reply

    def push(self, base: int, blobs: list[bytes]) -> int:
        reply, _raw = self.request(
            "push", {"base": base, "count": len(blobs)},
            blob=frames.encode_blobs(blobs))
        return int(reply["acked"])

    def push_delta(self, round_no: int, payload: bytes,
                   universe: int) -> dict:
        """Push one encoded NCD1 coverage delta for *round_no*."""
        reply, _raw = self.request(
            "delta", {"round": round_no, "universe": universe},
            blob=payload, blob_type=frames.FT_DELTA)
        return reply

    def complete(self, lease_id: int, round_no: int) -> None:
        self.request("complete", {"lease": lease_id, "round": round_no})

    def fetch(self, round_no: int, offsets: dict) -> tuple[dict, bytes]:
        return self.request("fetch",
                            {"round": round_no, "offsets": offsets},
                            patient=True)

    def report(self, payload: bytes) -> None:
        self.request("report", blob=payload)

    def bye(self) -> None:
        self.request("bye")


# --- the node protocol loop -------------------------------------------------


class _NullLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def _push_coverage_delta(client: NodeClient, engine,
                         tracker: delta.DeltaTracker, round_no: int,
                         universe: int) -> None:
    """Publish this node's virgin-map delta for *round_no*.

    At most three attempts: a rejected or corrupt delta gets a
    ``resync`` reply, the tracker drops its baseline, and the next
    attempt ships a full snapshot (``base_generation == 0``), which the
    coordinator always accepts. Still failing after that is harmless —
    the coordinator simply serves this node full NCQ2 relay until a
    later round's delta lands (the fallback leg of DESIGN.md §15).
    """
    for _attempt in range(3):
        taken = tracker.take(engine.virgin)
        payload = delta.encode(taken)
        plan = client._plan()
        if plan is not None:
            spec = plan.take_delta_fault(client.node, round_no + 1)
            if spec is not None:
                plan.record("corrupt_delta", client.node,
                            f"round {round_no}")
                # Flip a byte inside the sealed NCD1 payload: the frame
                # stays valid, the delta CRC fails at the coordinator.
                corrupted = bytearray(payload)
                corrupted[len(corrupted) // 2] ^= 0xFF
                payload = bytes(corrupted)
        reply = client.push_delta(round_no, payload, universe)
        if reply.get("status") == "ok":
            tracker.commit(taken)
            return
        tracker.resync()


def run_node(client: NodeClient, worker, *,
             subsumption_filter: bool = True,
             exec_lock=None, delta_plane: bool = True):
    """Drive one :class:`CampaignWorker` through the federation protocol.

    The observable schedule is one worker of the inline stealing loop:
    claim at the round barrier; run the granted lease; publish fresh
    corpus records; complete the lease; push the round's coverage delta
    (*delta_plane*); fetch and apply every partner's round records (in
    partner index order, through
    :func:`repro.parallel.sync.consume_record` — the same exactly-once
    apply step the filesystem sync path uses). Records the coordinator
    elided against our own pushed map arrive as a count plus one
    unioned line payload and book through
    :meth:`FuzzEngine.import_subsumed_batch` — the decisions are the
    ones our local filter would have made, so the fingerprint matches
    the record-replay path bit for bit.

    *exec_lock* serializes engine execution for in-process federations:
    the coverage tracer is process-global, so only one node may run
    cases at a time. Barrier waits happen outside the lock — a node
    blocked on the network never stops a partner from fuzzing.
    """
    lock = exec_lock if exec_lock is not None else _NullLock()
    engine = worker.campaign.engine
    codec = worker.line_codec
    absorb = worker.campaign.agent.absorb_lines
    reply, _raw = client.hello()
    if reply.get("status") != "ok":
        raise TransportError(
            f"node {client.node}: coordinator refused hello "
            f"(status={reply.get('status')!r})")
    client.start_heartbeats()
    tracker = delta.DeltaTracker() if delta_plane else None
    universe = len(codec.universe) if codec is not None else 0
    rounds = 0
    pushed = 0        # records acked into our relay queue
    offsets: dict[str, int] = {}  # partner -> relay records consumed
    while True:
        grant = client.claim(rounds, worker.rate)
        if grant.get("drained") or grant.get("retired"):
            break
        lease = grant.get("lease")
        if lease is not None:
            lease_id, size = lease
            with lock:
                worker.run_lease(size)
            # Push everything past the acked offset: after a partition
            # or a lost ack this resends the tail, and the coordinator
            # deduplicates against its relay manifest.
            outbound = [e for e in engine.queue.entries if not e.imported]
            blobs = [wire.pack_record(pushed + k, entry, codec)
                     for k, entry in enumerate(outbound[pushed:])]
            pushed = client.push(pushed, blobs)
            client.complete(lease_id, rounds)
        if tracker is not None:
            # Every member pushes (even leaseless rounds): the fetch
            # barrier guarantees the coordinator holds this round's map
            # before it computes anyone's reply.
            _push_coverage_delta(client, engine, tracker, rounds, universe)
        reply, raw = client.fetch(rounds, offsets)
        parts = reply.get("parts", [])
        blobs = frames.decode_blobs(raw)
        lines_blob = blobs.pop() if reply.get("lines") else None
        delta_mode = reply.get("mode") == "delta"
        pos = 0
        with lock:
            for part in parts:
                partner, count = part[0], part[1]
                skipped = part[2] if delta_mode and len(part) > 2 else 0
                for blob in blobs[pos:pos + count]:
                    record = wire.parse_record(blob, codec)
                    if record is None:
                        # Unreachable over an intact transport (records
                        # are CRC-checked twice); counted like the
                        # filesystem path counts undecodable entries.
                        engine.stats.import_skipped += 1
                        continue
                    consume_record(engine, record, absorb_lines=absorb,
                                   subsumption_filter=subsumption_filter)
                pos += count
                if skipped:
                    engine.import_subsumed_batch(skipped)
                    _count("sync.filter_subsumed", skipped)
                offsets[str(partner)] = (offsets.get(str(partner), 0)
                                         + count + skipped)
            if lines_blob is not None and codec is not None:
                decoded = codec.decode(lines_blob)
                if decoded and absorb is not None:
                    absorb(decoded)
        rounds += 1
    with lock:
        report = worker.report()
    client.report(pickle.dumps(report))
    client.bye()
    return report
