"""AFLFast-style power schedules over the seed queue.

Two modes, selected with ``--power-schedule``:

* ``flat`` (default) — delegates to :meth:`SeedQueue.pick` verbatim.
  Zero extra RNG draws, zero behaviour change: a flat-mode campaign
  fingerprint is pinned bit-for-bit equal to one from before this
  package existed.
* ``fast`` — every entry gets an integer *energy* and the next seed is
  one weighted draw over the queue. Energy rises with coverage novelty
  (``new_bits``) and favored status, grows slowly with discovery depth,
  and decays with exercise count and execution cost, so late, cheap,
  novel seeds out-compete the over-fuzzed early corpus — the AFLFast
  observation that flat draws re-spend most of the budget on
  high-frequency paths.

Execution cost is the **touched-cell count** of the entry's recorded
coverage, not wall-clock time: an entry that lights more bitmap cells
exercised a longer path through the hypervisor model, and — unlike a
timer — the proxy is bit-for-bit reproducible under checkpoint/resume
and lease-log replay, which fast mode's acceptance criteria require.

The fast schedule also owns the distillation cadence: every
``distill_every`` picks it recomputes the queue's ``redundant`` flags
via :func:`repro.schedule.distill.distill` and drops demoted entries to
the energy floor (they are never removed — see the distill module).
All schedule state is plain picklable attributes, so it rides worker
checkpoints with the engine and stays outside campaign fingerprints,
exactly like telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.fuzzer.queue import EXERCISE_CAP, QueueEntry, SeedQueue
from repro.fuzzer.rng import Rng
from repro.schedule.bandit import OperatorBandit
from repro.schedule.distill import distill

SCHEDULE_MODES = ("flat", "fast")

#: Energy of an unremarkable entry before novelty/decay adjustments.
BASE_ENERGY = 16


class PowerSchedule:
    """Strategy interface: choose the next queue entry to mutate."""

    mode = "base"

    def pick(self, queue: SeedQueue, rng: Rng) -> QueueEntry:
        raise NotImplementedError


@dataclass
class FlatSchedule(PowerSchedule):
    """The pre-schedule behaviour, verbatim (fingerprint-pinned)."""

    mode = "flat"

    def pick(self, queue: SeedQueue, rng: Rng) -> QueueEntry:
        return queue.pick(rng)


@dataclass
class FastSchedule(PowerSchedule):
    """Energy-weighted selection with periodic corpus distillation."""

    mode = "fast"
    #: Picks between distillation passes (0 disables distillation).
    distill_every: int = 512
    picks: int = 0
    distill_runs: int = 0

    def energy(self, entry: QueueEntry) -> int:
        """Integer energy >= 1 (integer-only: replays must not depend
        on float rounding).

        * novelty: a new-edge finding (``new_bits == 2``) is worth 4x,
          a new-bucket finding 2x;
        * favored entries still under the exercise cap get 2x (the
          favored pool keeps its priority under the weighted draw);
        * discovery depth adds ``found_at.bit_length()`` (late finds
          needed the preceding corpus — nudge, not dominate);
        * exercise decay halves energy per 8 picks, floored at 1/16;
        * execution cost divides by ``1 + cells/64`` — touched bitmap
          cells as the deterministic stand-in for wall-clock;
        * distillation-demoted entries sit at the floor.
        """
        if entry.redundant:
            return 1
        energy = BASE_ENERGY
        if entry.new_bits >= 2:
            energy *= 4
        elif entry.new_bits == 1:
            energy *= 2
        if entry.favored and entry.exercised < EXERCISE_CAP:
            energy *= 2
        energy += min(entry.found_at.bit_length(), 16)
        energy >>= min(entry.exercised // 8, 4)
        cost = len(entry.coverage) if entry.coverage else 0
        energy //= 1 + cost // 64
        return max(energy, 1)

    def pick(self, queue: SeedQueue, rng: Rng) -> QueueEntry:
        """One weighted draw over the queue (single ``rng.below`` call)."""
        if not queue.entries:
            raise RuntimeError("empty seed queue")
        self.picks += 1
        if self.distill_every and self.picks % self.distill_every == 0:
            demoted = distill(queue)
            self.distill_runs += 1
            telemetry.counter("sched.distill_runs")
            telemetry.gauge("sched.queue_redundant", float(demoted))
        weights = [self.energy(entry) for entry in queue.entries]
        draw = rng.below(sum(weights))
        for entry, weight in zip(queue.entries, weights):
            draw -= weight
            if draw < 0:
                break
        entry.exercised += 1
        return entry


def make_schedule(mode: str,
                  rng: Rng) -> tuple[PowerSchedule, OperatorBandit | None]:
    """Build the (schedule, bandit) pair for *mode*.

    Flat mode gets no bandit: its whole contract is "no extra RNG
    draws anywhere", and a bandit would add posterior sampling to every
    candidate. The fast bandit forks its own stream off *rng* without
    consuming any parent draws (:meth:`Rng.fork` is pure seed
    arithmetic), so constructing it never perturbs the campaign.
    """
    if mode not in SCHEDULE_MODES:
        raise ValueError(
            f"unknown power schedule {mode!r}; expected one of {SCHEDULE_MODES}")
    if mode == "flat":
        return FlatSchedule(), None
    return FastSchedule(), OperatorBandit.fork_from(rng)
