"""Fault-tolerant campaign runtime — the public face.

This module gathers the resilience layer built across
:mod:`repro.parallel.supervisor` (heartbeats, restarts, circuit
breakers), :mod:`repro.fuzzer.crashes` (case isolation + triage),
:mod:`repro.faults` (deterministic fault injection), and the
checkpoint/resume support in :class:`repro.parallel.ParallelCampaign`
into one import surface, and defines the **campaign fingerprint** the
resume-determinism contract is pinned against:

    a ``--resume``'d inline campaign must reproduce the uninterrupted
    run's fingerprint bit for bit.

The fingerprint digests everything observable about a finished
campaign: the covered-line set, the merged virgin map, every worker's
final corpus (entry bytes + provenance, order-sensitive), and the
merged engine statistics. Two runs with equal fingerprints found the
same behaviour from the same corpus by the same path.
"""

from __future__ import annotations

import hashlib

from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerKilled,
    injected,
)
from repro.fuzzer.crashes import CrashSignature, CrashStore, load_reproducer
from repro.parallel.campaign import ParallelCampaign, ParallelCampaignResult
from repro.parallel.scheduler import LeaseBoardError
from repro.parallel.supervisor import (
    CampaignAborted,
    FailureKind,
    Supervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from repro.parallel.transport import (
    FederatedCampaign,
    TransportError,
    run_federated_node,
)

__all__ = [
    "CampaignAborted",
    "CrashSignature",
    "CrashStore",
    "FailureKind",
    "FaultPlan",
    "FaultSpec",
    "FederatedCampaign",
    "InjectedFault",
    "LeaseBoardError",
    "ParallelCampaign",
    "ParallelCampaignResult",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorEvent",
    "TransportError",
    "WorkerKilled",
    "campaign_fingerprint",
    "injected",
    "load_reproducer",
    "run_federated_node",
]


def campaign_fingerprint(result: ParallelCampaignResult) -> str:
    """Deterministic digest of a campaign's complete observable outcome.

    ``stats.imports_skipped_subsumed`` is deliberately excluded: it
    counts imports the protocol-v2 filter consumed *without* execution,
    an implementation detail of how the same observable outcome was
    reached — including it would make v1 and v2 sync-format runs
    incomparable by construction.

    Telemetry (``ParallelCampaignResult.telemetry`` and the campaign's
    ``telemetry_mode``) is excluded for the same reason: it describes
    how the run was *observed*, not what it found. The converse pin —
    that ``off``/``metrics``/``full`` runs produce identical
    fingerprints — lives in tests/telemetry/test_fingerprint_modes.py.
    """
    digest = hashlib.sha256()
    for location in sorted(result.covered_lines):
        digest.update(repr(location).encode())
    digest.update(b"|virgin|")
    digest.update(result.virgin.snapshot())
    digest.update(b"|corpus|")
    for corpus in result.corpus_digests:
        digest.update(corpus.encode())
    stats = result.engine_stats
    digest.update(b"|stats|")
    digest.update(repr((stats.iterations, stats.queue_adds, stats.crashes,
                        stats.anomalies, stats.last_find, stats.imported,
                        stats.case_exceptions,
                        stats.import_skipped)).encode())
    return digest.hexdigest()
