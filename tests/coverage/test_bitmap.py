"""Tests for the AFL edge bitmap and virgin map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bitmap import (
    MAP_SIZE,
    CoverageBitmap,
    VirginMap,
    classify_count,
    edge_index,
    stable_line_id,
)


class TestClassification:
    def test_zero(self):
        assert classify_count(0) == 0

    def test_afl_buckets(self):
        assert classify_count(1) == 1
        assert classify_count(2) == 2
        assert classify_count(3) == 4
        assert classify_count(4) == 8
        assert classify_count(7) == 16
        assert classify_count(200) == 128

    @given(st.integers(min_value=1, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_set(self, count):
        cls = classify_count(count)
        assert cls and cls & (cls - 1) == 0  # power of two

    @given(st.integers(min_value=1, max_value=254))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, count):
        assert classify_count(count + 1) >= classify_count(count)


class TestEdgeHash:
    def test_within_map(self):
        assert 0 <= edge_index(0xFFFF, 0xFFFF) < MAP_SIZE

    def test_direction_sensitive(self):
        assert edge_index(10, 20) != edge_index(20, 10)

    def test_stable_line_id_deterministic(self):
        assert stable_line_id("a.py", 5) == stable_line_id("a.py", 5)
        assert stable_line_id("a.py", 5) != stable_line_id("a.py", 6)


class TestBitmap:
    def test_record_and_count(self):
        bitmap = CoverageBitmap()
        bitmap.record_edge(1, 2)
        bitmap.record_edge(1, 2)
        assert bitmap.count_nonzero() == 1
        assert bitmap.counts[edge_index(1, 2)] == 2

    def test_saturates_at_255(self):
        bitmap = CoverageBitmap()
        for _ in range(300):
            bitmap.record_edge(1, 2)
        assert bitmap.counts[edge_index(1, 2)] == 255

    def test_record_trace(self):
        bitmap = CoverageBitmap()
        bitmap.record_trace([((("a.py"), 1), (("a.py"), 2))])
        assert bitmap.count_nonzero() == 1

    def test_reset(self):
        bitmap = CoverageBitmap()
        bitmap.record_edge(1, 2)
        bitmap.reset()
        assert bitmap.count_nonzero() == 0
        assert not bitmap.touched


class TestVirginMap:
    def test_new_edge_returns_two(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        assert virgin.has_new_bits(run) == 2

    def test_same_edge_same_count_returns_zero(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        rerun = CoverageBitmap()
        rerun.record_edge(1, 2)
        assert virgin.has_new_bits(rerun) == 0

    def test_new_count_bucket_returns_one(self):
        virgin = VirginMap()
        run = CoverageBitmap()
        run.record_edge(1, 2)
        virgin.has_new_bits(run)
        hotter = CoverageBitmap()
        for _ in range(10):
            hotter.record_edge(1, 2)
        assert virgin.has_new_bits(hotter) == 1

    def test_density_grows(self):
        virgin = VirginMap()
        assert virgin.density() == 0.0
        run = CoverageBitmap()
        for i in range(50):
            run.record_edge(i, i + 1)
        virgin.has_new_bits(run)
        assert virgin.density() > 0
