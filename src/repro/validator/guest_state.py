"""``VMenterLoadCheckGuestState()`` analogue.

Rounds the guest-state area: RFLAGS, control registers, segment
registers, GDT/IDT/LDT/TR, MSR images, activity state, and
interruptibility state. This is the largest of the three Bochs-derived
routines (the paper counts ~2,000 of the validator's 2,500 lines here).

Cross-group corrections follow the paper's §4.3 description: the guest
group is rounded *after* controls and host state, reading the
already-rounded entry controls (e.g. "IA-32e mode guest") to decide how
CR0/CR4/EFER must be fixed — including the LME→PAE forcing the paper
gives as its worked example.
"""

from __future__ import annotations

from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.arch.segments import AccessRights
from repro.validator.base import Correction, Rounder
from repro.validator.host_state import canonicalize, round_pat
from repro.vmx import fields as F
from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    Interruptibility,
    ProcBased,
    Secondary,
)
from repro.vmx.msr_caps import VmxCapabilities
from repro.vmx.vmcs import Vmcs

_PHYS_MASK = (1 << 46) - 1

#: IA32_DEBUGCTL bits a VM entry may load (SDM 26.3.1.1).
DEBUGCTL_VALID_BITS = 0x1DDF
#: IA32_PERF_GLOBAL_CTRL: two programmable + three fixed counters.
PERF_GLOBAL_CTRL_VALID_BITS = 0x7_0000_0003
#: IA32_BNDCFGS: EN + BNDPRESERVE + canonical base above bit 12.
BNDCFGS_RESERVED_BITS = 0xFFC


def _round_guest_msr_images(r: Rounder, entry: int) -> None:
    """Round the guest MSR-image fields gated by VM-entry controls."""
    if entry & EntryControls.LOAD_PERF_GLOBAL_CTRL:
        r.force(F.GUEST_IA32_PERF_GLOBAL_CTRL,
                r.read(F.GUEST_IA32_PERF_GLOBAL_CTRL) & PERF_GLOBAL_CTRL_VALID_BITS,
                "PERF_GLOBAL_CTRL reserved bits zero")
    else:
        r.force(F.GUEST_IA32_PERF_GLOBAL_CTRL, 0,
                "PERF_GLOBAL_CTRL ignored without its load control")
    if entry & EntryControls.LOAD_BNDCFGS:
        bndcfgs = r.read(F.GUEST_IA32_BNDCFGS) & ~BNDCFGS_RESERVED_BITS
        r.force(F.GUEST_IA32_BNDCFGS, canonicalize(bndcfgs),
                "BNDCFGS reserved bits zero, base canonical")
    else:
        r.force(F.GUEST_IA32_BNDCFGS, 0, "BNDCFGS ignored without its load control")
    if entry & EntryControls.LOAD_RTIT_CTL:
        r.force(F.GUEST_IA32_RTIT_CTL, r.read(F.GUEST_IA32_RTIT_CTL) & 0x1,
                "RTIT_CTL restricted to TraceEn")
    else:
        r.force(F.GUEST_IA32_RTIT_CTL, 0, "RTIT_CTL ignored without its load control")
    if entry & EntryControls.LOAD_PKRS:
        r.force(F.GUEST_IA32_PKRS, r.read(F.GUEST_IA32_PKRS) & 0xFFFFFFFF,
                "PKRS bits 63:32 zero")
    else:
        r.force(F.GUEST_IA32_PKRS, 0, "PKRS ignored without its load control")
    if entry & EntryControls.LOAD_CET_STATE:
        r.force(F.GUEST_IA32_S_CET, canonicalize(r.read(F.GUEST_IA32_S_CET) & ~0x3C),
                "S_CET reserved bits zero")
    else:
        r.force(F.GUEST_IA32_S_CET, 0, "CET state ignored without its load control")
    # No VM-entry control governs LBR_CTL on the parts we model.
    r.force(F.GUEST_IA32_LBR_CTL, 0, "LBR_CTL unsupported")
    # SMBASE is meaningful only for entries to SMM, which are rounded away.
    r.force(F.GUEST_SMBASE, 0, "SMBASE ignored outside SMM")


def _round_limit_granularity(limit: int, ar: int) -> tuple[int, int]:
    """Fix the SDM limit/granularity consistency rule by adjusting AR.G."""
    if limit & 0xFFF00000:
        ar |= AccessRights.G
        if (limit & 0xFFF) != 0xFFF:
            limit |= 0xFFF
    elif (limit & 0xFFF) != 0xFFF:
        ar &= ~AccessRights.G
    return limit, ar


def vmenter_load_check_guest_state(vmcs: Vmcs, caps: VmxCapabilities) -> list[Correction]:
    """Round guest-state fields toward validity; return the corrections."""
    r = Rounder(vmcs)

    entry = r.read(F.VM_ENTRY_CONTROLS)
    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)
    effective_proc2 = proc2 if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS else 0
    unrestricted = bool(effective_proc2 & Secondary.UNRESTRICTED_GUEST)
    ia32e_guest = bool(entry & EntryControls.IA32E_MODE_GUEST)

    # --- control registers ---------------------------------------------------
    cr0 = r.read(F.GUEST_CR0)
    fixed0 = caps.cr0_fixed0
    if unrestricted:
        fixed0 &= ~0x80000001  # PE/PG exempt under unrestricted guest
    cr0 = (cr0 | fixed0) & caps.cr0_fixed1
    if cr0 & Cr0.PG:
        cr0 |= Cr0.PE
    if cr0 & Cr0.NW and not cr0 & Cr0.CD:
        cr0 &= ~Cr0.NW
    if ia32e_guest:
        cr0 |= Cr0.PG | Cr0.PE
    r.force(F.GUEST_CR0, cr0, "guest CR0 fixed bits and PG/PE rules")

    cr4 = (r.read(F.GUEST_CR4) | caps.cr4_fixed0) & caps.cr4_fixed1
    if ia32e_guest:
        # Paper §4.3 worked example: LME set while CR4.PAE unset — the
        # validator forces PAE to 1 to satisfy architectural constraints.
        cr4 |= Cr4.PAE
    else:
        cr4 &= ~Cr4.PCIDE
    r.force(F.GUEST_CR4, cr4, "guest CR4 fixed bits / PAE for IA-32e")

    r.force(F.GUEST_CR3, r.read(F.GUEST_CR3) & _PHYS_MASK, "guest CR3 width")
    if entry & EntryControls.LOAD_DEBUG_CONTROLS:
        r.force(F.GUEST_DR7, r.read(F.GUEST_DR7) & 0xFFFFFFFF, "DR7 bits 63:32 zero")
        r.force(F.GUEST_IA32_DEBUGCTL,
                r.read(F.GUEST_IA32_DEBUGCTL) & DEBUGCTL_VALID_BITS,
                "DEBUGCTL reserved bits zero")
    else:
        r.force(F.GUEST_DR7, 0x400, "DR7 ignored without load-debug-controls")
        r.force(F.GUEST_IA32_DEBUGCTL, 0,
                "DEBUGCTL ignored without load-debug-controls")

    if entry & EntryControls.LOAD_EFER:
        efer = r.read(F.GUEST_IA32_EFER) & ~Efer.RESERVED
        if ia32e_guest:
            efer |= Efer.LMA | Efer.LME
        else:
            efer &= ~Efer.LMA
            if r.read(F.GUEST_CR0) & Cr0.PG:
                efer &= ~Efer.LME
        r.force(F.GUEST_IA32_EFER, efer, "guest EFER LMA/LME consistency")

    else:
        r.force(F.GUEST_IA32_EFER, 0, "guest EFER ignored without load-EFER")

    if entry & EntryControls.LOAD_PAT:
        r.force(F.GUEST_IA32_PAT, round_pat(r.read(F.GUEST_IA32_PAT)),
                "guest PAT memory types")
    else:
        r.force(F.GUEST_IA32_PAT, 0, "guest PAT ignored without load-PAT")

    _round_guest_msr_images(r, entry)

    # --- RFLAGS ---------------------------------------------------------------
    rflags = (r.read(F.GUEST_RFLAGS) | Rflags.FIXED_1) & ~Rflags.RESERVED
    if ia32e_guest or not r.read(F.GUEST_CR0) & Cr0.PE:
        rflags &= ~Rflags.VM
    intr_info = r.read(F.VM_ENTRY_INTR_INFO_FIELD)
    if intr_info >> 31 and (intr_info >> 8) & 7 == 0:
        rflags |= Rflags.IF  # injecting an external interrupt requires IF
    r.force(F.GUEST_RFLAGS, rflags, "RFLAGS fixed bits / VM / IF rules")
    virtual_8086 = bool(rflags & Rflags.VM)

    # --- segment registers ------------------------------------------------------
    if virtual_8086:
        _round_v8086_segments(r)
    else:
        _round_protected_segments(r, ia32e_guest=ia32e_guest,
                                  unrestricted=unrestricted)

    # --- descriptor tables ---------------------------------------------------------
    for base_field, limit_field, rule in (
            (F.GUEST_GDTR_BASE, F.GUEST_GDTR_LIMIT, "GDTR"),
            (F.GUEST_IDTR_BASE, F.GUEST_IDTR_LIMIT, "IDTR")):
        r.force(base_field, canonicalize(r.read(base_field)), f"{rule} base canonical")
        r.force(limit_field, r.read(limit_field) & 0xFFFF, f"{rule} limit 16 bits")

    # --- RIP -------------------------------------------------------------------------
    cs_ar = r.read(F.GUEST_CS_AR_BYTES)
    rip = r.read(F.GUEST_RIP)
    if ia32e_guest and cs_ar & AccessRights.L:
        r.force(F.GUEST_RIP, canonicalize(rip), "RIP canonical in 64-bit mode")
    else:
        r.force(F.GUEST_RIP, rip & 0xFFFFFFFF, "RIP bits 63:32 zero")

    # --- activity / interruptibility ---------------------------------------------------
    activity = r.read(F.GUEST_ACTIVITY_STATE) & 3
    interruptibility = r.read(F.GUEST_INTERRUPTIBILITY_INFO) & ~Interruptibility.RESERVED
    if interruptibility & Interruptibility.STI_BLOCKING:
        if interruptibility & Interruptibility.MOV_SS_BLOCKING:
            interruptibility &= ~Interruptibility.STI_BLOCKING
        if not r.read(F.GUEST_RFLAGS) & Rflags.IF:
            interruptibility &= ~Interruptibility.STI_BLOCKING
    if activity == ActivityState.HLT and interruptibility & (
            Interruptibility.STI_BLOCKING | Interruptibility.MOV_SS_BLOCKING):
        interruptibility &= ~(Interruptibility.STI_BLOCKING
                              | Interruptibility.MOV_SS_BLOCKING)
    if activity in (ActivityState.SHUTDOWN, ActivityState.WAIT_FOR_SIPI):
        if intr_info >> 31:
            activity = ActivityState.ACTIVE
    r.force(F.GUEST_ACTIVITY_STATE, activity, "activity state rules")
    r.force(F.GUEST_INTERRUPTIBILITY_INFO, interruptibility,
            "interruptibility consistency")

    r.force(F.GUEST_PENDING_DBG_EXCEPTIONS,
            r.read(F.GUEST_PENDING_DBG_EXCEPTIONS) & 0x1600F,
            "pending debug exceptions reserved bits")

    # --- VMCS link pointer ------------------------------------------------------------
    link = r.read(F.VMCS_LINK_POINTER)
    if link != (1 << 64) - 1:
        if effective_proc2 & Secondary.SHADOW_VMCS:
            r.force(F.VMCS_LINK_POINTER, link & _PHYS_MASK & ~0xFFF,
                    "shadow link pointer alignment")
        else:
            r.force(F.VMCS_LINK_POINTER, (1 << 64) - 1,
                    "link pointer all-ones without shadow VMCS")

    # --- PDPTEs (legacy PAE) -------------------------------------------------------------
    cr0 = r.read(F.GUEST_CR0)
    cr4 = r.read(F.GUEST_CR4)
    if not ia32e_guest and cr0 & Cr0.PG and cr4 & Cr4.PAE:
        for field in (F.GUEST_PDPTE0, F.GUEST_PDPTE1, F.GUEST_PDPTE2, F.GUEST_PDPTE3):
            pdpte = r.read(field)
            if pdpte & 1:
                r.force(field, pdpte & ~0x1E6, "PDPTE reserved bits clear")
    else:
        for field in (F.GUEST_PDPTE0, F.GUEST_PDPTE1, F.GUEST_PDPTE2, F.GUEST_PDPTE3):
            r.force(field, 0, "PDPTEs unused outside legacy PAE paging")

    # Fields gated by execution controls on the guest side.
    if not effective_proc2 & Secondary.VIRTUAL_INTR_DELIVERY:
        r.force(F.GUEST_INTR_STATUS, 0, "interrupt status unused without VID")
    if not effective_proc2 & Secondary.ENABLE_PML:
        r.force(F.GUEST_PML_INDEX, 0, "PML index unused without PML")

    for field, rule in ((F.GUEST_SYSENTER_ESP, "SYSENTER_ESP canonical"),
                        (F.GUEST_SYSENTER_EIP, "SYSENTER_EIP canonical")):
        r.force(field, canonicalize(r.read(field)), rule)

    return r.corrections


def _round_v8086_segments(r: Rounder) -> None:
    """Force the virtual-8086 segment shape (base=sel<<4, limit, AR 0xF3)."""
    for name in ("es", "cs", "ss", "ds", "fs", "gs"):
        selector = r.read(F.SEGMENT_SELECTOR_FIELDS[name])
        r.force(F.SEGMENT_BASE_FIELDS[name], (selector << 4) & 0xFFFF0,
                "v8086 base = selector << 4")
        r.force(F.SEGMENT_LIMIT_FIELDS[name], 0xFFFF, "v8086 limit")
        r.force(F.SEGMENT_AR_FIELDS[name], 0xF3, "v8086 access rights")
    _round_tr_ldtr(r, ia32e_guest=False)


def _round_protected_segments(r: Rounder, *, ia32e_guest: bool,
                              unrestricted: bool) -> None:
    """Round CS/SS/DS/ES/FS/GS plus TR/LDTR for protected/long mode."""
    # CS first — other checks reference it.
    cs_ar = r.read(F.GUEST_CS_AR_BYTES) & ~AccessRights.RESERVED
    cs_ar &= ~AccessRights.UNUSABLE
    cs_ar |= AccessRights.P | AccessRights.S
    cs_type = cs_ar & 0xF
    if not cs_type & 0x8:  # not a code segment
        if not (unrestricted and cs_type == 0x3):
            cs_ar = (cs_ar & ~0xF) | 0xB
            cs_type = 0xB
    cs_ar |= 1  # accessed
    if cs_ar & AccessRights.L and cs_ar & AccessRights.DB:
        cs_ar &= ~AccessRights.DB
    cs_limit, cs_ar = _round_limit_granularity(r.read(F.GUEST_CS_LIMIT), cs_ar)
    if (cs_ar & 0xF) == 0x3:
        cs_ar &= ~(3 << 5)  # type-3 CS requires DPL 0
    r.force(F.GUEST_CS_LIMIT, cs_limit, "CS limit/granularity")
    r.force(F.GUEST_CS_AR_BYTES, cs_ar, "CS access rights")
    r.force(F.GUEST_CS_BASE, r.read(F.GUEST_CS_BASE) & 0xFFFFFFFF,
            "CS base bits 63:32 zero")
    cs_dpl = (cs_ar >> 5) & 3
    cs_rpl = r.read(F.GUEST_CS_SELECTOR) & 3

    # SS: writable data, matching privilege.
    ss_ar = r.read(F.GUEST_SS_AR_BYTES) & ~AccessRights.RESERVED
    if not ss_ar & AccessRights.UNUSABLE:
        ss_ar |= AccessRights.P | AccessRights.S
        if (ss_ar & 0xF) not in (0x3, 0x7):
            ss_ar = (ss_ar & ~0xF) | 0x3
        ss_limit, ss_ar = _round_limit_granularity(r.read(F.GUEST_SS_LIMIT), ss_ar)
        r.force(F.GUEST_SS_LIMIT, ss_limit, "SS limit/granularity")
        if not unrestricted:
            selector = (r.read(F.GUEST_SS_SELECTOR) & ~3) | cs_rpl
            r.force(F.GUEST_SS_SELECTOR, selector, "SS.RPL = CS.RPL")
            ss_ar = (ss_ar & ~(3 << 5)) | (cs_rpl << 5)  # SS.DPL = SS.RPL
        if (cs_ar & 0xF) in (0x9, 0xB):
            ss_ar = (ss_ar & ~(3 << 5)) | (cs_dpl << 5)
        elif (cs_ar & 0xF) in (0xD, 0xF):
            # Conforming CS: CS.DPL must not exceed SS.DPL.
            ss_dpl = (ss_ar >> 5) & 3
            if cs_dpl > ss_dpl:
                cs_ar = (cs_ar & ~(3 << 5)) | (ss_dpl << 5)
                r.force(F.GUEST_CS_AR_BYTES, cs_ar,
                        "conforming CS.DPL clamped to SS.DPL")
    r.force(F.GUEST_SS_AR_BYTES, ss_ar, "SS access rights")
    r.force(F.GUEST_SS_BASE, r.read(F.GUEST_SS_BASE) & 0xFFFFFFFF,
            "SS base bits 63:32 zero")

    for name in ("ds", "es", "fs", "gs"):
        ar = r.read(F.SEGMENT_AR_FIELDS[name]) & ~AccessRights.RESERVED
        if not ar & AccessRights.UNUSABLE:
            ar |= AccessRights.P | AccessRights.S | 1  # present, non-system, accessed
            if ar & 0x8 and not ar & 0x2:
                ar |= 0x2  # code must be readable
            limit, ar = _round_limit_granularity(r.read(F.SEGMENT_LIMIT_FIELDS[name]), ar)
            r.force(F.SEGMENT_LIMIT_FIELDS[name], limit, f"{name} limit/granularity")
        r.force(F.SEGMENT_AR_FIELDS[name], ar, f"{name} access rights")
        base = r.read(F.SEGMENT_BASE_FIELDS[name])
        if name in ("fs", "gs"):
            r.force(F.SEGMENT_BASE_FIELDS[name], canonicalize(base),
                    f"{name} base canonical")
        else:
            r.force(F.SEGMENT_BASE_FIELDS[name], base & 0xFFFFFFFF,
                    f"{name} base bits 63:32 zero")

    _round_tr_ldtr(r, ia32e_guest=ia32e_guest)


def _round_tr_ldtr(r: Rounder, *, ia32e_guest: bool) -> None:
    """Round TR (always usable busy TSS) and LDTR (usable LDT or unusable)."""
    tr_ar = r.read(F.GUEST_TR_AR_BYTES) & ~AccessRights.RESERVED
    tr_ar &= ~(AccessRights.UNUSABLE | AccessRights.S)
    tr_ar |= AccessRights.P
    tr_type = tr_ar & 0xF
    if ia32e_guest or tr_type not in (0x3, 0xB):
        tr_ar = (tr_ar & ~0xF) | 0xB
    tr_limit, tr_ar = _round_limit_granularity(r.read(F.GUEST_TR_LIMIT), tr_ar)
    r.force(F.GUEST_TR_LIMIT, tr_limit, "TR limit/granularity")
    r.force(F.GUEST_TR_AR_BYTES, tr_ar, "TR access rights")
    r.force(F.GUEST_TR_SELECTOR, r.read(F.GUEST_TR_SELECTOR) & ~0x4,
            "TR selector TI clear")
    r.force(F.GUEST_TR_BASE, canonicalize(r.read(F.GUEST_TR_BASE)),
            "TR base canonical")

    ldtr_ar = r.read(F.GUEST_LDTR_AR_BYTES) & ~AccessRights.RESERVED
    if not ldtr_ar & AccessRights.UNUSABLE:
        ldtr_ar &= ~AccessRights.S
        ldtr_ar |= AccessRights.P
        ldtr_ar = (ldtr_ar & ~0xF) | 0x2
        ldtr_limit, ldtr_ar = _round_limit_granularity(
            r.read(F.GUEST_LDTR_LIMIT), ldtr_ar)
        r.force(F.GUEST_LDTR_LIMIT, ldtr_limit, "LDTR limit/granularity")
        r.force(F.GUEST_LDTR_SELECTOR, r.read(F.GUEST_LDTR_SELECTOR) & ~0x4,
                "LDTR selector TI clear")
        r.force(F.GUEST_LDTR_BASE, canonicalize(r.read(F.GUEST_LDTR_BASE)),
                "LDTR base canonical")
    r.force(F.GUEST_LDTR_AR_BYTES, ldtr_ar, "LDTR access rights")
