"""Comparison fuzzers and test suites from the paper's evaluation."""

from repro.baselines.iris import IrisCampaign
from repro.baselines.kvm_unit_tests import KvmUnitTestsSuite
from repro.baselines.nestfuzz import NestFuzzCampaign
from repro.baselines.selftests import SelftestsSuite
from repro.baselines.syzkaller import SyzkallerCampaign
from repro.baselines.xtf import XtfSuite

__all__ = [
    "SyzkallerCampaign",
    "IrisCampaign",
    "NestFuzzCampaign",
    "SelftestsSuite",
    "KvmUnitTestsSuite",
    "XtfSuite",
]
