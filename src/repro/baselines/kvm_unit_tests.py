"""KVM-unit-tests baseline (paper §5.1/§5.2).

"KVM-unit-tests is a minimal guest OS that implements unit tests for
KVM" — it runs entirely from the guest side (no ioctl access) but its
hand-written VMX/SVM tests are unusually thorough about error paths,
which is why it lands above Selftests on Intel (72.0%) while still below
NecoFuzz ("manually writing test code ... does not necessarily explore
complex arguments"). 84 deterministic test cases, about 20 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER, IA32_KERNEL_GS_BASE, MsrEntry
from repro.arch.registers import Cr0, Efer
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.core.templates import (
    ALT_VMCS_GPA,
    MSR_AREA_GPA,
    VMCB12_GPA,
    VMCS12_GPA,
    VMXON_GPA,
)
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.svm import fields as SF
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import PinBased, ProcBased, Secondary


def _run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def _setup_and_launch(hv, vcpu, vmcs):
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmptrld", addr=VMCS12_GPA)
    for spec, value in vmcs.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            _run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
    return _run(hv, vcpu, "vmlaunch")


def _make_control_case(mutate):
    """A test that launches with one deliberately perturbed VMCS."""

    def case(hv):
        vcpu = hv.create_vcpu()
        vmcs = golden_vmcs()
        mutate(vmcs)
        _setup_and_launch(hv, vcpu, vmcs)

    return case


#: vmx.flat-style "test_vmx_controls" cases: each corrupts exactly one
#: architectural rule and expects the corresponding failure.
_CONTROL_CASES = (
    ("test_pin_reserved", lambda v: v.write(F.PIN_BASED_VM_EXEC_CONTROL, 0)),
    ("test_proc_reserved", lambda v: v.write(F.CPU_BASED_VM_EXEC_CONTROL, 0)),
    ("test_secondary_no_activate", lambda v: (
        v.write(F.CPU_BASED_VM_EXEC_CONTROL,
                v.read(F.CPU_BASED_VM_EXEC_CONTROL)
                & ~ProcBased.ACTIVATE_SECONDARY_CONTROLS))),
    ("test_cr3_target_count", lambda v: v.write(F.CR3_TARGET_COUNT, 5)),
    ("test_io_bitmap_align", lambda v: (
        v.write(F.CPU_BASED_VM_EXEC_CONTROL,
                v.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_IO_BITMAPS),
        v.write(F.IO_BITMAP_A, 0x123))),
    ("test_msr_bitmap_align", lambda v: (
        v.write(F.CPU_BASED_VM_EXEC_CONTROL,
                v.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.USE_MSR_BITMAPS),
        v.write(F.MSR_BITMAP, 0xFFF))),
    ("test_nmi_ctl", lambda v: v.write(
        F.PIN_BASED_VM_EXEC_CONTROL,
        (v.read(F.PIN_BASED_VM_EXEC_CONTROL) | PinBased.VIRTUAL_NMIS)
        & ~PinBased.NMI_EXITING)),
    ("test_nmi_window", lambda v: v.write(
        F.CPU_BASED_VM_EXEC_CONTROL,
        v.read(F.CPU_BASED_VM_EXEC_CONTROL) | ProcBased.NMI_WINDOW_EXITING)),
    ("test_posted_intr_no_vid", lambda v: v.write(
        F.PIN_BASED_VM_EXEC_CONTROL,
        v.read(F.PIN_BASED_VM_EXEC_CONTROL) | PinBased.POSTED_INTERRUPTS)),
    ("test_vpid_zero", lambda v: (
        v.write(F.CPU_BASED_VM_EXEC_CONTROL,
                v.read(F.CPU_BASED_VM_EXEC_CONTROL)
                | ProcBased.ACTIVATE_SECONDARY_CONTROLS),
        v.write(F.SECONDARY_VM_EXEC_CONTROL, Secondary.ENABLE_VPID),
        v.write(F.VIRTUAL_PROCESSOR_ID, 0))),
    ("test_eptp_bad_type", lambda v: v.write(
        F.EPT_POINTER, (v.read(F.EPT_POINTER) & ~7) | 3)),
    ("test_entry_event_bad_type", lambda v: v.write(
        F.VM_ENTRY_INTR_INFO_FIELD, (1 << 31) | (1 << 8) | 14)),
    ("test_entry_event_bad_error_code", lambda v: v.write(
        F.VM_ENTRY_INTR_INFO_FIELD, (1 << 31) | (1 << 11) | (4 << 8) | 3)),
    ("test_apic_virt_no_tpr_shadow", lambda v: (
        v.write(F.CPU_BASED_VM_EXEC_CONTROL,
                (v.read(F.CPU_BASED_VM_EXEC_CONTROL)
                 | ProcBased.ACTIVATE_SECONDARY_CONTROLS)
                & ~ProcBased.USE_TPR_SHADOW),
        v.write(F.SECONDARY_VM_EXEC_CONTROL, Secondary.VIRTUALIZE_X2APIC))),
)

#: "test_host_state" cases.
_HOST_CASES = (
    ("test_host_cr0", lambda v: v.write(F.HOST_CR0, 0)),
    ("test_host_cr4", lambda v: v.write(F.HOST_CR4, 0)),
    ("test_host_cr3_width", lambda v: v.write(F.HOST_CR3, 1 << 50)),
    ("test_host_cs_null", lambda v: v.write(F.HOST_CS_SELECTOR, 0)),
    ("test_host_tr_null", lambda v: v.write(F.HOST_TR_SELECTOR, 0)),
    ("test_host_sel_rpl", lambda v: v.write(F.HOST_DS_SELECTOR, 0x1B)),
    ("test_host_rip_canonical", lambda v: v.write(F.HOST_RIP, 1 << 62)),
    ("test_host_efer_reserved", lambda v: v.write(F.HOST_IA32_EFER, 1 << 2)),
    ("test_host_efer_lma", lambda v: v.write(F.HOST_IA32_EFER, Efer.SCE)),
)

#: "test_guest_state" cases.
_GUEST_CASES = (
    ("test_guest_cr0_fixed", lambda v: v.write(F.GUEST_CR0, 0)),
    ("test_guest_pg_no_pe", lambda v: v.write(F.GUEST_CR0, Cr0.PG | Cr0.NE | Cr0.ET)),
    ("test_guest_cr4_fixed", lambda v: v.write(F.GUEST_CR4, 0)),
    ("test_guest_cr3_width", lambda v: v.write(F.GUEST_CR3, 1 << 50)),
    ("test_guest_efer_reserved", lambda v: v.write(F.GUEST_IA32_EFER, 1 << 2)),
    ("test_guest_efer_lma_mismatch", lambda v: v.write(
        F.GUEST_IA32_EFER, Efer.NXE)),
    ("test_guest_rflags_fixed", lambda v: v.write(F.GUEST_RFLAGS, 0)),
    ("test_guest_rflags_vm_ia32e", lambda v: v.write(
        F.GUEST_RFLAGS, 0x2 | (1 << 17))),
    ("test_guest_activity_shutdown", lambda v: v.write(F.GUEST_ACTIVITY_STATE, 2)),
    ("test_guest_activity_wait_sipi", lambda v: v.write(F.GUEST_ACTIVITY_STATE, 3)),
    ("test_guest_intr_reserved", lambda v: v.write(
        F.GUEST_INTERRUPTIBILITY_INFO, 0xFF00)),
    ("test_guest_sti_movss", lambda v: v.write(F.GUEST_INTERRUPTIBILITY_INFO, 3)),
    ("test_guest_link_ptr", lambda v: v.write(F.VMCS_LINK_POINTER, 0x777)),
)


def _vmx_instruction_errors(hv):
    """vmx.flat "test_vmxon"/"test_vmptrld"/... error-path battery."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)       # before vmxon
    _run(hv, vcpu, "vmxon", addr=0x123)              # misaligned
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)          # double vmxon
    _run(hv, vcpu, "vmptrld", addr=VMXON_GPA)
    _run(hv, vcpu, "vmclear", addr=VMXON_GPA)
    _run(hv, vcpu, "vmresume")                       # no VMCS loaded
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmptrld", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmresume")                       # non-launched
    _run(hv, vcpu, "vmwrite", field=F.VM_EXIT_REASON, value=1)  # read-only
    _run(hv, vcpu, "vmread", field=F.GUEST_RIP)
    _run(hv, vcpu, "invept", type=0, eptp=0)         # bad type
    _run(hv, vcpu, "invvpid", type=4, vpid=0)        # bad type
    _run(hv, vcpu, "invvpid", type=1, vpid=0)        # vpid 0
    _run(hv, vcpu, "vmxoff")
    _run(hv, vcpu, "vmxoff")                         # double vmxoff


def _vmx_msr_load_test(hv):
    """vmx.flat "test_entry_msr_load": valid and rejected slots."""
    vcpu = hv.create_vcpu()
    vmcs = golden_vmcs()
    vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 2)
    vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, MSR_AREA_GPA)
    hv.memory.put_msr_area(MSR_AREA_GPA, [
        MsrEntry(IA32_KERNEL_GS_BASE, 0xFFFF800000000000),
        MsrEntry(0x277, 0x0007040600070406),
    ])
    _setup_and_launch(hv, vcpu, vmcs)
    # Now the non-canonical rejection path (KVM checks this correctly).
    hv.memory.put_msr_area(MSR_AREA_GPA, [
        MsrEntry(IA32_KERNEL_GS_BASE, 0x8000000000000000)])
    vmcs12 = hv.memory.get_vmcs(VMCS12_GPA)
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)
    _setup_and_launch(hv, vcpu, vmcs)


def _vmx_exit_battery(hv):
    """One launch followed by every exit-triggering instruction class."""
    vcpu = hv.create_vcpu()
    result = _setup_and_launch(hv, vcpu, golden_vmcs())
    if result.level != 2:
        return
    for mnemonic, operands in (
            ("cpuid", {}), ("hlt", {}), ("rdtsc", {}), ("rdtscp", {}),
            ("pause", {}), ("invd", {}), ("wbinvd", {}), ("xsetbv", {}),
            ("rdpmc", {}), ("rdrand", {}), ("rdseed", {}),
            ("monitor", {"value": 0x1000}), ("mwait", {}),
            ("invlpg", {"value": 0x2000}), ("sgdt", {}), ("sidt", {}),
            ("rdmsr", {"msr": 0x10}), ("wrmsr", {"msr": 0x10, "value": 5}),
            ("in", {"port": 0x71}), ("out", {"port": 0x71, "value": 1}),
            ("mov_dr", {"dr": 7, "write": 1, "value": 0x400}),
            ("vmread", {"field": int(F.GUEST_RIP)}),
            ("vmxon", {"addr": VMXON_GPA}),
            ("vmfunc", {"value": 0})):
        out = _run(hv, vcpu, mnemonic, level=2, **operands)
        if out.level == 1:
            _run(hv, vcpu, "vmresume")


def _make_vmx_cases():
    cases = [("test_vmx_instruction_errors", _vmx_instruction_errors),
             ("test_entry_msr_load", _vmx_msr_load_test),
             ("test_exit_battery", _vmx_exit_battery)]
    for name, mutate in _CONTROL_CASES + _HOST_CASES + _GUEST_CASES:
        cases.append((name, _make_control_case(mutate)))
    return tuple(cases)


INTEL_UNIT_TESTS = _make_vmx_cases()


# ---------------------------------------------------------------------------
# AMD (svm.flat)
# ---------------------------------------------------------------------------

def _svm_launch(hv, vcpu, vmcb):
    _run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    hv.memory.put_vmcb(VMCB12_GPA, vmcb)
    return _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)


def _make_svm_case(mutate):
    def case(hv):
        vcpu = hv.create_vcpu()
        vmcb = golden_vmcb()
        mutate(vmcb)
        _svm_launch(hv, vcpu, vmcb)

    return case


_SVM_CASES = (
    ("test_efer_reserved", lambda b: b.write(SF.EFER, Efer.SVME | (1 << 2))),
    ("test_cr0_high", lambda b: b.write(SF.CR0, 1 << 40)),
    ("test_cr0_cd_nw", lambda b: b.write(
        SF.CR0, (b.read(SF.CR0) | Cr0.NW) & ~Cr0.CD)),
    ("test_cr4_reserved", lambda b: b.write(SF.CR4, 1 << 31)),
    ("test_asid_zero", lambda b: b.write(SF.GUEST_ASID, 0)),
    ("test_no_vmrun_intercept", lambda b: b.write(SF.INTERCEPT_MISC2, 0)),
    ("test_long_mode_no_pae", lambda b: b.write(SF.CR4, 0)),
    ("test_dr7_high", lambda b: b.write(SF.DR7, 1 << 40)),
    ("test_npt_bad_ncr3", lambda b: b.write(SF.N_CR3, 0xFFFF_FFFF_F123)),
)


def _svm_exit_battery(hv):
    vcpu = hv.create_vcpu()
    result = _svm_launch(hv, vcpu, golden_vmcb())
    if result.level != 2:
        return
    for mnemonic, operands in (
            ("cpuid", {}), ("hlt", {}), ("rdtsc", {}), ("pause", {}),
            ("rdmsr", {"msr": 0x11}), ("wrmsr", {"msr": 0x11, "value": 1}),
            ("in", {"port": 0x61}), ("out", {"port": 0x61, "value": 1}),
            ("vmmcall", {}), ("invlpg", {"value": 0x3000}),
            ("memaccess", {"value": 0x4000})):
        out = _run(hv, vcpu, mnemonic, level=2, **operands)
        if out.level == 1:
            _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)


def _svm_instruction_errors(hv):
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)  # EFER.SVME clear
    _run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    _run(hv, vcpu, "vmrun", addr=0x777)       # misaligned
    _run(hv, vcpu, "vmrun", addr=ALT_VMCS_GPA)  # no VMCB there
    _run(hv, vcpu, "vmload", addr=0x777)
    _run(hv, vcpu, "vmsave", addr=0x777)
    _run(hv, vcpu, "clgi")
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)  # GIF clear
    _run(hv, vcpu, "stgi")
    _run(hv, vcpu, "skinit", value=0)
    _run(hv, vcpu, "invlpga", asid=0, value=0)


def _make_svm_cases():
    cases = [("test_svm_instruction_errors", _svm_instruction_errors),
             ("test_svm_exit_battery", _svm_exit_battery)]
    for name, mutate in _SVM_CASES:
        cases.append((name, _make_svm_case(mutate)))
    return tuple(cases)


AMD_UNIT_TESTS = _make_svm_cases()


@dataclass
class KvmUnitTestsSuite:
    """Run the fixed KVM-unit-tests list once and aggregate coverage."""

    vendor: Vendor = Vendor.INTEL

    def run(self) -> CampaignResult:
        """Run the suite/campaign and return a CampaignResult."""
        harness = BaselineHarness("KVM-unit-tests", self.vendor, KvmHypervisor)
        tests = INTEL_UNIT_TESTS if self.vendor is Vendor.INTEL else AMD_UNIT_TESTS
        for _, test in tests:
            hv = KvmHypervisor(VcpuConfig.default(self.vendor))
            harness.run_case(hv, test)
        return harness.result()

    def test_names(self) -> tuple[str, ...]:
        """Names of the fixed test cases, in execution order."""
        tests = INTEL_UNIT_TESTS if self.vendor is Vendor.INTEL else AMD_UNIT_TESTS
        return tuple(name for name, _ in tests)
