"""Unit tests for the federation transport building blocks.

Covers the wire framing (DESIGN.md §14) — round-trips, incremental
decode, and the corruption → ``FrameError`` contract that drives the
tear-down-and-resend recovery path — plus address parsing, the
idempotent ``claim_once`` lease API the coordinator is built on, and
the corrupt-board regression (satellite: a scribbled ``board.json``
must raise a clear :class:`LeaseBoardError`, not a raw JSON traceback).
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.parallel import FileLeaseBoard, LeaseBoardError
from repro.parallel.transport import frames
from repro.parallel.transport.coordinator import (
    default_local_address,
    format_address,
    parse_address,
)

# --- framing ---------------------------------------------------------------


def test_ctrl_frame_round_trip():
    message = {"op": "claim", "seq": 3, "round": 1, "node": 0}
    decoder = frames.FrameDecoder()
    decoded = decoder.feed(frames.pack_ctrl(message))
    assert len(decoded) == 1
    ftype, payload = decoded[0]
    assert ftype == frames.FT_CTRL
    assert frames.parse_ctrl(payload) == message


def test_blob_frame_round_trip():
    meta = {"op": "push", "seq": 9, "base": 4}
    raw = bytes(range(256)) * 7
    (ftype, payload), = frames.FrameDecoder().feed(
        frames.pack_blob(meta, raw))
    assert ftype == frames.FT_BLOB
    got_meta, got_raw = frames.split_blob(payload)
    assert got_meta == meta
    assert got_raw == raw


def test_decoder_handles_byte_at_a_time_delivery():
    wire = frames.pack_ctrl({"op": "a"}) + frames.pack_ctrl({"op": "b"})
    decoder = frames.FrameDecoder()
    decoded = []
    for i in range(len(wire)):
        decoded.extend(decoder.feed(wire[i:i + 1]))
    assert [frames.parse_ctrl(p)["op"] for _, p in decoded] == ["a", "b"]


def test_decoder_handles_coalesced_frames_in_one_feed():
    wire = b"".join(frames.pack_ctrl({"op": "x", "seq": i})
                    for i in range(5))
    decoded = frames.FrameDecoder().feed(wire)
    assert [frames.parse_ctrl(p)["seq"] for _, p in decoded] == list(range(5))


def test_corrupt_payload_fails_crc():
    wire = bytearray(frames.pack_ctrl({"op": "claim", "seq": 1}))
    wire[-1] ^= 0xFF  # the node-side corrupt_frame fault does exactly this
    with pytest.raises(frames.FrameError, match="CRC"):
        frames.FrameDecoder().feed(bytes(wire))


def test_bad_magic_rejected():
    wire = b"XXXX" + frames.pack_ctrl({"op": "claim"})[4:]
    with pytest.raises(frames.FrameError, match="magic"):
        frames.FrameDecoder().feed(wire)


def test_future_version_rejected():
    wire = bytearray(frames.pack_ctrl({"op": "claim"}))
    wire[4] = 99
    with pytest.raises(frames.FrameError, match="version"):
        frames.FrameDecoder().feed(bytes(wire))


def test_unknown_frame_type_rejected():
    wire = frames.pack_frame(frames.FT_CTRL, b"{}")
    wire = wire[:5] + bytes([77]) + wire[6:]
    with pytest.raises(frames.FrameError, match="type"):
        frames.FrameDecoder().feed(wire)


def test_absurd_length_rejected_before_buffering():
    header = frames.FRAME_HEADER.pack(frames.FRAME_MAGIC,
                                      frames.FRAME_VERSION, frames.FT_CTRL,
                                      frames.MAX_PAYLOAD + 1, 0)
    with pytest.raises(frames.FrameError, match="ceiling"):
        frames.FrameDecoder().feed(header)


def test_partial_frame_is_buffered_not_an_error():
    wire = frames.pack_ctrl({"op": "claim", "seq": 1})
    decoder = frames.FrameDecoder()
    assert decoder.feed(wire[:len(wire) // 2]) == []
    (ftype, payload), = decoder.feed(wire[len(wire) // 2:])
    assert frames.parse_ctrl(payload)["op"] == "claim"


def test_ctrl_payload_must_be_an_op_object():
    with pytest.raises(frames.FrameError):
        frames.parse_ctrl(b"not json")
    with pytest.raises(frames.FrameError):
        frames.parse_ctrl(json.dumps([1, 2]).encode())
    with pytest.raises(frames.FrameError):
        frames.parse_ctrl(json.dumps({"seq": 1}).encode())


def test_blob_meta_validation():
    with pytest.raises(frames.FrameError):
        frames.split_blob(b"\x01")  # shorter than the meta-length field
    lying = frames._META_LEN.pack(1000) + b"{}"
    with pytest.raises(frames.FrameError):
        frames.split_blob(lying)


def test_encode_decode_blobs_round_trip():
    blobs = [b"", b"a", bytes(1000), b"tail"]
    assert frames.decode_blobs(frames.encode_blobs(blobs)) == blobs


def test_decode_blobs_rejects_torn_tail():
    wire = frames.encode_blobs([b"abcdef"])
    with pytest.raises(frames.FrameError):
        frames.decode_blobs(wire[:-2])
    with pytest.raises(frames.FrameError):
        frames.decode_blobs(wire + b"\x01\x00")


def test_delta_frame_round_trip():
    meta = {"op": "delta", "round": 2, "base": 7}
    raw = b"NCD1" + bytes(range(64))
    (ftype, payload), = frames.FrameDecoder().feed(
        frames.pack_delta(meta, raw))
    assert ftype == frames.FT_DELTA
    assert frames.split_blob(payload) == (meta, raw)


# --- mid-frame reconnects ---------------------------------------------------
#
# A connection can die with a frame half-delivered (the coordinator
# crashing mid-send, a node-side timeout mid-recv). Recovery discards
# the old decoder with the socket: the resent RPC arrives on a fresh
# connection with a fresh FrameDecoder, so the stale half-frame must
# never leak into the new stream — and the abandoned decoder must stay
# quietly buffered rather than erroring on the bytes it already holds.


def test_reconnect_after_partial_header():
    wire = frames.pack_ctrl({"op": "claim", "seq": 4})
    stale = frames.FrameDecoder()
    assert stale.feed(wire[:frames.FRAME_HEADER.size - 3]) == []

    fresh = frames.FrameDecoder()
    (ftype, payload), = fresh.feed(wire)
    assert frames.parse_ctrl(payload)["seq"] == 4
    # The abandoned decoder never completes, and never errors either.
    assert stale.feed(b"") == []


def test_reconnect_after_partial_blob_payload():
    wire = frames.pack_blob({"op": "push", "seq": 9}, bytes(4096))
    stale = frames.FrameDecoder()
    # Header plus half the payload delivered before the link died.
    assert stale.feed(wire[:frames.FRAME_HEADER.size + 2048]) == []

    fresh = frames.FrameDecoder()
    (ftype, payload), = fresh.feed(wire)
    assert ftype == frames.FT_BLOB
    meta, raw = frames.split_blob(payload)
    assert meta["seq"] == 9 and len(raw) == 4096


def test_stale_decoder_tail_does_not_corrupt_resent_frame():
    # The failure mode reconnect-with-a-fresh-decoder prevents: feeding
    # the resent frame into the *stale* decoder misframes the stream.
    wire = frames.pack_ctrl({"op": "claim", "seq": 1})
    stale = frames.FrameDecoder()
    stale.feed(wire[:10])
    with pytest.raises(frames.FrameError):
        # Half a header followed by a full frame is a corrupt stream.
        stale.feed(wire)


def test_reconnect_mid_multi_frame_burst():
    first = frames.pack_ctrl({"op": "claim", "seq": 1})
    second = frames.pack_blob({"op": "push", "seq": 2}, b"payload")
    stale = frames.FrameDecoder()
    # The first frame and part of the second arrived, then the link died.
    decoded = stale.feed(first + second[:8])
    assert [frames.parse_ctrl(p)["seq"] for _, p in decoded] == [1]

    # The sender resends only the unacknowledged RPC on the new link.
    fresh = frames.FrameDecoder()
    (ftype, payload), = fresh.feed(second)
    assert ftype == frames.FT_BLOB
    assert frames.split_blob(payload)[0]["seq"] == 2


# --- addresses -------------------------------------------------------------


def test_parse_address_tcp_and_unix():
    assert parse_address("127.0.0.1:9000") == ("tcp", "127.0.0.1", 9000)
    assert parse_address(":9000") == ("tcp", "127.0.0.1", 9000)
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")


@pytest.mark.parametrize("text", ["", "no-port", "host:notaport", "unix:"])
def test_parse_address_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_address(text)


def test_format_address_round_trips():
    for text in ("127.0.0.1:9000", "unix:/tmp/x.sock"):
        assert format_address(parse_address(text)) == text


def test_default_local_address_prefers_unix(tmp_path):
    address = default_local_address(tmp_path)
    if hasattr(socket, "AF_UNIX"):
        assert address[0] == "unix"
        assert address[1].startswith(str(tmp_path))
    else:  # pragma: no cover - non-POSIX CI
        assert address == ("tcp", "127.0.0.1", 0)


def test_default_local_address_falls_back_for_long_paths(tmp_path):
    deep = tmp_path / ("x" * 120)
    assert default_local_address(deep) == ("tcp", "127.0.0.1", 0)


# --- idempotent lease API --------------------------------------------------


def test_claim_once_is_idempotent(tmp_path):
    board = FileLeaseBoard.create(tmp_path, 20, 2, lease_size=8)
    first = board.claim_once(0, "0:0")
    again = board.claim_once(0, "0:0")
    assert first == again
    assert first is not None and first.size == 8
    # The repeat did not carve a second lease out of the budget.
    state = json.loads(board.state_path.read_text())
    assert state["remaining"] == 12
    assert state["next_id"] == 1


def test_claim_once_records_exhaustion_too(tmp_path):
    board = FileLeaseBoard.create(tmp_path, 8, 1, lease_size=8)
    lease = board.claim_once(0, "0:0")
    board.complete(lease.id, 0)
    assert board.claim_once(0, "1:0") is None
    assert board.claim_once(0, "1:0") is None
    state = json.loads(board.state_path.read_text())
    assert state["grants"]["1:0"] is None
    assert state["remaining"] == 0


def test_recorded_grant_reads_without_carving(tmp_path):
    board = FileLeaseBoard.create(tmp_path, 20, 2, lease_size=8)
    recorded, lease = board.recorded_grant("0:0")
    assert (recorded, lease) == (False, None)
    granted = board.claim_once(0, "0:0")
    recorded, lease = board.recorded_grant("0:0")
    assert recorded and lease == granted
    board.complete(granted.id, 0)
    board.claim_once(0, "1:0")
    board.claim_once(1, "1:1")
    assert board.recorded_grant("1:1") == (
        True, board.claim_once(1, "1:1"))


def test_claim_once_matches_plain_claim_sequence(tmp_path):
    """Grant sequence parity: keyed claims carve the same leases as the
    inline board's plain claims — the federation fingerprint contract."""
    keyed = FileLeaseBoard.create(tmp_path / "a", 50, 2, lease_size=20)
    plain = FileLeaseBoard.create(tmp_path / "b", 50, 2, lease_size=20)
    for rnd in range(3):
        for node in (0, 1):
            assert (keyed.claim_once(node, f"{rnd}:{node}")
                    == plain.claim(node))


# --- corrupt-board regression (satellite) ----------------------------------


def _scribbled_board(tmp_path, garbage: str) -> FileLeaseBoard:
    board = FileLeaseBoard.create(tmp_path, 16, 2, lease_size=8)
    board.state_path.write_text(garbage)
    return board


@pytest.mark.parametrize("garbage", ["{truncated", "", "[1, 2, 3]", "42"])
def test_corrupt_board_raises_lease_board_error(tmp_path, garbage):
    board = _scribbled_board(tmp_path, garbage)
    for operation in (lambda: board.claim(0),
                      lambda: board.claim_once(0, "0:0"),
                      board.finished,
                      board.summary,
                      lambda: board.recorded_grant("0:0")):
        with pytest.raises(LeaseBoardError) as excinfo:
            operation()
        # The message must name the file so the operator can act on it.
        assert str(board.state_path) in str(excinfo.value)


def test_corrupt_board_error_is_restartable(tmp_path):
    """A fresh create() over the scribbled file recovers the board —
    the supervisor's restart path after a LeaseBoardError death."""
    board = _scribbled_board(tmp_path, "{nope")
    with pytest.raises(LeaseBoardError):
        board.finished()
    recreated = FileLeaseBoard.create(tmp_path, 16, 2, lease_size=8)
    assert recreated.claim(0).size == 8
    assert not recreated.finished()


def test_unreadable_board_raises_lease_board_error(tmp_path):
    board = FileLeaseBoard.create(tmp_path, 16, 2)
    board.state_path.unlink()
    with pytest.raises(LeaseBoardError, match="unreadable"):
        board.finished()
