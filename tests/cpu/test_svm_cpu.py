"""Unit tests for the simulated AMD-V CPU."""

import pytest

from repro.arch.registers import Cr0, Efer
from repro.cpu.svm_cpu import SvmCpu, check_vmcb
from repro.svm import fields as SF
from repro.svm.exit_codes import SvmExitCode
from repro.validator.golden import golden_vmcb

VMCB = 0x2000


@pytest.fixture
def cpu():
    cpu = SvmCpu()
    cpu.set_svme(True)
    cpu.set_hsave(0x3000)
    return cpu


class TestVmcbChecks:
    def test_golden_passes(self):
        assert check_vmcb(golden_vmcb()) == []

    def test_svme_required(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.EFER, vmcb.read(SF.EFER) & ~Efer.SVME)
        assert any(v.field == "efer" for v in check_vmcb(vmcb))

    def test_efer_reserved(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.EFER, vmcb.read(SF.EFER) | (1 << 2))
        assert any("reserved" in v.reason for v in check_vmcb(vmcb))

    def test_cr0_cd_nw(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.CR0, (vmcb.read(SF.CR0) | Cr0.NW) & ~Cr0.CD)
        assert any(v.field == "cr0" for v in check_vmcb(vmcb))

    def test_cr0_high_bits(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.CR0, vmcb.read(SF.CR0) | (1 << 40))
        assert any(v.field == "cr0" for v in check_vmcb(vmcb))

    def test_cr4_reserved(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 1 << 31)
        assert any(v.field == "cr4" for v in check_vmcb(vmcb))

    def test_long_mode_requires_pae(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.CR4, 0)
        assert any("PAE" in v.reason for v in check_vmcb(vmcb))

    def test_lme_without_pg_permitted(self):
        """The APM ambiguity behind Xen bugs #5/#6: LME=1 with PG=0 is a
        *legal* transitional state that vmrun must accept."""
        vmcb = golden_vmcb()
        vmcb.write(SF.CR0, vmcb.read(SF.CR0) & ~Cr0.PG)
        vmcb.write(SF.CR4, 0)  # PAE not needed when PG=0
        assert check_vmcb(vmcb) == []

    def test_asid_zero_reserved(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.GUEST_ASID, 0)
        assert any(v.field == "guest_asid" for v in check_vmcb(vmcb))

    def test_vmrun_intercept_required(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.INTERCEPT_MISC2, 0)
        assert any(v.field == "intercept_misc2" for v in check_vmcb(vmcb))

    def test_ncr3_alignment(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.N_CR3, 0x123)
        assert any(v.field == "n_cr3" for v in check_vmcb(vmcb))

    def test_dr7_high_bits(self):
        vmcb = golden_vmcb()
        vmcb.write(SF.DR7, 1 << 40)
        assert any(v.field == "dr7" for v in check_vmcb(vmcb))


class TestVmrun:
    def test_golden_enters(self, cpu):
        cpu.install_vmcb(VMCB, golden_vmcb())
        outcome = cpu.vmrun(VMCB)
        assert outcome.entered
        assert cpu.in_guest

    def test_requires_svme(self):
        cpu = SvmCpu()
        assert cpu.vmrun(VMCB).invalid

    def test_misaligned_vmcb(self, cpu):
        assert cpu.vmrun(0x123).invalid

    def test_missing_vmcb(self, cpu):
        assert cpu.vmrun(0x5000).invalid

    def test_failed_checks_write_exit_code(self, cpu):
        vmcb = golden_vmcb()
        vmcb.write(SF.GUEST_ASID, 0)
        cpu.install_vmcb(VMCB, vmcb)
        outcome = cpu.vmrun(VMCB)
        assert outcome.invalid
        assert vmcb.read(SF.EXIT_CODE) == int(SvmExitCode.INVALID)

    def test_lma_recomputed(self, cpu):
        """vmrun quirk: EFER.LMA is derived from LME & PG."""
        vmcb = golden_vmcb()
        vmcb.write(SF.EFER, (vmcb.read(SF.EFER) | Efer.LME) & ~Efer.LMA)
        cpu.install_vmcb(VMCB, vmcb)
        outcome = cpu.vmrun(VMCB)
        assert outcome.entered
        assert vmcb.read(SF.EFER) & Efer.LMA
        assert any("lma" in fix for fix in outcome.fixups)

    def test_vgif_set_at_vmrun(self, cpu):
        vmcb = golden_vmcb()
        vmcb.write(SF.VINTR_CONTROL, SF.VintrControl.V_GIF_ENABLE)
        cpu.install_vmcb(VMCB, vmcb)
        outcome = cpu.vmrun(VMCB)
        assert outcome.entered
        assert vmcb.vgif_value

    def test_gif_toggling(self, cpu):
        cpu.clgi()
        assert not cpu.gif
        cpu.stgi()
        assert cpu.gif

    def test_hsave_alignment(self):
        with pytest.raises(ValueError):
            SvmCpu().set_hsave(0x123)

    def test_vm_exit_writeback(self, cpu):
        cpu.install_vmcb(VMCB, golden_vmcb())
        cpu.vmrun(VMCB)
        cpu.vm_exit(VMCB, SvmExitCode.CPUID, info1=7)
        vmcb = cpu.memory[VMCB]
        assert vmcb.read(SF.EXIT_CODE) == int(SvmExitCode.CPUID)
        assert vmcb.read(SF.EXIT_INFO_1) == 7
        assert not cpu.in_guest

    def test_vm_exit_without_vmcb_raises(self, cpu):
        with pytest.raises(RuntimeError):
            cpu.vm_exit(0x7000, SvmExitCode.HLT)
