"""Chaos suite, inline mode: injected faults against the deterministic
round-robin runtime.

The acceptance contract these tests pin (ISSUE.md / DESIGN.md §9): a
fault-injected campaign completes, restarts the affected worker at most
``max_restarts`` times, loses no corpus entries, and — for worker
deaths in inline mode — reproduces the clean run's fingerprint bit for
bit, because the replayed chunk re-executes the identical case
sequence.
"""

import pytest

from repro import Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import (
    CampaignAborted,
    FailureKind,
    ParallelCampaign,
    campaign_fingerprint,
)

SEED = 11
BUDGET = 40
SYNC_EVERY = 10


def _campaign(**overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="inline")
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestInlineKillRestart:
    def test_injected_kill_matches_clean_run_bit_for_bit(self):
        clean = _campaign().run(BUDGET)
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=7)])
        with faults.injected(plan):
            faulted = _campaign().run(BUDGET)
        assert plan.exhausted
        assert faulted.engine_stats.iterations == BUDGET
        assert campaign_fingerprint(faulted) == campaign_fingerprint(clean)

    def test_restart_event_recorded_once_per_death(self):
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=3)])
        campaign = _campaign()
        with faults.injected(plan):
            result = campaign.run(BUDGET)
        restarts = [e for e in result.events if e.action == "restart"]
        assert len(restarts) == 1
        assert restarts[0].worker == 0
        assert restarts[0].kind is FailureKind.WORKER_CRASH

    def test_fault_plan_field_works_without_global_install(self):
        # The constructor argument is equivalent to wrapping run() in
        # faults.injected() — the inline runtime must honour it too.
        plan = FaultPlan([FaultSpec("kill_worker", worker=1, at_case=7)])
        result = _campaign(fault_plan=plan).run(BUDGET)
        assert plan.exhausted
        assert result.engine_stats.iterations == BUDGET
        assert any(e.action == "restart" for e in result.events)

    def test_circuit_breaker_aborts_past_max_restarts(self):
        # Two one-shot kills in the same chunk: the first is restarted
        # (1 <= max_restarts), the replay consumes the second, and with
        # max_restarts=1 the second death must abort the campaign.
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=3),
                          FaultSpec("kill_worker", worker=0, at_case=4)])
        campaign = _campaign(max_restarts=1)
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                campaign.run(BUDGET)
        assert any(e.action == "abort" for e in campaign.events)


class TestInlineSyncCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "garbage"])
    def test_corrupt_sync_entry_heals_without_losing_cases(self, mode):
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=0, at_export=1,
                                    corrupt=mode)])
        with faults.injected(plan):
            result = _campaign().run(BUDGET)
        assert plan.exhausted
        assert result.engine_stats.iterations == BUDGET
        # Unseen entries are retried on every sync round, so over this
        # campaign's two rounds a skip count of exactly one proves the
        # entry corrupted at round 1 was healed by the owner's round-2
        # re-export and imported then; a lasting corruption would have
        # been skipped (and counted) again.
        assert result.engine_stats.import_skipped == 1

    def test_tmp_orphan_is_invisible_to_partners(self):
        clean = _campaign().run(BUDGET)
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=0, at_export=1,
                                    corrupt="tmp_orphan")])
        with faults.injected(plan):
            result = _campaign().run(BUDGET)
        assert result.engine_stats.import_skipped == 0
        assert campaign_fingerprint(result) == campaign_fingerprint(clean)
