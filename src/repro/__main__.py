"""Command-line interface: run NecoFuzz campaigns from a shell.

    $ python -m repro --hypervisor kvm --vendor intel --iterations 1000
    $ python -m repro --hypervisor xen --vendor amd --seed 23 \\
          --reports-dir ./findings
    $ python -m repro --hypervisor kvm --vendor intel --patched \\
          cr4_pae_consistency,dummy_root --iterations 500
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import ComponentToggles, NecoFuzz, Vendor


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NecoFuzz: fuzz nested virtualization via "
                    "fuzz-harness VMs (EuroSys '26 reproduction)")
    parser.add_argument("--hypervisor", choices=("kvm", "xen", "virtualbox"),
                        default="kvm", help="L0 hypervisor model to fuzz")
    parser.add_argument("--vendor", choices=("intel", "amd"), default="intel",
                        help="CPU vendor (virtualbox supports intel only)")
    parser.add_argument("--iterations", type=int, default=500,
                        help="fuzzing budget (test cases)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (campaigns are deterministic)")
    parser.add_argument("--reports-dir", type=Path, default=None,
                        help="directory for crash reports (.json + .bin)")
    parser.add_argument("--patched", default="",
                        help="comma-separated fix flags to apply "
                             "(e.g. cr4_pae_consistency,dummy_root)")
    parser.add_argument("--no-harness-mutation", action="store_true",
                        help="ablation: fixed init/runtime templates")
    parser.add_argument("--no-validator", action="store_true",
                        help="ablation: disable the VM state validator")
    parser.add_argument("--no-configurator", action="store_true",
                        help="ablation: static default vCPU configuration")
    parser.add_argument("--blackbox", action="store_true",
                        help="disable coverage guidance (Table-5 mode)")
    parser.add_argument("--async-events", action="store_true",
                        help="enable the asynchronous-event extension")
    parser.add_argument("--sample-every", type=int, default=50,
                        help="coverage-timeline sampling interval")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.hypervisor == "virtualbox" and args.vendor != "intel":
        print("error: the VirtualBox model is Intel-only", file=sys.stderr)
        return 2

    campaign = NecoFuzz(
        hypervisor=args.hypervisor,
        vendor=Vendor(args.vendor),
        seed=args.seed,
        toggles=ComponentToggles(
            use_harness=not args.no_harness_mutation,
            use_validator=not args.no_validator,
            use_configurator=not args.no_configurator),
        coverage_guided=not args.blackbox,
        patched=frozenset(f for f in args.patched.split(",") if f),
        async_events=args.async_events,
        reports_dir=args.reports_dir)

    print(f"fuzzing {args.hypervisor}/{args.vendor} "
          f"(seed {args.seed}, {args.iterations} cases)...")
    result = campaign.run(args.iterations, sample_every=args.sample_every)

    for point in result.timeline.points:
        print(f"  {point.iteration:>7} cases  "
              f"{100 * point.coverage:5.1f}% nested-code coverage")
    print(result.summary())

    for report in result.reports:
        print(f"\n[{report.anomaly.method.value}] iteration {report.iteration}")
        print(f"  {report.anomaly.message}")
        print(f"  reproduce: {report.command_line}")
    if args.reports_dir and result.reports:
        print(f"\nreports written to {args.reports_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
