"""Table 5: the effect of coverage guidance.

Reproduces the black-box-viability finding (§5.4/§5.6): because the
validator's rounding collapses micro-variations, coverage feedback adds
little — the breadth-first black-box configuration lands within a few
percentage points of the guided one (paper: 84.7% vs 81.7% Intel,
74.2% vs 71.8% AMD — guidance OFF is the *default* NecoFuzz).
"""

import pytest

from common import BenchReport, coverage_percents, necofuzz_runs
from repro import Vendor
from repro.analysis.stats import median_of


@pytest.mark.benchmark(group="table5")
@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_table5_coverage_guidance(benchmark, capsys, vendor):
    box = {}

    def experiment():
        box["guided"] = necofuzz_runs(vendor, coverage_guided=True)
        box["blackbox"] = necofuzz_runs(vendor, coverage_guided=False)
        return box

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    guided = median_of(coverage_percents(box["guided"]))
    blackbox = median_of(coverage_percents(box["blackbox"]))

    report = BenchReport(f"Table 5: coverage guidance ({vendor.value}, 48h)")
    report.add(f"{'w/o coverage guidance':<28} {blackbox:5.1f}%")
    report.add(f"{'with coverage guidance':<28} {guided:5.1f}%")
    report.add(f"{'difference':<28} {abs(guided - blackbox):5.1f} pp "
               "(paper: ~3 pp)")
    report.emit(capsys)

    # The headline: guidance changes little — NecoFuzz works black-box.
    assert abs(guided - blackbox) < 12.0
    # Both configurations still reach high coverage.
    assert guided > 55 and blackbox > 55
