"""The Figure-5 Hamming-distance study (paper §5.3.2).

Three distributions over the 8,000-bit / 165-field VMCS layout:

* **random ↔ validated** — distance between raw random states and their
  validator-rounded counterparts (paper: mean 492.6, σ 53.9): random
  states have ~2^-492 probability of being valid by chance;
* **default ↔ validated** — distance between the default-initialised
  (golden) state and validated random states (paper: mean 284.7, σ 36.4):
  the validator produces far more diversity than default mutation;
* **pairwise** — distance between pairs of validated states (paper:
  mean 353, σ 63.9): the generated population is internally diverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev

from repro.fuzzer.rng import Rng
from repro.validator.golden import golden_vmcs
from repro.validator.rounding import VmStateValidator
from repro.vmx import fields as F
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one Hamming-distance sample set."""

    label: str
    samples: tuple[int, ...]

    @property
    def mean(self) -> float:
        """Sample mean."""
        return mean(self.samples)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for single samples)."""
        return stdev(self.samples) if len(self.samples) > 1 else 0.0

    @property
    def minimum(self) -> int:
        """Smallest sample."""
        return min(self.samples)

    @property
    def maximum(self) -> int:
        """Largest sample."""
        return max(self.samples)

    def render(self) -> str:
        """Render as printable text."""
        return (f"{self.label:<24} mean={self.mean:7.1f} bits  "
                f"sd={self.stdev:6.1f}  range=[{self.minimum}, {self.maximum}]")


@dataclass(frozen=True)
class HammingStudy:
    """All three Figure-5 distributions."""

    random_vs_validated: Distribution
    default_vs_validated: Distribution
    pairwise_validated: Distribution

    def render(self) -> str:
        """Render as printable text."""
        lines = ["Figure 5: distribution of VM states "
                 f"({len(F.ALL_FIELDS)} fields, {F.LAYOUT_BITS} bits)"]
        lines += [d.render() for d in (self.random_vs_validated,
                                       self.default_vs_validated,
                                       self.pairwise_validated)]
        return "\n".join(lines)


def run_study(repetitions: int = 1000, seed: int = 1,
              caps: VmxCapabilities | None = None) -> HammingStudy:
    """Run the Figure-5 experiment (paper uses 10,000 repetitions)."""
    caps = caps or default_capabilities()
    rng = Rng(seed)
    validator = VmStateValidator(caps)
    golden = golden_vmcs(caps)

    random_vs_valid: list[int] = []
    default_vs_valid: list[int] = []
    validated: list[Vmcs] = []

    for _ in range(repetitions):
        raw = Vmcs.deserialize(rng.bytes(F.LAYOUT_BYTES), caps.vmcs_revision_id)
        rounded = raw.copy()
        validator.round_to_valid(rounded)
        random_vs_valid.append(raw.hamming(rounded))
        default_vs_valid.append(golden.hamming(rounded))
        validated.append(rounded)

    pairwise: list[int] = []
    for _ in range(repetitions):
        a = validated[rng.below(len(validated))]
        b = validated[rng.below(len(validated))]
        pairwise.append(a.hamming(b))

    return HammingStudy(
        random_vs_validated=Distribution("random vs validated",
                                         tuple(random_vs_valid)),
        default_vs_validated=Distribution("default vs validated",
                                          tuple(default_vs_valid)),
        pairwise_validated=Distribution("validated pairwise",
                                        tuple(pairwise)),
    )


def validity_probability_exponent(study: HammingStudy) -> float:
    """The "one in 2^492.6" headline: the mean random->valid distance
    is the (log2) improbability of randomly landing on a valid state."""
    return study.random_vs_validated.mean
