"""NCD1 coverage deltas: sparse, run-length diffs of the virgin map.

The distributed coverage plane used to move *corpus records* whenever a
peer needed to learn what a node had covered — 2 KiB of case payload
per entry to communicate a few dozen classified-bitmap cells. An NCD1
delta moves only the coverage: the XOR of two snapshots of a node's
64 KiB virgin map, encoded as ``(start, bytes)`` runs over the nonzero
stretches, sealed with a CRC32 (:mod:`repro.parallel.checksum`).

Two properties make the encoding exact for virgin maps:

* The map grows **monotonically** (cells only ever OR in new class
  bits), so ``old XOR new == new & ~old`` — applying a delta by ORing
  its runs into *old* reconstructs *new* bit-for-bit, and applying it
  to any map that already advanced past *old* is a plain merge.
* Every delta carries the **generation watermark** pair it was diffed
  across (:attr:`CoverageDelta.base_generation` →
  :attr:`CoverageDelta.generation`, the :class:`VirginMap` mutation
  counter). A receiver whose stored generation does not match the base
  rejects the delta and asks for a resync — a full-map delta with
  ``base_generation == 0``, which is always applicable.

The diff hot loop is vectorized like the bitmap kernels: one big-int
XOR over the whole map, then a single C-level regex scan
(:data:`_RUN_SCAN`) finds the nonzero runs, coalescing gaps smaller
than a run header so a cluster of nearby cells costs one run, not ten.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.coverage.bitmap import MAP_SIZE
from repro.parallel import checksum

DELTA_MAGIC = b"NCD1"

#: magic, base generation (0 = full snapshot), generation, run count.
_HEADER = struct.Struct("<4sIII")
#: Per-run prefix: start offset, byte length.
_RUN = struct.Struct("<II")

#: Nonzero byte runs, tolerating gaps of up to 7 zero bytes inside one
#: run: a gap shorter than a run header (8 bytes) is cheaper shipped as
#: literal zeros than split into two runs.
_RUN_SCAN = re.compile(rb"[^\x00](?:\x00{0,7}[^\x00])*", re.DOTALL)


class DeltaError(ValueError):
    """A delta payload is corrupt or not applicable here."""


@dataclass(frozen=True)
class CoverageDelta:
    """One virgin-map diff between two generation watermarks."""

    #: Generation the diff was taken against; 0 means "against the
    #: zero map" — a full snapshot, applicable to any baseline.
    base_generation: int
    #: Generation of the map the diff produces.
    generation: int
    #: Sorted, non-overlapping ``(start, bytes)`` runs of the XOR diff.
    runs: tuple[tuple[int, bytes], ...]

    @property
    def empty(self) -> bool:
        return not self.runs

    @property
    def full(self) -> bool:
        """Is this a resync snapshot (applicable to any baseline)?"""
        return self.base_generation == 0

    def payload_bytes(self) -> int:
        """Run payload volume (what density the diff actually carries)."""
        return sum(len(run) for _start, run in self.runs)


def diff_runs(old: bytes, new: bytes) -> tuple[tuple[int, bytes], ...]:
    """The nonzero runs of ``old XOR new`` (both full-map payloads)."""
    if len(old) != MAP_SIZE or len(new) != MAP_SIZE:
        raise ValueError("virgin-map payloads must be MAP_SIZE bytes")
    xor = (int.from_bytes(old, "little") ^ int.from_bytes(new, "little"))
    if not xor:
        return ()
    diff = xor.to_bytes(MAP_SIZE, "little")
    return tuple((match.start(), match.group())
                 for match in _RUN_SCAN.finditer(diff))


def delta_between(old: bytes, new: bytes, base_generation: int,
                  generation: int) -> CoverageDelta:
    """The delta carrying *old* → *new* across the given watermarks."""
    return CoverageDelta(base_generation=base_generation,
                         generation=generation,
                         runs=diff_runs(old, new))


def full_delta(bits: bytes, generation: int) -> CoverageDelta:
    """A resync snapshot (``base_generation == 0``) of *bits*."""
    return CoverageDelta(base_generation=0, generation=generation,
                         runs=diff_runs(bytes(MAP_SIZE), bits))


def apply_runs(bits: bytearray, runs) -> bool:
    """OR delta runs into a live map; returns whether anything changed.

    Correct for any baseline at or past the delta's base: the runs are
    ``new & ~old`` of a monotone map, so ORing them is a merge.
    """
    changed = False
    for start, run in runs:
        end = start + len(run)
        merged = (int.from_bytes(bits[start:end], "little")
                  | int.from_bytes(run, "little"))
        chunk = merged.to_bytes(len(run), "little")
        if chunk != bits[start:end]:
            bits[start:end] = chunk
            changed = True
    return changed


def runs_subsumed(bits, runs) -> bool:
    """Would applying *runs* to *bits* change nothing?

    The whole-batch analogue of :meth:`VirginMap.subsumes`: a partner
    whose entire map diff is already present locally cannot ship any
    record that would light up new bits.
    """
    for start, run in runs:
        end = start + len(run)
        if (int.from_bytes(run, "little")
                & ~int.from_bytes(bits[start:end], "little")):
            return False
    return True


def encode(delta: CoverageDelta) -> bytes:
    """Serialize one delta; the payload is CRC-sealed end to end."""
    parts = [_HEADER.pack(DELTA_MAGIC, delta.base_generation,
                          delta.generation, len(delta.runs))]
    for start, run in delta.runs:
        parts.append(_RUN.pack(start, len(run)))
        parts.append(run)
    return checksum.seal(b"".join(parts))


def decode(raw: bytes) -> CoverageDelta:
    """Invert :func:`encode`; :class:`DeltaError` on any corruption."""
    payload = checksum.unseal(raw)
    if payload is None:
        raise DeltaError("delta payload failed its CRC check")
    if len(payload) < _HEADER.size:
        raise DeltaError("delta payload shorter than its header")
    magic, base_generation, generation, count = _HEADER.unpack_from(payload)
    if magic != DELTA_MAGIC:
        raise DeltaError(f"bad delta magic {bytes(magic)!r}")
    runs = []
    pos = _HEADER.size
    last_end = 0
    for _ in range(count):
        if pos + _RUN.size > len(payload):
            raise DeltaError("truncated delta run header")
        start, length = _RUN.unpack_from(payload, pos)
        pos += _RUN.size
        if length == 0 or start < last_end or start + length > MAP_SIZE:
            raise DeltaError("delta run out of bounds or out of order")
        if pos + length > len(payload):
            raise DeltaError("truncated delta run payload")
        runs.append((start, payload[pos:pos + length]))
        pos += length
        last_end = start + length
    if pos != len(payload):
        raise DeltaError("trailing bytes after the last delta run")
    return CoverageDelta(base_generation=base_generation,
                         generation=generation, runs=tuple(runs))


class DeltaTracker:
    """Per-peer baseline for producing a chain of deltas.

    The producer side of the watermark protocol: :meth:`take` diffs the
    live map against the last baseline the peer acknowledged;
    :meth:`commit` advances the baseline once the peer acked;
    :meth:`resync` drops it to zero so the next :meth:`take` ships a
    full snapshot (what a peer that lost state, or rejected a corrupt
    delta, asks for).
    """

    def __init__(self) -> None:
        self._bits = bytes(MAP_SIZE)
        self._generation = 0
        self._pending: CoverageDelta | None = None
        self._pending_bits: bytes | None = None

    @property
    def generation(self) -> int:
        return self._generation

    def take(self, virgin) -> CoverageDelta:
        """The delta from the acked baseline to *virgin*'s current bits."""
        bits = bytes(virgin.bits)
        delta = delta_between(self._bits, bits, self._generation,
                              virgin.generation)
        self._pending = delta
        self._pending_bits = bits
        return delta

    def commit(self, delta: CoverageDelta) -> None:
        """The peer acked *delta*: advance the baseline to it."""
        if self._pending is not delta or self._pending_bits is None:
            raise DeltaError("commit of a delta this tracker did not take")
        self._bits = self._pending_bits
        self._generation = delta.generation
        self._pending = None
        self._pending_bits = None

    def resync(self) -> None:
        """Drop the baseline: the next :meth:`take` is a full snapshot."""
        self._bits = bytes(MAP_SIZE)
        self._generation = 0
        self._pending = None
        self._pending_bits = None
