"""A tiny module used as a tracing target by the kcov tests.

The *_LINE constants are maintained by hand; keep them in sync when
editing this file.
"""

MODULE_LEVEL_VALUE = 42  # executes at import time


def branchy(flag: bool) -> str:
    if flag:
        return "true-arm"   # BRANCH_TRUE_LINE
    return "false-arm"      # BRANCH_FALSE_LINE


def looper(n: int) -> int:
    total = 0
    for i in range(n):
        total += i
    return total


class Helper:
    CLASS_ATTRIBUTE = "set at import"  # CLASS_ATTR_LINE

    def method(self) -> int:
        return 7  # METHOD_BODY_LINE


MODULE_LEVEL_LINE = 7
BRANCH_TRUE_LINE = 12
BRANCH_FALSE_LINE = 13
CLASS_ATTR_LINE = 24
METHOD_BODY_LINE = 27
