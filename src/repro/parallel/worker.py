"""One shard of a parallel campaign: a full agent + engine pair.

Worker 0 always receives the campaign seed verbatim, which is what makes
a one-worker parallel campaign reproduce the serial ``NecoFuzz.run``
bit for bit; workers 1..N-1 get seeds derived through the same
multiplier :meth:`repro.fuzzer.rng.Rng.fork` uses, with a salt space
disjoint from the campaign's own seed-corpus salts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.timeline import CoverageTimeline
from repro.core.necofuzz import CampaignResult, NecoFuzz
from repro.parallel.sync import SyncDirectory

#: Salt base for derived worker seeds (disjoint from the small corpus
#: salts NecoFuzz.__post_init__ forks off the campaign RNG).
_WORKER_SALT = 0x9E3779B9


def worker_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-worker engine seed.

    Index 0 is the campaign seed itself (serial == 1-worker contract);
    other indices reuse the ``Rng.fork`` mixing so derived seeds are
    decorrelated from the campaign seed and from each other.
    """
    if index == 0:
        return campaign_seed
    return (campaign_seed * 1_000_003 + _WORKER_SALT + index) & 0xFFFFFFFFFFFFFFFF


@dataclass
class WorkerSpec:
    """Static description of one worker's shard."""

    index: int
    seed: int
    iterations: int  # this worker's share of the campaign budget


@dataclass
class WorkerReport:
    """Everything the orchestrator needs back from one worker."""

    index: int
    share: int
    result: CampaignResult
    #: Per-sample newly covered lines: (local iteration, line delta).
    samples: list[tuple[int, frozenset]]
    #: Snapshot of the worker's virgin map for the merged map.
    virgin_bits: bytes


@dataclass
class CampaignWorker:
    """Drives one shard in chunks, sampling like the serial loop does."""

    spec: WorkerSpec
    campaign_kwargs: dict
    sample_every: int = 10
    sync: SyncDirectory | None = None
    done: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.campaign = NecoFuzz(seed=self.spec.seed, **self.campaign_kwargs)
        label = (f"NecoFuzz/{self.campaign.hypervisor}/"
                 f"{self.campaign.vendor.value}")
        if self.spec.index:
            label += f"[w{self.spec.index}]"
        self.timeline = CoverageTimeline(label, self.campaign.iterations_per_hour)
        self.samples: list[tuple[int, frozenset]] = []
        self._seen_lines: set = set()

    @property
    def finished(self) -> bool:
        return self.done >= self.spec.iterations

    def run_chunk(self, budget: int) -> int:
        """Run up to *budget* engine steps of the remaining share.

        Sampling follows the exact serial rule (`i % sample_every == 0
        or i == share`) over the worker's local iteration counter, so a
        one-worker campaign produces the serial timeline.
        """
        steps = min(budget, self.spec.iterations - self.done)
        agent = self.campaign.agent
        engine = self.campaign.engine
        for _ in range(steps):
            self.done += 1
            engine.step()
            i = self.done
            if i % self.sample_every == 0 or i == self.spec.iterations:
                self.timeline.record(i, agent.coverage_fraction)
                covered = agent.covered_lines()
                delta = frozenset(covered - self._seen_lines)
                self._seen_lines |= delta
                self.samples.append((i, delta))
        return steps

    # --- corpus sync -------------------------------------------------------

    def export(self) -> int:
        """Publish locally found queue entries to the sync directory."""
        if self.sync is None:
            return 0
        return self.sync.export(self.campaign.engine)

    def import_new(self) -> int:
        """Execute partners' new entries; keep the locally novel ones."""
        if self.sync is None:
            return 0
        return self.sync.import_new(self.campaign.engine)

    def run_share(self, sync_every: int) -> "WorkerReport":
        """Self-paced loop for process mode: chunk, publish, import."""
        while not self.finished:
            self.run_chunk(sync_every)
            self.export()
            self.import_new()
        if self.spec.iterations == 0:
            self.export()
        return self.report()

    # --- results -----------------------------------------------------------

    def result(self) -> CampaignResult:
        """This worker's own view, shaped exactly like a serial result."""
        agent = self.campaign.agent
        return CampaignResult(
            timeline=self.timeline,
            covered_lines=agent.covered_lines(),
            instrumented_lines=set(agent.tracer.instrumented),
            reports=list(agent.reports.reports),
            engine_stats=self.campaign.engine.stats,
            watchdog_restarts=agent.watchdog.restarts)

    def report(self) -> WorkerReport:
        return WorkerReport(
            index=self.spec.index,
            share=self.spec.iterations,
            result=self.result(),
            samples=list(self.samples),
            virgin_bits=bytes(self.campaign.engine.virgin.bits))
