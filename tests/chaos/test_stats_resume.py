"""Chaos suite: engine-stat counters survive a kill-and-resume cycle.

``imports_skipped_subsumed`` and ``case_exceptions`` are bookkeeping
that lives only in :class:`EngineStats` — no corpus entry or coverage
bit re-derives them on replay. If the checkpoint pickle dropped either,
a resumed campaign would silently under-report filter effectiveness and
contained faults. The clean run and the kill-then-resume run must agree
on every stats field.
"""

import pickle

import pytest

from repro import Vendor, faults
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import CampaignAborted, ParallelCampaign

SEED = 11
BUDGET = 40
SYNC_EVERY = 10


def _campaign(sync_dir, **overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=2, sync_every=SYNC_EVERY, mode="inline",
                  sync_dir=sync_dir, checkpoint_interval=1)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


def _hook_fault():
    # Fires on worker 0's first oracle call (round 1), so its effect is
    # checkpointed before the round-2 kill below.
    return FaultSpec("raise_in_hook", hook="oracle.verify", worker=0)


class TestStatsSurviveResume:
    def test_counters_match_a_clean_run_after_kill_and_resume(self,
                                                              tmp_path):
        with faults.injected(FaultPlan([_hook_fault()])):
            clean = _campaign(tmp_path / "clean").run(BUDGET)
        # The baseline must actually exercise both counters, or this
        # test proves nothing.
        assert clean.engine_stats.imports_skipped_subsumed > 0
        assert clean.engine_stats.case_exceptions == 1

        crashed_dir = tmp_path / "crashed"
        plan = FaultPlan([_hook_fault(),
                          FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                _campaign(crashed_dir, max_restarts=0).run(BUDGET)
        assert plan.exhausted

        resumed = _campaign(crashed_dir, resume=True).run(BUDGET)
        assert (resumed.engine_stats.imports_skipped_subsumed
                == clean.engine_stats.imports_skipped_subsumed)
        assert (resumed.engine_stats.case_exceptions
                == clean.engine_stats.case_exceptions)
        # And everything else the stats track, for good measure.
        assert resumed.engine_stats == clean.engine_stats

    def test_worker_checkpoint_pickle_preserves_the_counters(self):
        from repro.parallel.worker import CampaignWorker, WorkerSpec

        worker = CampaignWorker(WorkerSpec(index=0, seed=7, iterations=8),
                                dict(hypervisor="kvm", vendor=Vendor.INTEL))
        worker.run_chunk(8)
        stats = worker.campaign.engine.stats
        # Force the two fields under test to known non-default values:
        # the pin is about serialization, not how they got set.
        stats.imports_skipped_subsumed = 3
        stats.case_exceptions = 2
        restored = pickle.loads(pickle.dumps(worker))
        assert restored.campaign.engine.stats == stats
        assert restored.campaign.engine.stats.imports_skipped_subsumed == 3
        assert restored.campaign.engine.stats.case_exceptions == 2
