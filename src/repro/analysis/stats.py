"""Evaluation statistics following Klees et al. (CCS'18).

The paper reports "medians of five runs over time together with their
95% confidence intervals (CIs), the p-values from two-sided Mann-Whitney
U-tests, and Cohen's d effect sizes" (§5.1). These helpers are pure
Python (no scipy dependency at import time) so the library stays
self-contained; the Mann-Whitney implementation uses the exact normal
approximation with tie correction, matching scipy's default for the
sample sizes involved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean, median, stdev


def median_of(samples: list[float]) -> float:
    """The sample median."""
    if not samples:
        raise ValueError("no samples")
    return float(median(samples))


def confidence_interval(samples: list[float],
                        confidence: float = 0.95) -> tuple[float, float]:
    """A bootstrap-free CI for the median via binomial order statistics.

    For the small n the paper uses (five runs), the distribution-free
    order-statistic interval is the honest choice; for n < 3 it
    degenerates to the sample range.
    """
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        raise ValueError("no samples")
    if n < 3:
        return ordered[0], ordered[-1]
    # Find the tightest symmetric (i, j) with binomial coverage >= level.
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)
    spread = int(math.ceil(z * math.sqrt(n) / 2))
    lo = max(0, n // 2 - spread)
    hi = min(n - 1, (n - 1) // 2 + spread)
    return ordered[lo], ordered[hi]


def _rankdata(values: list[float]) -> list[float]:
    """Average ranks (1-based) with ties shared."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def mann_whitney_u(a: list[float], b: list[float]) -> tuple[float, float]:
    """Two-sided Mann-Whitney U-test.

    Returns ``(U, p)`` using the normal approximation with tie
    correction and continuity correction — adequate for the paper's
    five-vs-five comparisons (where the smallest achievable two-sided
    exact p is ~0.008).
    """
    n1, n2 = len(a), len(b)
    if not n1 or not n2:
        raise ValueError("both samples must be non-empty")
    combined = list(a) + list(b)
    ranks = _rankdata(combined)
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2
    u2 = n1 * n2 - u1
    u = min(u1, u2)

    mu = n1 * n2 / 2
    # Tie correction for the variance.
    tie_term = 0.0
    seen: dict[float, int] = {}
    for value in combined:
        seen[value] = seen.get(value, 0) + 1
    for count in seen.values():
        tie_term += count ** 3 - count
    n = n1 + n2
    sigma_sq = n1 * n2 / 12 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0:
        return u, 1.0
    z = (u - mu + 0.5) / math.sqrt(sigma_sq)
    p = 2 * _normal_sf(abs(z))
    return u, min(p, 1.0)


def _normal_sf(z: float) -> float:
    """Standard normal survival function."""
    return 0.5 * math.erfc(z / math.sqrt(2))


def cohens_d(a: list[float], b: list[float]) -> float:
    """Cohen's d with the pooled standard deviation.

    Degenerate (zero-variance) samples return ``inf`` when the means
    differ — the paper's AMD comparison reports d = 171.97, i.e. the
    samples barely overlap.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two samples per group")
    va, vb = stdev(a) ** 2, stdev(b) ** 2
    pooled = math.sqrt(((len(a) - 1) * va + (len(b) - 1) * vb)
                       / (len(a) + len(b) - 2))
    diff = mean(a) - mean(b)
    if pooled == 0:
        return math.inf if diff else 0.0
    return diff / pooled


@dataclass(frozen=True)
class Comparison:
    """A Klees-style comparison of two tools' final coverage."""

    name_a: str
    name_b: str
    median_a: float
    median_b: float
    ci_a: tuple[float, float]
    ci_b: tuple[float, float]
    p_value: float
    effect_size: float

    @property
    def improvement(self) -> float:
        """How many times higher A's median is than B's."""
        if self.median_b == 0:
            return math.inf
        return self.median_a / self.median_b

    def render(self) -> str:
        """Render as printable text."""
        return (f"{self.name_a} {self.median_a:.1f}% "
                f"(95% CI: {self.ci_a[0]:.1f}-{self.ci_a[1]:.1f}) vs "
                f"{self.name_b} {self.median_b:.1f}% "
                f"(95% CI: {self.ci_b[0]:.1f}-{self.ci_b[1]:.1f}): "
                f"{self.improvement:.1f}x, p = {self.p_value:.3f}, "
                f"d = {self.effect_size:.2f}")


def compare(name_a: str, runs_a: list[float],
            name_b: str, runs_b: list[float]) -> Comparison:
    """Build the full Klees-style comparison between two sample sets."""
    _, p = mann_whitney_u(runs_a, runs_b)
    return Comparison(
        name_a=name_a, name_b=name_b,
        median_a=median_of(runs_a), median_b=median_of(runs_b),
        ci_a=confidence_interval(runs_a), ci_b=confidence_interval(runs_b),
        p_value=p, effect_size=cohens_d(runs_a, runs_b))
