"""Tests for coverage timelines and the Hamming-distance study."""

import pytest

from repro.analysis.hamming import run_study, validity_probability_exponent
from repro.analysis.timeline import CoverageTimeline, median_timeline


class TestTimeline:
    def test_record_and_final(self):
        timeline = CoverageTimeline("t", iterations_per_hour=10)
        timeline.record(10, 0.5)
        timeline.record(20, 0.7)
        assert timeline.final_coverage == 0.7

    def test_hours_mapping(self):
        timeline = CoverageTimeline("t", iterations_per_hour=10)
        timeline.record(480, 0.8)
        assert timeline.series() == [(48.0, 80.0)]

    def test_at_hour(self):
        timeline = CoverageTimeline("t", iterations_per_hour=10)
        timeline.record(10, 0.5)
        timeline.record(100, 0.8)
        assert timeline.at_hour(1.0) == 0.5
        assert timeline.at_hour(10.0) == 0.8
        assert timeline.at_hour(0.1) == 0.0

    def test_empty_timeline(self):
        timeline = CoverageTimeline("t")
        assert timeline.final_coverage == 0.0
        assert "no data" in timeline.render()

    def test_render_sparkline(self):
        timeline = CoverageTimeline("NecoFuzz", iterations_per_hour=10)
        for i in range(1, 11):
            timeline.record(i * 10, i / 10)
        rendered = timeline.render()
        assert "NecoFuzz" in rendered and "100.0%" in rendered

    def test_median_timeline(self):
        runs = []
        for offset in (0.0, 0.1, 0.2):
            timeline = CoverageTimeline("run", iterations_per_hour=10)
            timeline.record(10, 0.5 + offset)
            timeline.record(20, 0.6 + offset)
            runs.append(timeline)
        merged = median_timeline(runs, "median")
        assert merged.points[0].coverage == pytest.approx(0.6)
        assert merged.points[1].coverage == pytest.approx(0.7)

    def test_median_timeline_empty(self):
        assert median_timeline([], "m").points == []


class TestHammingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(repetitions=120, seed=3)

    def test_paper_ordering(self, study):
        """Figure 5's qualitative ordering: random↔validated largest,
        then pairwise, then default↔validated."""
        assert (study.random_vs_validated.mean
                > study.pairwise_validated.mean
                > study.default_vs_validated.mean * 0.9)

    def test_random_states_effectively_never_valid(self, study):
        # The "one in 2^492.6" argument: the exponent is enormous.
        assert validity_probability_exponent(study) > 300

    def test_validated_population_is_diverse(self, study):
        assert study.pairwise_validated.mean > 500
        assert study.pairwise_validated.stdev > 0

    def test_distributions_have_spread(self, study):
        for dist in (study.random_vs_validated, study.default_vs_validated,
                     study.pairwise_validated):
            assert dist.minimum < dist.mean < dist.maximum

    def test_render(self, study):
        text = study.render()
        assert "165 fields" in text and "8000 bits" in text
        assert "random vs validated" in text

    def test_deterministic(self):
        a = run_study(repetitions=40, seed=9)
        b = run_study(repetitions=40, seed=9)
        assert a.random_vs_validated.samples == b.random_vs_validated.samples
