"""NecoFuzz core: the paper's primary contribution."""

from repro.core.agent import Agent, AgentConfig
from repro.core.detectors import Anomaly, AnomalyDetector, DetectionMethod, Watchdog
from repro.core.executor import ComponentToggles, UefiExecutor
from repro.core.harness import VmExecutionHarness
from repro.core.necofuzz import CampaignResult, NecoFuzz, golden_seed
from repro.core.reports import CrashReport, ReportStore
from repro.core.state_generator import VmcbStateGenerator, VmStateGenerator
from repro.core.vcpu_config import VcpuConfigurator

__all__ = [
    "NecoFuzz",
    "CampaignResult",
    "golden_seed",
    "Agent",
    "AgentConfig",
    "ComponentToggles",
    "UefiExecutor",
    "VmExecutionHarness",
    "VmStateGenerator",
    "VmcbStateGenerator",
    "VcpuConfigurator",
    "AnomalyDetector",
    "Anomaly",
    "DetectionMethod",
    "Watchdog",
    "CrashReport",
    "ReportStore",
]
