"""Tests for Xen's host-side (domctl) surface — unit-tested here even
though fuzzing campaigns never reach it (outside the threat model)."""

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER
from repro.arch.registers import Efer
from repro.hypervisors import GuestInstruction, VcpuConfig, XenHypervisor
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.vmx import fields as F

VMXON, VMCS12, VMCB12 = 0x1000, 0x3000, 0x3000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def booted_intel():
    hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL))
    vcpu = hv.create_vcpu()
    run(hv, vcpu, "vmxon", addr=VMXON)
    run(hv, vcpu, "vmclear", addr=VMCS12)
    run(hv, vcpu, "vmptrld", addr=VMCS12)
    for spec, value in golden_vmcs(hv.nested_vmx.caps).fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
    run(hv, vcpu, "vmlaunch")
    return hv, vcpu


class TestNvmxDomctl:
    def test_state_roundtrip(self):
        hv, vcpu = booted_intel()
        blob = hv.nested_vmx.nvmx_domctl_get_state(vcpu.nvmx)
        assert blob["vmxon"] and blob["guest_mode"]
        fresh = hv.create_vcpu()
        assert hv.nested_vmx.nvmx_domctl_set_state(fresh.nvmx, blob) == 0
        assert fresh.nvmx.guest_mode
        assert fresh.nvmx.vvmcs_addr == vcpu.nvmx.vvmcs_addr

    def test_set_state_rejects_inconsistent_blob(self):
        hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL))
        vcpu = hv.create_vcpu()
        nested = hv.nested_vmx
        assert nested.nvmx_domctl_set_state(vcpu.nvmx, {"guest_mode": True}) == -22
        assert nested.nvmx_domctl_set_state(
            vcpu.nvmx, {"vmxon": True, "vmxon_region": 0x123}) == -22
        assert nested.nvmx_domctl_set_state(
            vcpu.nvmx, {"vmxon": True, "vmxon_region": VMXON,
                        "vvmcs_addr": 0xF0000000}) == -22

    def test_vcpu_initialise_and_destroy(self):
        hv, vcpu = booted_intel()
        nested = hv.nested_vmx
        assert nested.nvmx_vcpu_initialise(vcpu.nvmx) == -16  # busy
        nested.nvmx_vcpu_destroy(vcpu.nvmx)
        assert not vcpu.nvmx.vmxon
        assert nested.nvmx_vcpu_initialise(vcpu.nvmx) == 0


class TestNsvmDomctl:
    def _booted(self):
        hv = XenHypervisor(VcpuConfig.default(Vendor.AMD))
        vcpu = hv.create_vcpu()
        run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
        hv.memory.put_vmcb(VMCB12, golden_vmcb())
        run(hv, vcpu, "vmrun", addr=VMCB12)
        return hv, vcpu

    def test_state_roundtrip(self):
        hv, vcpu = self._booted()
        blob = hv.nested_svm.nsvm_domctl_get_state(vcpu.nsvm)
        assert blob["guest_mode"]
        fresh = hv.create_vcpu()
        assert hv.nested_svm.nsvm_domctl_set_state(fresh.nsvm, blob) == 0
        assert fresh.nsvm.guest_mode

    def test_set_state_validates_vmcb(self):
        hv, vcpu = self._booted()
        blob = hv.nested_svm.nsvm_domctl_get_state(vcpu.nsvm)
        from repro.svm import fields as SF
        from repro.svm.vmcb import Vmcb

        bad = Vmcb.deserialize(blob["vmcb12"])
        bad.write(SF.GUEST_ASID, 0)
        blob["vmcb12"] = bad.serialize()
        fresh = hv.create_vcpu()
        assert hv.nested_svm.nsvm_domctl_set_state(fresh.nsvm, blob) == -22

    def test_vcpu_lifecycle(self):
        hv, vcpu = self._booted()
        nested = hv.nested_svm
        assert nested.nsvm_vcpu_initialise(vcpu.nsvm) == -16
        nested.nsvm_vcpu_destroy(vcpu.nsvm)
        assert nested.nsvm_vcpu_initialise(vcpu.nsvm) == 0
        assert vcpu.nsvm.gif

    def test_hap_walk(self):
        hv, _ = self._booted()
        assert hv.nested_svm.nsvm_hap_walk_l1_p2m(0x1234) == 0x1000
        assert hv.nested_svm.nsvm_hap_walk_l1_p2m(0xF0000000) is None
