"""One shard of a parallel campaign: a full agent + engine pair.

Worker 0 always receives the campaign seed verbatim, which is what makes
a one-worker parallel campaign reproduce the serial ``NecoFuzz.run``
bit for bit; workers 1..N-1 get seeds derived through the same
multiplier :meth:`repro.fuzzer.rng.Rng.fork` uses, with a salt space
disjoint from the campaign's own seed-corpus salts.

Resilience plumbing (all optional, off in the plain fast path):

* ``heartbeat_path`` — the worker stamps its case counter there before
  every case, so the supervisor can tell a hung case from a live one;
* ``checkpoint_path`` — after every sync round the worker pickles its
  complete state (engine, agent, RNG, queue, timeline) atomically, so a
  restarted replacement resumes from the last round instead of redoing
  the whole share;
* an installed :mod:`repro.faults` plan is consulted before each case
  for injected kills and delays.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.analysis.timeline import CoverageTimeline
from repro.core.necofuzz import CampaignResult, NecoFuzz
from repro.fuzzer.crashes import atomic_write_bytes
from repro.parallel.sync import SyncDirectory

#: Salt base for derived worker seeds (disjoint from the small corpus
#: salts NecoFuzz.__post_init__ forks off the campaign RNG).
_WORKER_SALT = 0x9E3779B9


def worker_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-worker engine seed.

    Index 0 is the campaign seed itself (serial == 1-worker contract);
    other indices reuse the ``Rng.fork`` mixing so derived seeds are
    decorrelated from the campaign seed and from each other.
    """
    if index == 0:
        return campaign_seed
    return (campaign_seed * 1_000_003 + _WORKER_SALT + index) & 0xFFFFFFFFFFFFFFFF


@dataclass
class WorkerSpec:
    """Static description of one worker's shard."""

    index: int
    seed: int
    iterations: int  # this worker's share of the campaign budget


@dataclass
class WorkerReport:
    """Everything the orchestrator needs back from one worker."""

    index: int
    share: int
    result: CampaignResult
    #: Per-sample newly covered lines: (local iteration, line delta).
    samples: list[tuple[int, frozenset]]
    #: Snapshot of the worker's virgin map for the merged map.
    virgin_bits: bytes
    #: Order-sensitive digest of the final seed queue (entry data +
    #: provenance flags) — the corpus half of the campaign fingerprint.
    corpus_digest: str = ""
    #: Cases whose wall-clock time exceeded the per-case deadline
    #: (observed post hoc in inline mode, enforced by the supervisor in
    #: process mode).
    deadline_overruns: int = 0


@dataclass
class CampaignWorker:
    """Drives one shard in chunks, sampling like the serial loop does."""

    spec: WorkerSpec
    campaign_kwargs: dict
    sample_every: int = 10
    sync: SyncDirectory | None = None
    #: Supervisor liveness file; stamped before every case.
    heartbeat_path: Path | None = None
    #: Atomic whole-worker snapshot written after every sync round.
    checkpoint_path: Path | None = None
    #: Per-case wall-clock deadline (bookkeeping only in-process; the
    #: supervisor is what actually preempts a hung process worker).
    case_timeout: float | None = None
    done: int = field(default=0, init=False)
    deadline_overruns: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.campaign = NecoFuzz(seed=self.spec.seed, **self.campaign_kwargs)
        label = (f"NecoFuzz/{self.campaign.hypervisor}/"
                 f"{self.campaign.vendor.value}")
        if self.spec.index:
            label += f"[w{self.spec.index}]"
        self.timeline = CoverageTimeline(label, self.campaign.iterations_per_hour)
        self.samples: list[tuple[int, frozenset]] = []
        self._seen_lines: set = set()

    @property
    def finished(self) -> bool:
        return self.done >= self.spec.iterations

    def _heartbeat(self) -> None:
        if self.heartbeat_path is not None:
            try:
                self.heartbeat_path.write_text(f"{self.done}\n")
            except OSError:
                pass  # liveness reporting must never kill the worker

    def run_chunk(self, budget: int) -> int:
        """Run up to *budget* engine steps of the remaining share.

        Sampling follows the exact serial rule (`i % sample_every == 0
        or i == share`) over the worker's local iteration counter, so a
        one-worker campaign produces the serial timeline.
        """
        steps = min(budget, self.spec.iterations - self.done)
        agent = self.campaign.agent
        engine = self.campaign.engine
        plan = faults.active()
        # Tag hook firings with this worker for the chunk only: inline
        # mode interleaves workers in one process, so the tag must not
        # leak to the next worker (or outlive the campaign).
        previous_worker = faults.current_worker()
        faults.set_current_worker(self.spec.index)
        timeout = self.case_timeout
        try:
            for _ in range(steps):
                self.done += 1
                self._heartbeat()
                if plan is not None:
                    spec = plan.take_case_fault(self.spec.index, self.done)
                    if spec is not None:
                        plan.record(spec.kind, self.spec.index,
                                    f"case {self.done}")
                        if spec.kind == "kill_worker":
                            raise faults.WorkerKilled(
                                f"worker {self.spec.index} killed at "
                                f"case {self.done}")
                        time.sleep(spec.seconds)
                started = time.monotonic() if timeout else 0.0
                engine.step()
                if timeout and time.monotonic() - started > timeout:
                    self.deadline_overruns += 1
                i = self.done
                if i % self.sample_every == 0 or i == self.spec.iterations:
                    self.timeline.record(i, agent.coverage_fraction)
                    covered = agent.covered_lines()
                    delta = frozenset(covered - self._seen_lines)
                    self._seen_lines |= delta
                    self.samples.append((i, delta))
        finally:
            faults.set_current_worker(previous_worker)
        return steps

    # --- corpus sync -------------------------------------------------------

    def export(self) -> int:
        """Publish locally found queue entries to the sync directory."""
        if self.sync is None:
            return 0
        return self.sync.export(self.campaign.engine)

    def import_new(self) -> int:
        """Execute partners' new entries; keep the locally novel ones."""
        if self.sync is None:
            return 0
        return self.sync.import_new(self.campaign.engine)

    def run_share(self, sync_every: int) -> "WorkerReport":
        """Self-paced loop for process mode: chunk, publish, import."""
        while not self.finished:
            self.run_chunk(sync_every)
            self.export()
            self.import_new()
            self.save_checkpoint()
        if self.spec.iterations == 0:
            self.export()
        return self.report()

    # --- checkpointing ------------------------------------------------------

    def save_checkpoint(self) -> None:
        """Atomically snapshot this worker's complete state, if enabled."""
        if self.checkpoint_path is not None:
            atomic_write_bytes(self.checkpoint_path, pickle.dumps(self))

    @classmethod
    def load_checkpoint(cls, path: Path) -> "CampaignWorker | None":
        """Restore a worker from its snapshot; ``None`` if unreadable."""
        try:
            worker = pickle.loads(Path(path).read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return worker if isinstance(worker, cls) else None

    # --- results -----------------------------------------------------------

    def corpus_digest(self) -> str:
        """Order-sensitive digest of the current seed queue."""
        digest = hashlib.sha256()
        for entry in self.campaign.engine.queue.entries:
            digest.update(entry.data)
            digest.update(bytes((entry.new_bits, entry.imported)))
            digest.update(entry.found_at.to_bytes(8, "little"))
        return digest.hexdigest()

    def result(self) -> CampaignResult:
        """This worker's own view, shaped exactly like a serial result."""
        agent = self.campaign.agent
        return CampaignResult(
            timeline=self.timeline,
            covered_lines=agent.covered_lines(),
            instrumented_lines=set(agent.tracer.instrumented),
            reports=list(agent.reports.reports),
            engine_stats=self.campaign.engine.stats,
            watchdog_restarts=agent.watchdog.restarts)

    def report(self) -> WorkerReport:
        return WorkerReport(
            index=self.spec.index,
            share=self.spec.iterations,
            result=self.result(),
            samples=list(self.samples),
            virgin_bits=bytes(self.campaign.engine.virgin.bits),
            corpus_digest=self.corpus_digest(),
            deadline_overruns=self.deadline_overruns)
