"""Shared infrastructure for the simulated L0 hypervisors.

Each hypervisor model (KVM, Xen, VirtualBox) exposes the same guest-facing
surface the real systems expose to an L1 hypervisor: execution of
hardware-assisted virtualization instructions plus the ordinary
exit-triggering instructions of Table 1. Anomalies surface through the
same channels the paper's agent monitors — sanitizer events (KASAN/UBSAN
analogues), assertion failures, kernel-log messages, and host crashes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.arch.cpuid import Vendor


class SanitizerKind(Enum):
    """Detection channels from the paper's Table 6."""

    UBSAN = "UBSAN"
    KASAN = "KASAN"
    ASSERTION = "Assertion"
    WARN = "Warning"


@dataclass(frozen=True)
class SanitizerEvent:
    """One sanitizer/assertion report from inside the hypervisor."""

    kind: SanitizerKind
    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.kind.value} at {self.location}: {self.message}"


class VmCrash(Exception):
    """The guest VM terminated unexpectedly (paper's "VM Crash" channel).

    Distinct from :class:`repro.arch.exceptions.HostCrash`: the host
    survives, but the fuzz-harness VM is gone and the agent records a
    potential vulnerability.
    """


@dataclass
class VcpuConfig:
    """A resolved vCPU configuration (output of the vCPU configurator)."""

    vendor: Vendor
    features: dict[str, bool]

    def enabled(self, name: str) -> bool:
        """Whether feature *name* is on (missing names default to off)."""
        return self.features.get(name, False)

    @classmethod
    def default(cls, vendor: Vendor) -> "VcpuConfig":
        """The stock configuration for *vendor*."""
        from repro.arch.cpuid import default_feature_map

        return cls(vendor, default_feature_map(vendor))


class KernelLog:
    """The hypervisor's diagnostic log, monitored by the agent.

    Mirrors dmesg/xl-dmesg: sanitizer splats and warnings are appended as
    text so the agent's log-pattern monitors (paper §4.5) have something
    to grep.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    def write(self, message: str) -> None:
        """Append one line."""
        self.lines.append(message)

    def grep(self, needle: str) -> list[str]:
        """Lines containing *needle*."""
        return [line for line in self.lines if needle in line]

    def clear(self) -> None:
        """Drop all lines."""
        self.lines = []


class L0Hypervisor(ABC):
    """Base class for the simulated host hypervisors (the fuzz targets)."""

    #: Human-readable name ("kvm", "xen", "virtualbox").
    name: str = "l0"

    def __init__(self, config: VcpuConfig) -> None:
        self.config = config
        self.log = KernelLog()
        self.sanitizer_events: list[SanitizerEvent] = []
        self.crashed = False

    # --- anomaly channels ------------------------------------------------------

    def report_sanitizer(self, kind: SanitizerKind, location: str,
                         message: str) -> None:
        """Record a sanitizer event and mirror it to the kernel log."""
        event = SanitizerEvent(kind, location, message)
        self.sanitizer_events.append(event)
        self.log.write(str(event))

    def bug_assert(self, condition: bool, location: str, message: str) -> None:
        """A kernel ASSERT()/BUG_ON(): failing records an assertion event."""
        if not condition:
            self.report_sanitizer(SanitizerKind.ASSERTION, location, message)

    # --- guest-facing surface ------------------------------------------------------

    @abstractmethod
    def create_vcpu(self) -> Any:
        """Create one virtual CPU for the (L1) guest."""

    @abstractmethod
    def execute(self, vcpu: Any, instruction: "GuestInstruction") -> "ExecResult":
        """Execute one guest instruction, emulating any intercept."""

    def reset(self) -> None:
        """Watchdog restart: clear crash state and logs (paper §3.2)."""
        self.log.clear()
        self.sanitizer_events = []
        self.crashed = False


class InstructionClass(Enum):
    """Table-1 instruction classes."""

    VMX = "vmx"                  # vmxon, vmclear, vmlaunch, ... / vmrun, ...
    PRIVILEGED_REGISTER = "reg"  # mov cr*, mov dr*
    IO_MSR = "io_msr"            # in/out, rdmsr, wrmsr
    MISC = "misc"                # cpuid, hlt, rdtsc, pause, rdrand, ...
    MEMORY = "memory"            # direct guest-memory writes (VMCB/MSR areas)


@dataclass(frozen=True)
class GuestInstruction:
    """One instruction the fuzz-harness VM executes in L1 or L2 context.

    ``mnemonic`` selects the handler; ``operands`` carries whatever that
    instruction needs (addresses, field encodings, register values).
    ``level`` is 1 for the L1 hypervisor context and 2 for the L2 guest.
    """

    mnemonic: str
    operands: dict[str, int] = field(default_factory=dict)
    level: int = 1

    def op(self, name: str, default: int = 0) -> int:
        """Read one operand with a default."""
        return self.operands.get(name, default)

    def __str__(self) -> str:
        ops = ", ".join(f"{k}={v:#x}" for k, v in self.operands.items())
        return f"L{self.level}:{self.mnemonic}({ops})"


@dataclass
class ExecResult:
    """Outcome of executing one guest instruction."""

    ok: bool
    detail: str = ""
    value: int | None = None
    #: The guest level that is now executing (switches on nested entry/exit).
    level: int = 1
    exit_reason: int | None = None

    @classmethod
    def success(cls, detail: str = "", *, value: int | None = None,
                level: int = 1, exit_reason: int | None = None) -> "ExecResult":
        """Construct a successful result."""
        return cls(True, detail, value, level, exit_reason)

    @classmethod
    def fault(cls, detail: str, *, level: int = 1) -> "ExecResult":
        """Construct a faulting (#UD/#GP-style) result."""
        return cls(False, detail, level=level)
