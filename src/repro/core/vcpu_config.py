"""The vCPU configurator core (paper §3.5/§4.4).

"The vCPU configuration is generally represented as a bit array, where
each bit indicates whether a specific CPU feature is enabled or
disabled." The core is hypervisor-independent: it turns configuration
bits from the fuzzing input into a feature map over the universe in
:mod:`repro.arch.cpuid`; per-hypervisor adapters
(:mod:`repro.core.adapters`) translate the map into module parameters or
command-line options.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor, default_feature_map, features_for
from repro.fuzzer.input import FuzzInput
from repro.hypervisors.base import VcpuConfig


@dataclass
class VcpuConfigurator:
    """Hypervisor-independent configuration generator."""

    vendor: Vendor
    #: Ablation switch: disabled -> always the stock default config.
    enabled: bool = True
    #: Features that must keep their defaults (e.g. `nested` stays on —
    #: turning it off would fuzz nothing).
    pinned: frozenset[str] = frozenset({"nested"})

    def generate(self, fuzz_input: FuzzInput) -> VcpuConfig:
        """Derive a vCPU configuration from the input's config region."""
        features = default_feature_map(self.vendor)
        if not self.enabled:
            return VcpuConfig(self.vendor, features)
        cursor = fuzz_input.config_cursor()
        bits = int.from_bytes(cursor.take_bytes(8), "little")
        for position, feature in enumerate(features_for(self.vendor)):
            if feature.name in self.pinned:
                continue
            features[feature.name] = bool(bits >> position & 1)
        return VcpuConfig(self.vendor, features)

    def bit_width(self) -> int:
        """Number of configuration bits in use (for documentation)."""
        return len(features_for(self.vendor))
