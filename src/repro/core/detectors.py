"""Anomaly detection: sanitizers, log monitoring, and the watchdog.

Mirrors §4.5: "the agent uses Kernel Address Sanitizer (KASAN) and
Undefined Behavior Sanitizer (UBSAN), and monitors kernel log messages
for relevant anomalies"; for Xen "it monitors hypervisor-specific
diagnostic logs for assertion failures, critical warnings, or other
signs of unexpected hypervisor behavior". Host hangs are caught by the
watchdog (§3.2), which restarts the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.hypervisors.base import L0Hypervisor, SanitizerKind


class DetectionMethod(Enum):
    """Table-6 detection channels."""

    UBSAN = "UBSAN"
    KASAN = "KASAN"
    ASSERTION = "Assertion"
    VM_CRASH = "VM Crash"
    HOST_CRASH = "Host Crash"
    LOG_PATTERN = "Kernel Log"


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly, as the agent records it."""

    method: DetectionMethod
    location: str
    message: str

    def signature(self) -> str:
        """Deduplication key: method + location."""
        return f"{self.method.value}@{self.location}"

    def __str__(self) -> str:
        return f"[{self.method.value}] {self.location}: {self.message}"


#: Log substrings that indicate trouble even without a sanitizer splat.
LOG_PATTERNS: tuple[tuple[str, DetectionMethod], ...] = (
    ("general protection fault", DetectionMethod.LOG_PATTERN),
    ("BUG:", DetectionMethod.LOG_PATTERN),
    ("WARNING:", DetectionMethod.LOG_PATTERN),
    ("Assertion", DetectionMethod.ASSERTION),
    ("inconsistent", DetectionMethod.LOG_PATTERN),
)

_SANITIZER_TO_METHOD = {
    SanitizerKind.UBSAN: DetectionMethod.UBSAN,
    SanitizerKind.KASAN: DetectionMethod.KASAN,
    SanitizerKind.ASSERTION: DetectionMethod.ASSERTION,
    SanitizerKind.WARN: DetectionMethod.LOG_PATTERN,
}

#: WARN-level events that are expected noise rather than findings
#: (hardware rejecting a fuzzed vmcs02 is business as usual).
_BENIGN_WARN_LOCATIONS = frozenset({
    "nested_vmx_run", "nested_svm_vmrun", "virtual_vmentry",
})


@dataclass
class AnomalyDetector:
    """Collects anomalies from one hypervisor after each test case."""

    seen_signatures: set[str] = field(default_factory=set)

    def scan(self, hv: L0Hypervisor) -> list[Anomaly]:
        """Harvest sanitizer events and log patterns from *hv*."""
        anomalies: list[Anomaly] = []
        for event in hv.sanitizer_events:
            if (event.kind is SanitizerKind.WARN
                    and event.location in _BENIGN_WARN_LOCATIONS):
                continue
            anomalies.append(Anomaly(_SANITIZER_TO_METHOD[event.kind],
                                     event.location, event.message))
        # Sanitizer events are mirrored verbatim into the kernel log;
        # skip those lines so each event is reported once.
        reported = {a.message for a in anomalies}
        reported |= {str(event) for event in hv.sanitizer_events}
        for line in hv.log.lines:
            for pattern, method in LOG_PATTERNS:
                if pattern in line and line not in reported:
                    anomalies.append(Anomaly(method, hv.name, line))
                    reported.add(line)
                    break
        return anomalies

    def is_new(self, anomaly: Anomaly) -> bool:
        """True the first time a (method, location) signature appears."""
        signature = anomaly.signature()
        if signature in self.seen_signatures:
            return False
        self.seen_signatures.add(signature)
        return True


@dataclass
class Watchdog:
    """The hardware-watchdog + in-hypervisor-agent pair of §3.2.

    On a host crash or hang it records the event and restarts the L0
    hypervisor so the campaign continues; "since crashes are rare, the
    overhead of restarting has minimal impact on fuzzing efficiency".
    """

    restarts: int = 0

    def handle_host_crash(self, hv: L0Hypervisor, message: str) -> Anomaly:
        """Record the crash and bring the hypervisor back."""
        self.restarts += 1
        anomaly = Anomaly(DetectionMethod.HOST_CRASH, hv.name, message)
        hv.reset()
        return anomaly

    def handle_vm_crash(self, hv: L0Hypervisor, message: str) -> Anomaly:
        """The guest died unexpectedly; the host survives."""
        return Anomaly(DetectionMethod.VM_CRASH, hv.name, message)
