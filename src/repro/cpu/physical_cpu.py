"""Simulated physical CPU: VMX operation state machine and instruction set.

This model plays the role the bare-metal processor plays in the paper:

* it is the substrate the L0 hypervisor runs on (VMCS01/VMCS02 entries go
  through the same checks an i9-12900K would apply), and
* it is the *oracle* the VM state validator consults — "the validator
  sets the generated VMCS on the actual CPU, attempts a VM entry, and
  compares the resulting VMCS state with the expected one" (§3.4).

The instruction semantics follow SDM Chapter 30 (vmxon/vmclear/vmptrld/
vmread/vmwrite/vmlaunch/vmresume/vmxoff), including the three-way result
convention: VMsucceed, VMfailInvalid, and VMfailValid(error-number).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro import perf
from repro.arch.bits import is_aligned
from repro.arch.msr import MsrEntry
from repro.cpu.entry_checks import (
    CheckStage,
    IncrementalChecker,
    Violation,
    check_all,
)
from repro.cpu.quirks import SilentFixup, apply_entry_fixups
from repro.vmx import fields as F
from repro.vmx.exit_reasons import ENTRY_FAILURE_BIT, ExitReason, VmInstructionError
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities
from repro.vmx.vmcs import Vmcs

PAGE_SIZE = 4096


class VmxResultKind(Enum):
    """Outcome classes of a VMX instruction (SDM 30.2)."""

    SUCCEED = "VMsucceed"
    FAIL_INVALID = "VMfailInvalid"
    FAIL_VALID = "VMfailValid"


@dataclass(frozen=True)
class VmxResult:
    """Result of one VMX instruction."""

    kind: VmxResultKind
    error: VmInstructionError | None = None
    value: int | None = None  # vmread data

    @property
    def ok(self) -> bool:
        """True for VMsucceed."""
        return self.kind is VmxResultKind.SUCCEED

    @classmethod
    def succeed(cls, value: int | None = None) -> "VmxResult":
        """Construct a VMsucceed result."""
        return cls(VmxResultKind.SUCCEED, value=value)

    @classmethod
    def fail_invalid(cls) -> "VmxResult":
        """Construct a VMfailInvalid result."""
        return cls(VmxResultKind.FAIL_INVALID)

    @classmethod
    def fail_valid(cls, error: VmInstructionError) -> "VmxResult":
        """Construct a VMfailValid result with an error number."""
        return cls(VmxResultKind.FAIL_VALID, error=error)


@dataclass
class EntryOutcome:
    """Result of attempting vmlaunch/vmresume."""

    entered: bool
    vmx_result: VmxResult
    exit_reason: int | None = None  # reason-with-flags on failed entry
    violations: list[Violation] = field(default_factory=list)
    fixups: list[SilentFixup] = field(default_factory=list)

    @property
    def failed_entry(self) -> bool:
        """True for a VM entry that failed with an exit (reason bit 31)."""
        return self.exit_reason is not None


class VmxCpu:
    """One logical processor with Intel VT-x.

    VMCS memory is modelled as a sparse map of page-aligned physical
    addresses to :class:`Vmcs` objects; a pointer "in memory" that was
    never vmcleared simply has no revision identifier yet.
    """

    def __init__(self, caps: VmxCapabilities | None = None,
                 checker: IncrementalChecker | None = None) -> None:
        self.caps = caps or default_capabilities()
        # Entry checks are the dominant per-entry cost; the incremental
        # checker reuses per-unit results memoized on the VMCS itself,
        # so it may be shared between CPUs with identical capabilities
        # (the hardware oracle does this across attempts).
        self.checker = checker or IncrementalChecker(self.caps)
        self.vmx_on = False
        self.vmxon_region: int | None = None
        self.current_vmcs_ptr: int | None = None
        self.memory: dict[int, Vmcs] = {}
        self.in_guest = False

    # --- helpers ------------------------------------------------------------

    def _pointer_ok(self, addr: int) -> bool:
        return is_aligned(addr, PAGE_SIZE) and addr != 0 and addr < (1 << 46)

    @property
    def current_vmcs(self) -> Vmcs | None:
        """The VMCS selected by the current-VMCS pointer, if any."""
        if self.current_vmcs_ptr is None:
            return None
        return self.memory.get(self.current_vmcs_ptr)

    def install_vmcs(self, addr: int, vmcs: Vmcs) -> None:
        """Place a VMCS image at a physical address (test/harness helper)."""
        self.memory[addr] = vmcs

    # --- VMX instructions -----------------------------------------------------

    def vmxon(self, region: int) -> VmxResult:
        """Enter VMX root operation."""
        if self.vmx_on:
            return VmxResult.fail_valid(VmInstructionError.VMXON_IN_VMX_ROOT)
        if not self._pointer_ok(region):
            return VmxResult.fail_invalid()
        self.vmx_on = True
        self.vmxon_region = region
        self.current_vmcs_ptr = None
        return VmxResult.succeed()

    def vmxoff(self) -> VmxResult:
        """Leave VMX operation."""
        if not self.vmx_on:
            return VmxResult.fail_invalid()
        self.vmx_on = False
        self.vmxon_region = None
        self.current_vmcs_ptr = None
        return VmxResult.succeed()

    def vmclear(self, addr: int) -> VmxResult:
        """Initialise/flush the VMCS at *addr* and mark it clear."""
        if not self.vmx_on:
            return VmxResult.fail_invalid()
        if not self._pointer_ok(addr):
            return VmxResult.fail_valid(VmInstructionError.VMCLEAR_INVALID_ADDRESS)
        if addr == self.vmxon_region:
            return VmxResult.fail_valid(VmInstructionError.VMCLEAR_VMXON_POINTER)
        vmcs = self.memory.setdefault(addr, Vmcs(self.caps.vmcs_revision_id))
        vmcs.clear()
        if self.current_vmcs_ptr == addr:
            self.current_vmcs_ptr = None
        return VmxResult.succeed()

    def vmptrld(self, addr: int) -> VmxResult:
        """Make the VMCS at *addr* current."""
        if not self.vmx_on:
            return VmxResult.fail_invalid()
        if not self._pointer_ok(addr):
            return VmxResult.fail_valid(VmInstructionError.VMPTRLD_INVALID_ADDRESS)
        if addr == self.vmxon_region:
            return VmxResult.fail_valid(VmInstructionError.VMPTRLD_VMXON_POINTER)
        vmcs = self.memory.get(addr)
        if vmcs is None or vmcs.revision_id != self.caps.vmcs_revision_id:
            return VmxResult.fail_valid(
                VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID)
        self.current_vmcs_ptr = addr
        return VmxResult.succeed()

    def vmptrst(self) -> VmxResult:
        """Store the current-VMCS pointer."""
        if not self.vmx_on:
            return VmxResult.fail_invalid()
        ptr = self.current_vmcs_ptr if self.current_vmcs_ptr is not None else (1 << 64) - 1
        return VmxResult.succeed(value=ptr)

    def vmread(self, encoding: int) -> VmxResult:
        """Read a field of the current VMCS."""
        vmcs = self.current_vmcs
        if not self.vmx_on or vmcs is None:
            return VmxResult.fail_invalid()
        try:
            return VmxResult.succeed(value=vmcs.read(encoding))
        except KeyError:
            return VmxResult.fail_valid(
                VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)

    def vmwrite(self, encoding: int, value: int) -> VmxResult:
        """Write a field of the current VMCS."""
        vmcs = self.current_vmcs
        if not self.vmx_on or vmcs is None:
            return VmxResult.fail_invalid()
        spec = F.SPEC_BY_ENCODING.get(encoding)
        if spec is None:
            return VmxResult.fail_valid(
                VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        if spec.group is F.FieldGroup.READ_ONLY:
            return VmxResult.fail_valid(
                VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)
        vmcs.write(encoding, value)
        return VmxResult.succeed()

    # --- VM entry -------------------------------------------------------------

    def vmlaunch(self, msr_entries: list[MsrEntry] | None = None) -> EntryOutcome:
        """Attempt a VM entry with launch semantics (VMCS must be clear)."""
        return self._vm_entry(launch=True, msr_entries=msr_entries)

    def vmresume(self, msr_entries: list[MsrEntry] | None = None) -> EntryOutcome:
        """Attempt a VM entry with resume semantics (VMCS must be launched)."""
        return self._vm_entry(launch=False, msr_entries=msr_entries)

    def _vm_entry(self, *, launch: bool,
                  msr_entries: list[MsrEntry] | None) -> EntryOutcome:
        vmcs = self.current_vmcs
        if not self.vmx_on or vmcs is None:
            return EntryOutcome(False, VmxResult.fail_invalid())
        if launch and vmcs.launched:
            return EntryOutcome(False, VmxResult.fail_valid(
                VmInstructionError.VMLAUNCH_NONCLEAR_VMCS))
        if not launch and not vmcs.launched:
            return EntryOutcome(False, VmxResult.fail_valid(
                VmInstructionError.VMRESUME_NONLAUNCHED_VMCS))

        if msr_entries is None:
            msr_entries = []
        if perf.incremental_enabled():
            violations = self.checker.check_all(vmcs, msr_entries)
        else:
            violations = check_all(vmcs, self.caps, msr_entries)
        if violations:
            stage = violations[0].stage
            if stage is CheckStage.CONTROLS:
                return EntryOutcome(False, VmxResult.fail_valid(
                    VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS),
                    violations=violations)
            if stage is CheckStage.HOST_STATE:
                return EntryOutcome(False, VmxResult.fail_valid(
                    VmInstructionError.ENTRY_INVALID_HOST_STATE),
                    violations=violations)
            if stage is CheckStage.GUEST_STATE:
                reason = int(ExitReason.INVALID_GUEST_STATE) | ENTRY_FAILURE_BIT
            else:
                reason = int(ExitReason.MSR_LOAD_FAIL) | ENTRY_FAILURE_BIT
            vmcs.write(F.VM_EXIT_REASON, reason)
            # A failed entry with an exit does not change launch state.
            return EntryOutcome(False, VmxResult.succeed(),
                                exit_reason=reason, violations=violations)

        fixups = apply_entry_fixups(vmcs)
        if launch:
            vmcs.mark_launched()
        self.in_guest = True
        return EntryOutcome(True, VmxResult.succeed(), fixups=fixups)

    def vm_exit(self, reason: ExitReason, *, qualification: int = 0,
                guest_rip: int | None = None) -> None:
        """Record a VM exit into the current VMCS (hardware write-back)."""
        vmcs = self.current_vmcs
        if vmcs is None:
            raise RuntimeError("VM exit with no current VMCS")
        vmcs.write(F.VM_EXIT_REASON, int(reason))
        vmcs.write(F.EXIT_QUALIFICATION, qualification)
        if guest_rip is not None:
            vmcs.write(F.GUEST_RIP, guest_rip)
        self.in_guest = False
