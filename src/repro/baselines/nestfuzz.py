"""NestFuzz baseline (Teng, Brown University MSc thesis, 2020).

The paper's related work (§7) identifies NestFuzz as the only prior
attempt at nested-virtualization fuzzing: "an early-stage work that
issues random VMX instructions without addressing key challenges such as
VM state validity, initialization sequences, or execution harnessing,
and it lacks evaluation of code coverage or vulnerability detection".

This model is exactly that: uniformly random VMX/SVM instructions with
uniformly random operands, no templates, no golden state, no rounding.
It exists to quantify how far "just issue the instructions" gets — the
motivation for NecoFuzz's three components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.fuzzer.rng import Rng
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor

_INTEL_OPS = ("vmxon", "vmxoff", "vmclear", "vmptrld", "vmptrst", "vmread",
              "vmwrite", "vmlaunch", "vmresume", "invept", "invvpid", "vmcall")
_AMD_OPS = ("vmrun", "vmload", "vmsave", "stgi", "clgi", "invlpga", "skinit",
            "vmmcall")


@dataclass
class NestFuzzCampaign:
    """Random VMX/SVM instruction streams against the KVM model."""

    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    instructions_per_case: int = 48
    iterations_per_hour: float = 10.0

    def __post_init__(self) -> None:
        self.rng = Rng(self.seed)
        self.harness = BaselineHarness("NestFuzz", self.vendor, KvmHypervisor)
        self.config = VcpuConfig.default(self.vendor)
        self.timeline = CoverageTimeline(f"NestFuzz/{self.vendor.value}",
                                         self.iterations_per_hour)

    def run(self, iterations: int, *, sample_every: int = 10) -> CampaignResult:
        """Run *iterations* random instruction streams."""
        ops = _INTEL_OPS if self.vendor is Vendor.INTEL else _AMD_OPS
        for i in range(1, iterations + 1):
            rng = self.rng.fork(self.rng.u32())

            def case(hv: KvmHypervisor) -> None:
                vcpu = hv.create_vcpu()
                for _ in range(self.instructions_per_case):
                    mnemonic = ops[rng.below(len(ops))]
                    hv.execute(vcpu, GuestInstruction(mnemonic, {
                        "addr": rng.u32(),
                        "field": rng.u16(),
                        "value": rng.u64(),
                        "type": rng.below(8),
                        "vpid": rng.u16(),
                        "eptp": rng.u64(),
                        "asid": rng.below(16),
                    }))

            self.harness.run_case(KvmHypervisor(self.config), case)
            if i % sample_every == 0 or i == iterations:
                self.timeline.record(i, self.harness.coverage_fraction)
        return self.harness.result(self.timeline)
