"""VM-exit reason codes (SDM Appendix C) and VM-instruction errors."""

from __future__ import annotations

from enum import IntEnum

from repro.arch.bits import bit


class ExitReason(IntEnum):
    """Basic exit reasons — the low 16 bits of the VM-exit reason field."""

    EXCEPTION_NMI = 0
    EXTERNAL_INTERRUPT = 1
    TRIPLE_FAULT = 2
    INIT_SIGNAL = 3
    SIPI = 4
    IO_SMI = 5
    OTHER_SMI = 6
    INTERRUPT_WINDOW = 7
    NMI_WINDOW = 8
    TASK_SWITCH = 9
    CPUID = 10
    GETSEC = 11
    HLT = 12
    INVD = 13
    INVLPG = 14
    RDPMC = 15
    RDTSC = 16
    RSM = 17
    VMCALL = 18
    VMCLEAR = 19
    VMLAUNCH = 20
    VMPTRLD = 21
    VMPTRST = 22
    VMREAD = 23
    VMRESUME = 24
    VMWRITE = 25
    VMXOFF = 26
    VMXON = 27
    CR_ACCESS = 28
    DR_ACCESS = 29
    IO_INSTRUCTION = 30
    MSR_READ = 31
    MSR_WRITE = 32
    INVALID_GUEST_STATE = 33
    MSR_LOAD_FAIL = 34
    MWAIT_INSTRUCTION = 36
    MONITOR_TRAP_FLAG = 37
    MONITOR_INSTRUCTION = 39
    PAUSE_INSTRUCTION = 40
    MCE_DURING_VMENTRY = 41
    TPR_BELOW_THRESHOLD = 43
    APIC_ACCESS = 44
    VIRTUALIZED_EOI = 45
    GDTR_IDTR_ACCESS = 46
    LDTR_TR_ACCESS = 47
    EPT_VIOLATION = 48
    EPT_MISCONFIG = 49
    INVEPT = 50
    RDTSCP = 51
    PREEMPTION_TIMER = 52
    INVVPID = 53
    WBINVD = 54
    XSETBV = 55
    APIC_WRITE = 56
    RDRAND = 57
    INVPCID = 58
    VMFUNC = 59
    ENCLS = 60
    RDSEED = 61
    PML_FULL = 62
    XSAVES = 63
    XRSTORS = 64


#: Bit 31 of the exit-reason field: VM entry failed.
ENTRY_FAILURE_BIT = bit(31)

#: Exit reasons produced by VMX instructions executed in the guest —
#: the set the L0 hypervisor's nested dispatcher must route to
#: nested-virtualization emulation.
VMX_INSTRUCTION_EXITS = frozenset({
    ExitReason.VMCLEAR, ExitReason.VMLAUNCH, ExitReason.VMPTRLD,
    ExitReason.VMPTRST, ExitReason.VMREAD, ExitReason.VMRESUME,
    ExitReason.VMWRITE, ExitReason.VMXOFF, ExitReason.VMXON,
    ExitReason.INVEPT, ExitReason.INVVPID, ExitReason.VMFUNC,
})


class VmInstructionError(IntEnum):
    """VM-instruction error numbers (SDM 30.4)."""

    VMCALL_IN_VMX_ROOT = 1
    VMCLEAR_INVALID_ADDRESS = 2
    VMCLEAR_VMXON_POINTER = 3
    VMLAUNCH_NONCLEAR_VMCS = 4
    VMRESUME_NONLAUNCHED_VMCS = 5
    VMRESUME_AFTER_VMXOFF = 6
    ENTRY_INVALID_CONTROL_FIELDS = 7
    ENTRY_INVALID_HOST_STATE = 8
    VMPTRLD_INVALID_ADDRESS = 9
    VMPTRLD_VMXON_POINTER = 10
    VMPTRLD_INCORRECT_REVISION_ID = 11
    UNSUPPORTED_VMCS_COMPONENT = 12
    VMWRITE_READ_ONLY_COMPONENT = 13
    VMXON_IN_VMX_ROOT = 15
    ENTRY_INVALID_EXECUTIVE_VMCS_PTR = 16
    ENTRY_NONLAUNCHED_EXECUTIVE_VMCS = 17
    ENTRY_EXECUTIVE_VMCS_PTR_NOT_VMXON = 18
    VMCALL_NONCLEAR_VMCS = 19
    VMCALL_INVALID_EXIT_CONTROL = 20
    VMCALL_INCORRECT_MSEG_REVISION = 22
    VMXOFF_UNDER_DUAL_MONITOR = 23
    VMCALL_INVALID_SMM_MONITOR = 24
    ENTRY_INVALID_VM_EXECUTION_CONTROL = 25
    ENTRY_EVENTS_BLOCKED_BY_MOV_SS = 26
    INVALID_OPERAND_TO_INVEPT_INVVPID = 28


class EntryFailReason(IntEnum):
    """Exit reasons reported for a failed VM entry (with bit 31 set)."""

    INVALID_GUEST_STATE = ExitReason.INVALID_GUEST_STATE
    MSR_LOAD_FAIL = ExitReason.MSR_LOAD_FAIL
    MCE = ExitReason.MCE_DURING_VMENTRY
