"""VMCS field encodings, widths, and layout.

The paper's Figure-5 experiment is defined over "an 8,000-bit VM state
across 165 fields with predefined widths"; this module is that layout.
Field encodings follow the Intel SDM Vol. 3 Appendix B scheme: bit 0 is
the access type (high half of a 64-bit field), bits 9:1 the index, bits
11:10 the type (control / read-only data / guest state / host state), and
bits 14:13 the width (16 / 64 / 32 / natural).

We model natural-width fields as 64-bit, as every 64-bit-capable CPU does.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FieldGroup(Enum):
    """VMCS field type, encoded in encoding bits 11:10."""

    CONTROL = 0
    READ_ONLY = 1
    GUEST = 2
    HOST = 3


class FieldWidth(Enum):
    """VMCS field width class, encoded in encoding bits 14:13."""

    W16 = 0
    W64 = 1
    W32 = 2
    NATURAL = 3

    @property
    def bits(self) -> int:
        """Effective storage width in bits (natural == 64)."""
        # Plain-int keyed table: this property sits on the per-vmwrite
        # hot path, where hashing enum members (a Python-level __hash__)
        # dominated the tracer-visible cost.
        return _WIDTH_BITS[self._value_]


#: Storage width by FieldWidth value (W16, W64, W32, NATURAL).
_WIDTH_BITS = {0: 16, 1: 64, 2: 32, 3: 64}


@dataclass(frozen=True)
class FieldSpec:
    """Static description of one VMCS field."""

    encoding: int
    name: str
    group: FieldGroup
    width: FieldWidth

    @property
    def bits(self) -> int:
        """Effective storage width in bits."""
        return _WIDTH_BITS[self.width._value_]


def _enc(width: FieldWidth, group: FieldGroup, index: int, *, high: bool = False) -> int:
    """Build a VMCS field encoding from its components."""
    return (
        (1 if high else 0)
        | (index << 1)
        | (group.value << 10)
        | (width.value << 13)
    )


_SPECS: list[FieldSpec] = []


def _f(width: FieldWidth, group: FieldGroup, index: int, name: str) -> int:
    """Register a field and return its encoding (module-definition helper)."""
    encoding = _enc(width, group, index)
    _SPECS.append(FieldSpec(encoding, name, group, width))
    return encoding


# --- 16-bit control fields -------------------------------------------------
VIRTUAL_PROCESSOR_ID = _f(FieldWidth.W16, FieldGroup.CONTROL, 0, "virtual_processor_id")
POSTED_INTR_NV = _f(FieldWidth.W16, FieldGroup.CONTROL, 1, "posted_intr_notification_vector")
EPTP_INDEX = _f(FieldWidth.W16, FieldGroup.CONTROL, 2, "eptp_index")

# --- 16-bit guest-state fields ----------------------------------------------
GUEST_ES_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 0, "guest_es_selector")
GUEST_CS_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 1, "guest_cs_selector")
GUEST_SS_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 2, "guest_ss_selector")
GUEST_DS_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 3, "guest_ds_selector")
GUEST_FS_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 4, "guest_fs_selector")
GUEST_GS_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 5, "guest_gs_selector")
GUEST_LDTR_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 6, "guest_ldtr_selector")
GUEST_TR_SELECTOR = _f(FieldWidth.W16, FieldGroup.GUEST, 7, "guest_tr_selector")
GUEST_INTR_STATUS = _f(FieldWidth.W16, FieldGroup.GUEST, 8, "guest_interrupt_status")
GUEST_PML_INDEX = _f(FieldWidth.W16, FieldGroup.GUEST, 9, "guest_pml_index")

# --- 16-bit host-state fields -----------------------------------------------
HOST_ES_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 0, "host_es_selector")
HOST_CS_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 1, "host_cs_selector")
HOST_SS_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 2, "host_ss_selector")
HOST_DS_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 3, "host_ds_selector")
HOST_FS_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 4, "host_fs_selector")
HOST_GS_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 5, "host_gs_selector")
HOST_TR_SELECTOR = _f(FieldWidth.W16, FieldGroup.HOST, 6, "host_tr_selector")

# --- 64-bit control fields --------------------------------------------------
IO_BITMAP_A = _f(FieldWidth.W64, FieldGroup.CONTROL, 0, "io_bitmap_a")
IO_BITMAP_B = _f(FieldWidth.W64, FieldGroup.CONTROL, 1, "io_bitmap_b")
MSR_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 2, "msr_bitmap")
VM_EXIT_MSR_STORE_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 3, "vm_exit_msr_store_addr")
VM_EXIT_MSR_LOAD_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 4, "vm_exit_msr_load_addr")
VM_ENTRY_MSR_LOAD_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 5, "vm_entry_msr_load_addr")
EXECUTIVE_VMCS_POINTER = _f(FieldWidth.W64, FieldGroup.CONTROL, 6, "executive_vmcs_pointer")
PML_ADDRESS = _f(FieldWidth.W64, FieldGroup.CONTROL, 7, "pml_address")
TSC_OFFSET = _f(FieldWidth.W64, FieldGroup.CONTROL, 8, "tsc_offset")
VIRTUAL_APIC_PAGE_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 9, "virtual_apic_page_addr")
APIC_ACCESS_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 10, "apic_access_addr")
POSTED_INTR_DESC_ADDR = _f(FieldWidth.W64, FieldGroup.CONTROL, 11, "posted_intr_desc_addr")
VM_FUNCTION_CONTROL = _f(FieldWidth.W64, FieldGroup.CONTROL, 12, "vm_function_control")
EPT_POINTER = _f(FieldWidth.W64, FieldGroup.CONTROL, 13, "ept_pointer")
EOI_EXIT_BITMAP0 = _f(FieldWidth.W64, FieldGroup.CONTROL, 14, "eoi_exit_bitmap0")
EOI_EXIT_BITMAP1 = _f(FieldWidth.W64, FieldGroup.CONTROL, 15, "eoi_exit_bitmap1")
EOI_EXIT_BITMAP2 = _f(FieldWidth.W64, FieldGroup.CONTROL, 16, "eoi_exit_bitmap2")
EOI_EXIT_BITMAP3 = _f(FieldWidth.W64, FieldGroup.CONTROL, 17, "eoi_exit_bitmap3")
EPTP_LIST_ADDRESS = _f(FieldWidth.W64, FieldGroup.CONTROL, 18, "eptp_list_address")
VMREAD_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 19, "vmread_bitmap")
VMWRITE_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 20, "vmwrite_bitmap")
VE_INFORMATION_ADDRESS = _f(FieldWidth.W64, FieldGroup.CONTROL, 21, "virtualization_exception_info_addr")
XSS_EXIT_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 22, "xss_exit_bitmap")
ENCLS_EXITING_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 23, "encls_exiting_bitmap")
SUB_PAGE_PERMISSION_PTR = _f(FieldWidth.W64, FieldGroup.CONTROL, 24, "sub_page_permission_ptr")
TSC_MULTIPLIER = _f(FieldWidth.W64, FieldGroup.CONTROL, 25, "tsc_multiplier")
TERTIARY_VM_EXEC_CONTROL = _f(FieldWidth.W64, FieldGroup.CONTROL, 26, "tertiary_vm_exec_control")
ENCLV_EXITING_BITMAP = _f(FieldWidth.W64, FieldGroup.CONTROL, 27, "enclv_exiting_bitmap")
HLAT_POINTER = _f(FieldWidth.W64, FieldGroup.CONTROL, 28, "hlat_pointer")

# --- 64-bit read-only data fields --------------------------------------------
GUEST_PHYSICAL_ADDRESS = _f(FieldWidth.W64, FieldGroup.READ_ONLY, 0, "guest_physical_address")

# --- 64-bit guest-state fields ------------------------------------------------
VMCS_LINK_POINTER = _f(FieldWidth.W64, FieldGroup.GUEST, 0, "vmcs_link_pointer")
GUEST_IA32_DEBUGCTL = _f(FieldWidth.W64, FieldGroup.GUEST, 1, "guest_ia32_debugctl")
GUEST_IA32_PAT = _f(FieldWidth.W64, FieldGroup.GUEST, 2, "guest_ia32_pat")
GUEST_IA32_EFER = _f(FieldWidth.W64, FieldGroup.GUEST, 3, "guest_ia32_efer")
GUEST_IA32_PERF_GLOBAL_CTRL = _f(FieldWidth.W64, FieldGroup.GUEST, 4, "guest_ia32_perf_global_ctrl")
GUEST_PDPTE0 = _f(FieldWidth.W64, FieldGroup.GUEST, 5, "guest_pdpte0")
GUEST_PDPTE1 = _f(FieldWidth.W64, FieldGroup.GUEST, 6, "guest_pdpte1")
GUEST_PDPTE2 = _f(FieldWidth.W64, FieldGroup.GUEST, 7, "guest_pdpte2")
GUEST_PDPTE3 = _f(FieldWidth.W64, FieldGroup.GUEST, 8, "guest_pdpte3")
GUEST_IA32_BNDCFGS = _f(FieldWidth.W64, FieldGroup.GUEST, 9, "guest_ia32_bndcfgs")
GUEST_IA32_RTIT_CTL = _f(FieldWidth.W64, FieldGroup.GUEST, 10, "guest_ia32_rtit_ctl")
GUEST_IA32_LBR_CTL = _f(FieldWidth.W64, FieldGroup.GUEST, 11, "guest_ia32_lbr_ctl")
GUEST_IA32_PKRS = _f(FieldWidth.W64, FieldGroup.GUEST, 12, "guest_ia32_pkrs")
GUEST_IA32_S_CET = _f(FieldWidth.W64, FieldGroup.GUEST, 13, "guest_ia32_s_cet")

# --- 64-bit host-state fields ---------------------------------------------------
HOST_IA32_PAT = _f(FieldWidth.W64, FieldGroup.HOST, 0, "host_ia32_pat")
HOST_IA32_EFER = _f(FieldWidth.W64, FieldGroup.HOST, 1, "host_ia32_efer")
HOST_IA32_PERF_GLOBAL_CTRL = _f(FieldWidth.W64, FieldGroup.HOST, 2, "host_ia32_perf_global_ctrl")
HOST_IA32_PKRS = _f(FieldWidth.W64, FieldGroup.HOST, 3, "host_ia32_pkrs")
HOST_IA32_S_CET = _f(FieldWidth.W64, FieldGroup.HOST, 4, "host_ia32_s_cet")

# --- 32-bit control fields --------------------------------------------------------
PIN_BASED_VM_EXEC_CONTROL = _f(FieldWidth.W32, FieldGroup.CONTROL, 0, "pin_based_vm_exec_control")
CPU_BASED_VM_EXEC_CONTROL = _f(FieldWidth.W32, FieldGroup.CONTROL, 1, "cpu_based_vm_exec_control")
EXCEPTION_BITMAP = _f(FieldWidth.W32, FieldGroup.CONTROL, 2, "exception_bitmap")
PAGE_FAULT_ERROR_CODE_MASK = _f(FieldWidth.W32, FieldGroup.CONTROL, 3, "page_fault_error_code_mask")
PAGE_FAULT_ERROR_CODE_MATCH = _f(FieldWidth.W32, FieldGroup.CONTROL, 4, "page_fault_error_code_match")
CR3_TARGET_COUNT = _f(FieldWidth.W32, FieldGroup.CONTROL, 5, "cr3_target_count")
VM_EXIT_CONTROLS = _f(FieldWidth.W32, FieldGroup.CONTROL, 6, "vm_exit_controls")
VM_EXIT_MSR_STORE_COUNT = _f(FieldWidth.W32, FieldGroup.CONTROL, 7, "vm_exit_msr_store_count")
VM_EXIT_MSR_LOAD_COUNT = _f(FieldWidth.W32, FieldGroup.CONTROL, 8, "vm_exit_msr_load_count")
VM_ENTRY_CONTROLS = _f(FieldWidth.W32, FieldGroup.CONTROL, 9, "vm_entry_controls")
VM_ENTRY_MSR_LOAD_COUNT = _f(FieldWidth.W32, FieldGroup.CONTROL, 10, "vm_entry_msr_load_count")
VM_ENTRY_INTR_INFO_FIELD = _f(FieldWidth.W32, FieldGroup.CONTROL, 11, "vm_entry_intr_info")
VM_ENTRY_EXCEPTION_ERROR_CODE = _f(FieldWidth.W32, FieldGroup.CONTROL, 12, "vm_entry_exception_error_code")
VM_ENTRY_INSTRUCTION_LEN = _f(FieldWidth.W32, FieldGroup.CONTROL, 13, "vm_entry_instruction_len")
TPR_THRESHOLD = _f(FieldWidth.W32, FieldGroup.CONTROL, 14, "tpr_threshold")
SECONDARY_VM_EXEC_CONTROL = _f(FieldWidth.W32, FieldGroup.CONTROL, 15, "secondary_vm_exec_control")
PLE_GAP = _f(FieldWidth.W32, FieldGroup.CONTROL, 16, "ple_gap")
PLE_WINDOW = _f(FieldWidth.W32, FieldGroup.CONTROL, 17, "ple_window")

# --- 32-bit read-only data fields ----------------------------------------------------
VM_INSTRUCTION_ERROR = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 0, "vm_instruction_error")
VM_EXIT_REASON = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 1, "vm_exit_reason")
VM_EXIT_INTR_INFO = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 2, "vm_exit_intr_info")
VM_EXIT_INTR_ERROR_CODE = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 3, "vm_exit_intr_error_code")
IDT_VECTORING_INFO_FIELD = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 4, "idt_vectoring_info")
IDT_VECTORING_ERROR_CODE = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 5, "idt_vectoring_error_code")
VM_EXIT_INSTRUCTION_LEN = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 6, "vm_exit_instruction_len")
VMX_INSTRUCTION_INFO = _f(FieldWidth.W32, FieldGroup.READ_ONLY, 7, "vmx_instruction_info")

# --- 32-bit guest-state fields ----------------------------------------------------------
GUEST_ES_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 0, "guest_es_limit")
GUEST_CS_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 1, "guest_cs_limit")
GUEST_SS_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 2, "guest_ss_limit")
GUEST_DS_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 3, "guest_ds_limit")
GUEST_FS_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 4, "guest_fs_limit")
GUEST_GS_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 5, "guest_gs_limit")
GUEST_LDTR_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 6, "guest_ldtr_limit")
GUEST_TR_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 7, "guest_tr_limit")
GUEST_GDTR_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 8, "guest_gdtr_limit")
GUEST_IDTR_LIMIT = _f(FieldWidth.W32, FieldGroup.GUEST, 9, "guest_idtr_limit")
GUEST_ES_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 10, "guest_es_ar_bytes")
GUEST_CS_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 11, "guest_cs_ar_bytes")
GUEST_SS_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 12, "guest_ss_ar_bytes")
GUEST_DS_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 13, "guest_ds_ar_bytes")
GUEST_FS_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 14, "guest_fs_ar_bytes")
GUEST_GS_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 15, "guest_gs_ar_bytes")
GUEST_LDTR_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 16, "guest_ldtr_ar_bytes")
GUEST_TR_AR_BYTES = _f(FieldWidth.W32, FieldGroup.GUEST, 17, "guest_tr_ar_bytes")
GUEST_INTERRUPTIBILITY_INFO = _f(FieldWidth.W32, FieldGroup.GUEST, 18, "guest_interruptibility_info")
GUEST_ACTIVITY_STATE = _f(FieldWidth.W32, FieldGroup.GUEST, 19, "guest_activity_state")
GUEST_SMBASE = _f(FieldWidth.W32, FieldGroup.GUEST, 20, "guest_smbase")
GUEST_SYSENTER_CS = _f(FieldWidth.W32, FieldGroup.GUEST, 21, "guest_sysenter_cs")
VMX_PREEMPTION_TIMER_VALUE = _f(FieldWidth.W32, FieldGroup.GUEST, 23, "vmx_preemption_timer_value")

# --- 32-bit host-state fields ---------------------------------------------------------------
HOST_IA32_SYSENTER_CS = _f(FieldWidth.W32, FieldGroup.HOST, 0, "host_ia32_sysenter_cs")

# --- natural-width control fields ------------------------------------------------------------
CR0_GUEST_HOST_MASK = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 0, "cr0_guest_host_mask")
CR4_GUEST_HOST_MASK = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 1, "cr4_guest_host_mask")
CR0_READ_SHADOW = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 2, "cr0_read_shadow")
CR4_READ_SHADOW = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 3, "cr4_read_shadow")
CR3_TARGET_VALUE0 = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 4, "cr3_target_value0")
CR3_TARGET_VALUE1 = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 5, "cr3_target_value1")
CR3_TARGET_VALUE2 = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 6, "cr3_target_value2")
CR3_TARGET_VALUE3 = _f(FieldWidth.NATURAL, FieldGroup.CONTROL, 7, "cr3_target_value3")

# --- natural-width read-only data fields -------------------------------------------------------
EXIT_QUALIFICATION = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 0, "exit_qualification")
IO_RCX = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 1, "io_rcx")
IO_RSI = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 2, "io_rsi")
IO_RDI = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 3, "io_rdi")
IO_RIP = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 4, "io_rip")
GUEST_LINEAR_ADDRESS = _f(FieldWidth.NATURAL, FieldGroup.READ_ONLY, 5, "guest_linear_address")

# --- natural-width guest-state fields ------------------------------------------------------------
GUEST_CR0 = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 0, "guest_cr0")
GUEST_CR3 = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 1, "guest_cr3")
GUEST_CR4 = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 2, "guest_cr4")
GUEST_ES_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 3, "guest_es_base")
GUEST_CS_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 4, "guest_cs_base")
GUEST_SS_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 5, "guest_ss_base")
GUEST_DS_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 6, "guest_ds_base")
GUEST_FS_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 7, "guest_fs_base")
GUEST_GS_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 8, "guest_gs_base")
GUEST_LDTR_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 9, "guest_ldtr_base")
GUEST_TR_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 10, "guest_tr_base")
GUEST_GDTR_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 11, "guest_gdtr_base")
GUEST_IDTR_BASE = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 12, "guest_idtr_base")
GUEST_DR7 = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 13, "guest_dr7")
GUEST_RSP = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 14, "guest_rsp")
GUEST_RIP = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 15, "guest_rip")
GUEST_RFLAGS = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 16, "guest_rflags")
GUEST_PENDING_DBG_EXCEPTIONS = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 17, "guest_pending_dbg_exceptions")
GUEST_SYSENTER_ESP = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 18, "guest_sysenter_esp")
GUEST_SYSENTER_EIP = _f(FieldWidth.NATURAL, FieldGroup.GUEST, 19, "guest_sysenter_eip")

# --- natural-width host-state fields ----------------------------------------------------------------
HOST_CR0 = _f(FieldWidth.NATURAL, FieldGroup.HOST, 0, "host_cr0")
HOST_CR3 = _f(FieldWidth.NATURAL, FieldGroup.HOST, 1, "host_cr3")
HOST_CR4 = _f(FieldWidth.NATURAL, FieldGroup.HOST, 2, "host_cr4")
HOST_FS_BASE = _f(FieldWidth.NATURAL, FieldGroup.HOST, 3, "host_fs_base")
HOST_GS_BASE = _f(FieldWidth.NATURAL, FieldGroup.HOST, 4, "host_gs_base")
HOST_TR_BASE = _f(FieldWidth.NATURAL, FieldGroup.HOST, 5, "host_tr_base")
HOST_GDTR_BASE = _f(FieldWidth.NATURAL, FieldGroup.HOST, 6, "host_gdtr_base")
HOST_IDTR_BASE = _f(FieldWidth.NATURAL, FieldGroup.HOST, 7, "host_idtr_base")
HOST_IA32_SYSENTER_ESP = _f(FieldWidth.NATURAL, FieldGroup.HOST, 8, "host_ia32_sysenter_esp")
HOST_IA32_SYSENTER_EIP = _f(FieldWidth.NATURAL, FieldGroup.HOST, 9, "host_ia32_sysenter_eip")
HOST_RSP = _f(FieldWidth.NATURAL, FieldGroup.HOST, 10, "host_rsp")
HOST_RIP = _f(FieldWidth.NATURAL, FieldGroup.HOST, 11, "host_rip")

#: All field specs in canonical layout order (definition order above).
ALL_FIELDS: tuple[FieldSpec, ...] = tuple(_SPECS)

SPEC_BY_ENCODING: dict[int, FieldSpec] = {s.encoding: s for s in ALL_FIELDS}
SPEC_BY_NAME: dict[str, FieldSpec] = {s.name: s for s in ALL_FIELDS}

#: Fields writable by software via vmwrite (read-only group excluded
#: unless the CPU supports "VMWRITE to any field"; our model excludes it).
WRITABLE_FIELDS: tuple[FieldSpec, ...] = tuple(
    s for s in ALL_FIELDS if s.group is not FieldGroup.READ_ONLY
)

#: Total serialised layout size in bits (the paper quotes ~8,000 bits).
LAYOUT_BITS = sum(s.bits for s in ALL_FIELDS)
LAYOUT_BYTES = (LAYOUT_BITS + 7) // 8

#: Segment field tables keyed by segment name, used throughout validation.
SEGMENT_SELECTOR_FIELDS = {
    "es": GUEST_ES_SELECTOR, "cs": GUEST_CS_SELECTOR, "ss": GUEST_SS_SELECTOR,
    "ds": GUEST_DS_SELECTOR, "fs": GUEST_FS_SELECTOR, "gs": GUEST_GS_SELECTOR,
    "ldtr": GUEST_LDTR_SELECTOR, "tr": GUEST_TR_SELECTOR,
}
SEGMENT_BASE_FIELDS = {
    "es": GUEST_ES_BASE, "cs": GUEST_CS_BASE, "ss": GUEST_SS_BASE,
    "ds": GUEST_DS_BASE, "fs": GUEST_FS_BASE, "gs": GUEST_GS_BASE,
    "ldtr": GUEST_LDTR_BASE, "tr": GUEST_TR_BASE,
}
SEGMENT_LIMIT_FIELDS = {
    "es": GUEST_ES_LIMIT, "cs": GUEST_CS_LIMIT, "ss": GUEST_SS_LIMIT,
    "ds": GUEST_DS_LIMIT, "fs": GUEST_FS_LIMIT, "gs": GUEST_GS_LIMIT,
    "ldtr": GUEST_LDTR_LIMIT, "tr": GUEST_TR_LIMIT,
}
SEGMENT_AR_FIELDS = {
    "es": GUEST_ES_AR_BYTES, "cs": GUEST_CS_AR_BYTES, "ss": GUEST_SS_AR_BYTES,
    "ds": GUEST_DS_AR_BYTES, "fs": GUEST_FS_AR_BYTES, "gs": GUEST_GS_AR_BYTES,
    "ldtr": GUEST_LDTR_AR_BYTES, "tr": GUEST_TR_AR_BYTES,
}
HOST_SELECTOR_FIELDS = {
    "es": HOST_ES_SELECTOR, "cs": HOST_CS_SELECTOR, "ss": HOST_SS_SELECTOR,
    "ds": HOST_DS_SELECTOR, "fs": HOST_FS_SELECTOR, "gs": HOST_GS_SELECTOR,
    "tr": HOST_TR_SELECTOR,
}
