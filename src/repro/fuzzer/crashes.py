"""Case-crash isolation artifacts: signatures, dedup, reproducers.

An exception escaping a hypervisor model or the oracle during one test
case must not kill the campaign (the fuzz-harness VM design: an L1/L2
failure never takes the agent down). The engine catches it at the case
boundary and hands it here; the store deduplicates by a stable
signature, minimizes the triggering input, and persists a replayable
reproducer under ``<corpus_dir>/crashes/``.

Reproducer files are JSON (schema 1) containing the campaign seed, the
iteration, and the exact input bytes — everything needed to replay:
``FuzzEngine.import_case`` accepts a reproducer file verbatim.
"""

from __future__ import annotations

import hashlib
import json
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.fuzzer.input import (
    CONFIG_REGION,
    HARNESS_REGION,
    MUTATION_REGION,
    VM_STATE_REGION,
)

#: Reproducer file format version.
SCHEMA = 1

#: Region-zeroing order for minimization: most behaviour-rich first.
_MINIMIZE_REGIONS = (HARNESS_REGION, MUTATION_REGION, CONFIG_REGION,
                     VM_STATE_REGION)


def _top_frame(exc: BaseException) -> str:
    """The innermost meaningful traceback frame, as ``file.py:function``.

    Frames inside the fault-injection shim are skipped: an injected
    exception should triage to the hook *site* (executor, oracle, ...),
    not to ``faults.py:hook`` — otherwise every injected fault would
    dedupe into one bucket.
    """
    tb = traceback.extract_tb(exc.__traceback__)
    for frame in reversed(tb):
        if Path(frame.filename).name != "faults.py":
            return f"{Path(frame.filename).name}:{frame.name}"
    if tb:
        frame = tb[-1]
        return f"{Path(frame.filename).name}:{frame.name}"
    return "<no traceback>"


@dataclass(frozen=True)
class CrashSignature:
    """Deduplication key for one case-level crash."""

    exc_type: str
    top_frame: str
    hypervisor: str
    vendor: str

    @classmethod
    def of(cls, exc: BaseException, hypervisor: str,
           vendor: str) -> "CrashSignature":
        return cls(type(exc).__name__, _top_frame(exc), hypervisor, vendor)

    def slug(self) -> str:
        """Short stable id used in reproducer filenames."""
        text = "|".join((self.exc_type, self.top_frame,
                         self.hypervisor, self.vendor))
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    def __str__(self) -> str:
        return (f"{self.exc_type}@{self.top_frame} "
                f"[{self.hypervisor}/{self.vendor}]")


@dataclass
class CrashRecord:
    """One deduplicated crash bucket."""

    signature: CrashSignature
    message: str
    first_iteration: int
    input_bytes: bytes
    minimized: bool = False
    count: int = 1
    path: Path | None = None


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* so readers never observe a partial file.

    The classic tmp-then-rename dance: a crash mid-write leaves only a
    ``*.tmp`` orphan, never a truncated target.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


@dataclass
class CrashStore:
    """Signature-deduplicated crash corpus for one campaign."""

    directory: Path | None = None
    hypervisor: str = "?"
    vendor: str = "?"
    campaign_seed: int = 0
    #: Re-execute a candidate input during minimization; minimization is
    #: skipped when the store has no executor (or ``minimize=False``).
    minimize: bool = True
    records: dict[CrashSignature, CrashRecord] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total(self) -> int:
        """All case crashes seen, including duplicates."""
        return sum(r.count for r in self.records.values())

    def record(self, exc: BaseException, data: bytes, iteration: int,
               reexecute: Callable[[bytes], object] | None = None,
               ) -> tuple[CrashRecord, bool]:
        """Triage one escaped exception; returns (record, is_new)."""
        signature = CrashSignature.of(exc, self.hypervisor, self.vendor)
        existing = self.records.get(signature)
        if existing is not None:
            existing.count += 1
            return existing, False
        minimized = False
        if self.minimize and reexecute is not None:
            data, minimized = self._minimize(signature, data, reexecute)
        record = CrashRecord(
            signature=signature, message=str(exc),
            first_iteration=iteration, input_bytes=data,
            minimized=minimized)
        self.records[signature] = record
        if self.directory is not None:
            record.path = self._persist(record)
        return record, True

    # --- minimization --------------------------------------------------

    def _reproduces(self, signature: CrashSignature, data: bytes,
                    reexecute: Callable[[bytes], object]) -> bool:
        try:
            reexecute(data)
        except Exception as exc:
            return CrashSignature.of(
                exc, self.hypervisor, self.vendor) == signature
        return False

    def _minimize(self, signature: CrashSignature, data: bytes,
                  reexecute: Callable[[bytes], object],
                  ) -> tuple[bytes, bool]:
        """Zero whole input regions while the crash still reproduces.

        Coarse but cheap (at most one re-execution per region, only on
        the first occurrence of a signature); a zeroed region tells the
        person triaging "this part of the input is irrelevant".
        """
        shrunk = False
        current = bytearray(data)
        for start, end in _MINIMIZE_REGIONS:
            trial = bytearray(current)
            trial[start:end] = bytes(end - start)
            if trial == current:
                continue
            if self._reproduces(signature, bytes(trial), reexecute):
                current = trial
                shrunk = True
        return bytes(current), shrunk

    # --- persistence ---------------------------------------------------

    def _persist(self, record: CrashRecord) -> Path:
        directory = Path(self.directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"crash-{record.signature.slug()}.json"
        payload = {
            "schema": SCHEMA,
            "signature": {
                "exc_type": record.signature.exc_type,
                "top_frame": record.signature.top_frame,
                "hypervisor": record.signature.hypervisor,
                "vendor": record.signature.vendor,
            },
            "message": record.message,
            "iteration": record.first_iteration,
            "campaign_seed": self.campaign_seed,
            "minimized": record.minimized,
            "input": record.input_bytes.hex(),
        }
        atomic_write_bytes(
            path, json.dumps(payload, indent=2, sort_keys=True).encode())
        return path


def load_reproducer(path: Path) -> tuple[bytes, dict]:
    """Read one reproducer file back as (input bytes, metadata)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"unsupported reproducer schema in {path}")
    data = bytes.fromhex(payload["input"])
    return data, payload
