"""Coverage-guided fuzzing engine (the AFL++ role in the paper)."""

from repro.fuzzer.engine import EngineStats, FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE, FuzzInput, InputCursor
from repro.fuzzer.queue import QueueEntry, SeedQueue
from repro.fuzzer.rng import Rng

__all__ = [
    "FuzzEngine",
    "RunFeedback",
    "EngineStats",
    "FuzzInput",
    "InputCursor",
    "INPUT_SIZE",
    "SeedQueue",
    "QueueEntry",
    "Rng",
]
