"""SVM exit codes (AMD APM Vol. 2, Appendix C)."""

from __future__ import annotations

from enum import IntEnum


class SvmExitCode(IntEnum):
    """VMEXIT codes written to VMCB.exit_code."""

    CR0_READ = 0x000
    CR3_READ = 0x003
    CR4_READ = 0x004
    CR0_WRITE = 0x010
    CR3_WRITE = 0x013
    CR4_WRITE = 0x014
    DR0_READ = 0x020
    DR7_READ = 0x027
    DR0_WRITE = 0x030
    DR7_WRITE = 0x037
    EXCP_BASE = 0x040        # +vector
    INTR = 0x060
    NMI = 0x061
    SMI = 0x062
    INIT = 0x063
    VINTR = 0x064
    CR0_SEL_WRITE = 0x065
    IDTR_READ = 0x066
    GDTR_READ = 0x067
    LDTR_READ = 0x068
    TR_READ = 0x069
    RDTSC = 0x06E
    RDPMC = 0x06F
    PUSHF = 0x070
    POPF = 0x071
    CPUID = 0x072
    RSM = 0x073
    IRET = 0x074
    SWINT = 0x075
    INVD = 0x076
    PAUSE = 0x077
    HLT = 0x078
    INVLPG = 0x079
    INVLPGA = 0x07A
    IOIO = 0x07B
    MSR = 0x07C
    TASK_SWITCH = 0x07D
    FERR_FREEZE = 0x07E
    SHUTDOWN = 0x07F
    VMRUN = 0x080
    VMMCALL = 0x081
    VMLOAD = 0x082
    VMSAVE = 0x083
    STGI = 0x084
    CLGI = 0x085
    SKINIT = 0x086
    RDTSCP = 0x087
    ICEBP = 0x088
    WBINVD = 0x089
    MONITOR = 0x08A
    MWAIT = 0x08B
    MWAIT_CONDITIONAL = 0x08C
    XSETBV = 0x08D
    RDPRU = 0x08E
    EFER_WRITE_TRAP = 0x08F
    NPF = 0x400              # nested page fault
    AVIC_INCOMPLETE_IPI = 0x401
    AVIC_NOACCEL = 0x402     # the exit Xen bug #5 wrongly produces
    VMGEXIT = 0x403

    #: VMRUN consistency-check failure (sign-extended -1 in hardware).
    INVALID = 0xFFFF_FFFF_FFFF_FFFF


#: Exits produced by SVM instructions in the guest — routed to nested
#: SVM emulation by the L0 dispatcher.
SVM_INSTRUCTION_EXITS = frozenset({
    SvmExitCode.VMRUN, SvmExitCode.VMLOAD, SvmExitCode.VMSAVE,
    SvmExitCode.STGI, SvmExitCode.CLGI, SvmExitCode.INVLPGA,
    SvmExitCode.SKINIT, SvmExitCode.VMMCALL,
})
