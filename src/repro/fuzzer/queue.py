"""Seed queue with AFL-style favored-entry scheduling."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fuzzer.rng import Rng


@dataclass
class QueueEntry:
    """One queued seed."""

    data: bytes
    found_at: int            # iteration number when discovered
    new_bits: int            # 2 = new edge, 1 = new bucket, 0 = initial seed
    exercised: int = 0       # times picked for mutation
    favored: bool = False
    imported: bool = False   # pulled in from a sync partner, not found locally
    #: Sparse classified coverage ((cell, class-bit) pairs, sorted) the
    #: entry produced when found — what corpus protocol v2 exports so
    #: partners can test subsumption without executing. None for seeds
    #: and legacy-loaded entries (which are then never filter-skipped).
    coverage: tuple = None
    #: Source lines the entry covered when found; shipped alongside
    #: ``coverage`` so a skipping importer can still absorb line stats.
    lines: frozenset = None
    crashed: bool = False    # produced a crash when found (never skipped)
    anomaly: bool = False    # produced an anomaly when found (never skipped)


@dataclass
class SeedQueue:
    """The fuzzer's corpus.

    A light version of AFL's culling: entries that found brand-new edges
    are favored; picking prefers favored, under-exercised entries.
    """

    entries: list[QueueEntry] = field(default_factory=list)

    def add_seed(self, data: bytes) -> QueueEntry:
        """Add an initial seed (always kept, never favored)."""
        entry = QueueEntry(data, found_at=0, new_bits=0)
        self.entries.append(entry)
        return entry

    def add_finding(self, data: bytes, iteration: int, new_bits: int,
                    imported: bool = False, coverage: tuple = None,
                    lines: frozenset = None, crashed: bool = False,
                    anomaly: bool = False) -> QueueEntry:
        """Add an input that produced new coverage."""
        entry = QueueEntry(data, found_at=iteration, new_bits=new_bits,
                           favored=new_bits == 2, imported=imported,
                           coverage=coverage, lines=lines, crashed=crashed,
                           anomaly=anomaly)
        self.entries.append(entry)
        return entry

    def pick(self, rng: Rng) -> QueueEntry:
        """Select the next entry to mutate."""
        if not self.entries:
            raise RuntimeError("empty seed queue")
        favored = [e for e in self.entries if e.favored and e.exercised < 32]
        pool = favored if favored and rng.chance(0.75) else self.entries
        entry = rng.choice(pool)
        entry.exercised += 1
        return entry

    def pick_other(self, rng: Rng, entry: QueueEntry) -> QueueEntry:
        """A second, different entry (splice partner); may equal *entry*
        when the queue has a single element."""
        if len(self.entries) == 1:
            return entry
        for _ in range(4):
            other = rng.choice(self.entries)
            if other is not entry:
                return other
        return entry

    def __len__(self) -> int:
        return len(self.entries)
