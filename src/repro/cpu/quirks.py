"""Silent hardware behaviours not captured by the written specification.

The paper's validator relies on the physical CPU as ground truth because
"some constraints are also undocumented, and in certain cases, the CPU
silently rounds VMCS values to correct inconsistencies" (§3.4). This
module is the catalogue of such behaviours in our CPU model. They are
deliberately *not* implemented in the Bochs-derived validator, so the
oracle loop in :mod:`repro.validator.oracle` has genuine discrepancies to
detect and learn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.registers import Efer, Rflags
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls
from repro.vmx.vmcs import Vmcs


@dataclass(frozen=True)
class SilentFixup:
    """A record of one silent correction applied during VM entry."""

    field: str
    before: int
    after: int
    note: str


def apply_entry_fixups(vmcs: Vmcs) -> list[SilentFixup]:
    """Mutate *vmcs* the way hardware silently rounds state at VM entry.

    Returns the list of corrections so callers (and the validator's
    oracle) can observe exactly what changed.
    """
    fixups: list[SilentFixup] = []

    def fix(encoding: int, name: str, after: int, note: str) -> None:
        before = vmcs.read(encoding)
        if before != after:
            vmcs.write(encoding, after)
            fixups.append(SilentFixup(name, before, after, note))

    # Quirk 1 (CVE-2023-30456 root): with the IA-32e-mode-guest control
    # set, hardware behaves as if guest CR4.PAE were 1 even when software
    # left it 0 — it *assumes* the bit rather than checking it, and it
    # does NOT rewrite the stored field (the paper: "the CPU silently
    # assumes it is set and allows the VM entry to proceed"). The
    # tolerance lives in repro.cpu.entry_checks.check_guest_state; there
    # is deliberately no fixup here, which is exactly why a literal
    # software reimplementation (KVM's) can diverge from hardware.
    entry = vmcs.read(F.VM_ENTRY_CONTROLS)

    # Quirk 2: RFLAGS bit 1 always reads back as 1 and the reserved bits
    # as 0 after entry, regardless of what was written.
    rflags = vmcs.read(F.GUEST_RFLAGS)
    fix(F.GUEST_RFLAGS, "guest_rflags",
        (rflags | Rflags.FIXED_1) & ~Rflags.RESERVED,
        "RFLAGS fixed bits forced")

    # Quirk 3: with the load-EFER entry control, hardware recomputes
    # EFER.LMA from the IA-32e-mode-guest control rather than trusting
    # the stored bit.
    if entry & EntryControls.LOAD_EFER:
        efer = vmcs.read(F.GUEST_IA32_EFER)
        if entry & EntryControls.IA32E_MODE_GUEST:
            efer |= Efer.LMA
        else:
            efer &= ~Efer.LMA
        fix(F.GUEST_IA32_EFER, "guest_ia32_efer", efer,
            "EFER.LMA recomputed from IA-32e-mode-guest control")

    # Quirk 4: the CS access-rights "accessed" bit (type bit 0) is set by
    # hardware on entry for usable code segments.
    cs_ar = vmcs.read(F.GUEST_CS_AR_BYTES)
    if not cs_ar & (1 << 16) and cs_ar & 0x8:  # usable code segment
        fix(F.GUEST_CS_AR_BYTES, "guest_cs_ar_bytes", cs_ar | 1,
            "CS accessed bit set by hardware")

    # Quirk 5: writes to the guest activity state above the architectural
    # range wrap: hardware keeps only the low 2 bits. (Values 0-3 remain
    # legal-but-dangerous; Xen bug #4 depends on 3 being representable.)
    activity = vmcs.read(F.GUEST_ACTIVITY_STATE)
    fix(F.GUEST_ACTIVITY_STATE, "guest_activity_state", activity & 3,
        "activity state truncated to 2 bits")

    return fixups


#: Replay memo for fixup prediction (batched hot path). Lazy so the
#: batch machinery is only imported when batch mode is actually used.
_PREDICT_MEMO = None


def predict_entry_fixups(vmcs: Vmcs) -> list[SilentFixup]:
    """The fixups :func:`apply_entry_fixups` *would* apply, without
    applying them.

    Backed by a replay memo keyed on the quirk inputs' first-read
    values: a repeat signature answers from the recording; a miss runs
    the real :func:`apply_entry_fixups` on a throwaway light image, so
    prediction can never drift from execution. The returned list is
    shared between hits — callers must not mutate it.
    """
    global _PREDICT_MEMO
    if _PREDICT_MEMO is None:
        from repro.batch import ReplayMemo

        _PREDICT_MEMO = ReplayMemo(apply_entry_fixups)
    result, _writes = _PREDICT_MEMO.predict(vmcs)
    return result


#: Field names the validator is known *not* to model precisely; used by
#: tests to assert the oracle loop converges on exactly these.
UNDOCUMENTED_FIELDS = frozenset({
    "guest_rflags",
    "guest_ia32_efer",
    "guest_cs_ar_bytes",
    "guest_activity_state",
})
