"""Segment selectors, bases, limits, and access-rights encodings.

VMCS guest-state checks on segment registers are among the most intricate
parts of VM-entry validation (SDM 26.3.1.2) — they were also the subject
of the two Bochs bugs the paper's authors fixed while building their
validator. The encodings here follow the VMCS access-rights format: the
low 16 bits mirror the descriptor AR byte layout, plus the "unusable"
flag at bit 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.bits import bit, extract, test_bit

#: Segment register names in VMCS encoding order.
SEGMENT_NAMES = ("es", "cs", "ss", "ds", "fs", "gs", "ldtr", "tr")


class AccessRights:
    """Bit positions within a VMCS access-rights word."""

    TYPE_LOW, TYPE_HIGH = 0, 3
    S = bit(4)           # descriptor type: 0=system, 1=code/data
    DPL_LOW, DPL_HIGH = 5, 6
    P = bit(7)           # present
    AVL = bit(12)
    L = bit(13)          # 64-bit code segment
    DB = bit(14)         # default operation size
    G = bit(15)          # granularity
    UNUSABLE = bit(16)

    #: Reserved bits: 8..11 and 17..31 must be zero.
    RESERVED = (((1 << 4) - 1) << 8) | (((1 << 15) - 1) << 17)


# Segment type values for code/data descriptors (S=1), SDM Vol. 3, 3.4.5.1.
SEG_TYPE_DATA_RO = 0x1          # read-only, accessed
SEG_TYPE_DATA_RW = 0x3          # read/write, accessed
SEG_TYPE_DATA_RW_EXPAND_DOWN = 0x7
SEG_TYPE_CODE_EO = 0x9          # execute-only, accessed
SEG_TYPE_CODE_ER = 0xB          # execute/read, accessed
SEG_TYPE_CODE_EO_CONFORMING = 0xD
SEG_TYPE_CODE_ER_CONFORMING = 0xF

# System segment types (S=0).
SYS_TYPE_LDT = 0x2
SYS_TYPE_TSS_16_BUSY = 0x3
SYS_TYPE_TSS_32_BUSY = 0xB
SYS_TYPE_TSS_64_BUSY = 0xB  # same encoding, interpreted in long mode


@dataclass
class Segment:
    """A full segment register image as stored in the VMCS guest state."""

    selector: int = 0
    base: int = 0
    limit: int = 0xFFFF
    access_rights: int = AccessRights.P | AccessRights.S | SEG_TYPE_DATA_RW

    @property
    def seg_type(self) -> int:
        """Descriptor type field (AR bits 3:0)."""
        return extract(self.access_rights, AccessRights.TYPE_LOW, AccessRights.TYPE_HIGH)

    @property
    def s(self) -> bool:
        """True for code/data descriptors, False for system descriptors."""
        return bool(self.access_rights & AccessRights.S)

    @property
    def dpl(self) -> int:
        """Descriptor privilege level (AR bits 6:5)."""
        return extract(self.access_rights, AccessRights.DPL_LOW, AccessRights.DPL_HIGH)

    @property
    def present(self) -> bool:
        """Descriptor present bit (AR.P)."""
        return bool(self.access_rights & AccessRights.P)

    @property
    def long_mode(self) -> bool:
        """AR.L — 64-bit code segment flag."""
        return bool(self.access_rights & AccessRights.L)

    @property
    def db(self) -> bool:
        """Default operation size flag (AR.D/B)."""
        return bool(self.access_rights & AccessRights.DB)

    @property
    def granularity(self) -> bool:
        """Limit granularity flag (AR.G)."""
        return bool(self.access_rights & AccessRights.G)

    @property
    def unusable(self) -> bool:
        """VMX unusable flag (AR bit 16)."""
        return bool(self.access_rights & AccessRights.UNUSABLE)

    @property
    def rpl(self) -> int:
        """Requested privilege level — low two selector bits."""
        return self.selector & 3

    @property
    def ti(self) -> bool:
        """Selector table-indicator bit (0=GDT, 1=LDT)."""
        return test_bit(self.selector, 2)

    def is_code(self) -> bool:
        """True when this is a code segment (S=1, type bit 3 set)."""
        return self.s and bool(self.seg_type & 0x8)

    def is_writable_data(self) -> bool:
        """True when this is a writable data segment."""
        return self.s and not self.seg_type & 0x8 and bool(self.seg_type & 0x2)

    def is_expand_down(self) -> bool:
        """True for expand-down data segments (type bit 2 set, data)."""
        return self.s and not self.seg_type & 0x8 and bool(self.seg_type & 0x4)


def ar_reserved_ok(access_rights: int) -> bool:
    """Return True when the AR word has all reserved bits clear."""
    return not access_rights & AccessRights.RESERVED


def granularity_consistent(limit: int, access_rights: int) -> bool:
    """Check the SDM limit/granularity consistency rule.

    If any of limit[11:0] is not all-ones, G must be 0; if any of
    limit[31:20] is non-zero, G must be 1.
    """
    g = bool(access_rights & AccessRights.G)
    low = limit & 0xFFF
    high = limit & 0xFFF00000
    if low != 0xFFF and g:
        return False
    if high and not g:
        return False
    return True


def flat_segment(selector: int = 0x8, *, code: bool = False, long_mode: bool = False,
                 dpl: int = 0) -> Segment:
    """Build a flat 4 GiB (or 64-bit) segment as a hypervisor would.

    This is the canonical segment shape used by the fuzz-harness VM's
    template initialisation sequence.
    """
    seg_type = SEG_TYPE_CODE_ER if code else SEG_TYPE_DATA_RW
    ar = seg_type | AccessRights.S | AccessRights.P | AccessRights.G | (dpl << 5)
    if code and long_mode:
        ar |= AccessRights.L
    else:
        ar |= AccessRights.DB
    return Segment(selector=selector, base=0, limit=0xFFFFFFFF, access_rights=ar)


def unusable_segment() -> Segment:
    """A segment marked unusable (what a null selector load produces)."""
    return Segment(selector=0, base=0, limit=0, access_rights=AccessRights.UNUSABLE)


def tss_segment(selector: int = 0x28, *, long_mode: bool = True) -> Segment:
    """A busy TSS segment suitable for the guest/host TR checks."""
    seg_type = SYS_TYPE_TSS_64_BUSY if long_mode else SYS_TYPE_TSS_32_BUSY
    return Segment(
        selector=selector,
        base=0x1000,
        limit=0x67,
        access_rights=seg_type | AccessRights.P,
    )


def ldtr_segment(selector: int = 0x30) -> Segment:
    """A valid LDTR image (system descriptor type 2)."""
    return Segment(
        selector=selector,
        base=0x2000,
        limit=0xFFFF,
        access_rights=SYS_TYPE_LDT | AccessRights.P,
    )
