"""The VM execution harness (paper §3.3/§4.2).

Initialization phase: interpret the hand-written init template, letting
fuzzing input mutate instruction ordering, argument values, and
repetition counts — "exploration of subtle control flow variations while
preserving structural correctness".

Runtime phase: a tight loop that (1) executes an exit-triggering
instruction in L2, (2) on an exit to L1, executes an instruction in the
L1 context, and (3) re-enters L2 with vmresume/vmrun.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpuid import Vendor
from repro.arch.msr import MsrEntry
from repro.core.templates import (
    BOUNDARY_VALUES,
    INTERESTING_MSRS,
    VMCB12_GPA,
    init_sequence,
    runtime_templates,
)
from repro.fuzzer.input import FuzzInput, InputCursor
from repro.hypervisors.base import ExecResult, GuestInstruction, L0Hypervisor
from repro.vmx import fields as F

#: MSRs the MSR-area builder gravitates to — the canonical-address
#: family is where CVE-2024-21106 lives.
_MSR_AREA_CANDIDATES = INTERESTING_MSRS


@dataclass
class HarnessStats:
    """What one harness run did."""

    instructions: int = 0
    vm_entries: int = 0
    entered_l2: bool = False
    l2_exits_to_l1: int = 0
    l0_handled_exits: int = 0
    faults: int = 0
    results: list[ExecResult] = field(default_factory=list)


@dataclass
class VmExecutionHarness:
    """Runs the fuzz-harness VM's two phases against an L0 hypervisor."""

    vendor: Vendor
    #: Ablation switch: disabled -> fixed template, fixed arguments,
    #: fixed runtime instruction set ("w/o VM execution harness").
    mutate: bool = True
    runtime_iterations: int = 24
    #: §6.3 extension: inject scheduled asynchronous events (interrupts,
    #: NMIs, timer exits) into the runtime loop. Off by default — the
    #: paper's configuration does not model them.
    async_events: bool = False

    # ------------------------------------------------------------------
    # Initialization phase
    # ------------------------------------------------------------------

    def run_init_phase(self, hv: L0Hypervisor, vcpu, fuzz_input: FuzzInput,
                       vm_state, stats: HarnessStats) -> None:
        """Drive the initialization sequence, mutated by fuzzing input."""
        cursor = fuzz_input.harness_cursor()
        steps = init_sequence(self.vendor)
        if self.mutate:
            steps = self._mutate_sequence(steps, cursor)

        self._install_vm_state(hv, vcpu, vm_state, cursor, stats)

        for step in steps:
            operands = dict(step.operands)
            if self.mutate and step.mutable_args and cursor.chance(1, 32):
                # Argument perturbation: nearby aligned and raw values.
                for key in operands:
                    if cursor.chance(1, 2):
                        operands[key] = self._perturb(operands[key], cursor)
            if step.mnemonic in ("vmlaunch", "vmrun"):
                # VM-state installation must precede the entry even when
                # mutation reordered everything else.
                if self.vendor is Vendor.INTEL:
                    self._write_vmcs_fields(hv, vcpu, vm_state, stats)
            result = self._exec(hv, vcpu,
                                GuestInstruction(step.mnemonic, operands),
                                stats)
            if step.mnemonic in ("vmlaunch", "vmrun"):
                stats.vm_entries += 1
                if result.ok and result.level == 2:
                    stats.entered_l2 = True
                    return

    def _mutate_sequence(self, steps, cursor: InputCursor):
        """Order/repetition mutation that keeps the skeleton plausible.

        Rates are deliberately low: "any significant deviation is
        promptly rejected by the L0 hypervisor's error-checking logic"
        (§3.3), so most iterations must still boot while a steady
        minority probes the initialization emulation's error paths.
        """
        steps = list(steps)
        # Repetition: duplicate one mutable step.
        if cursor.chance(1, 8) and len(steps) > 1:
            idx = cursor.below(len(steps) - 1)
            steps.insert(idx, steps[idx])
        # Ordering: swap two adjacent non-final steps.
        if cursor.chance(1, 8) and len(steps) > 2:
            idx = cursor.below(len(steps) - 2)
            steps[idx], steps[idx + 1] = steps[idx + 1], steps[idx]
        # Omission: drop one early step occasionally.
        if cursor.chance(1, 32) and len(steps) > 2:
            del steps[cursor.below(len(steps) - 1)]
        return steps

    @staticmethod
    def _perturb(value: int, cursor: InputCursor) -> int:
        """Argument mutation: nearby page, unaligned, or boundary value."""
        kind = cursor.below(4)
        if kind == 0:
            return value + 0x1000 * (cursor.below(8) - 4)
        if kind == 1:
            return value | cursor.below(0xFFF)
        if kind == 2:
            return BOUNDARY_VALUES[cursor.below(len(BOUNDARY_VALUES))]
        return cursor.u32()

    def _install_vm_state(self, hv: L0Hypervisor, vcpu, vm_state,
                          cursor: InputCursor, stats: HarnessStats) -> None:
        """Place the generated VM state where the init sequence expects it."""
        if self.vendor is Vendor.AMD:
            hv.memory.put_vmcb(VMCB12_GPA, vm_state)
            return
        # Intel: the VMCS content flows through vmwrite (see
        # _write_vmcs_fields); here we only stage the MSR-load area the
        # VMCS points to.
        count = vm_state.read(F.VM_ENTRY_MSR_LOAD_COUNT)
        addr = vm_state.read(F.VM_ENTRY_MSR_LOAD_ADDR)
        if count and hv.memory.in_guest_ram(addr):
            entries = []
            for _ in range(min(count, 16)):
                index = _MSR_AREA_CANDIDATES[cursor.below(len(_MSR_AREA_CANDIDATES))]
                value = (BOUNDARY_VALUES[cursor.below(len(BOUNDARY_VALUES))]
                         if cursor.chance(1, 2) else cursor.u64())
                entries.append(MsrEntry(index, value))
            hv.memory.put_msr_area(addr, entries)

    def _write_vmcs_fields(self, hv: L0Hypervisor, vcpu, vm_state,
                           stats: HarnessStats) -> None:
        """Emit the vmwrite storm that programs VMCS12."""
        for spec, value in vm_state.fields():
            if spec.group is F.FieldGroup.READ_ONLY:
                continue
            self._exec(hv, vcpu, GuestInstruction(
                "vmwrite", {"field": spec.encoding, "value": value}), stats)

    # ------------------------------------------------------------------
    # Runtime phase
    # ------------------------------------------------------------------

    def run_runtime_phase(self, hv: L0Hypervisor, vcpu,
                          fuzz_input: FuzzInput, stats: HarnessStats) -> None:
        """The L2 -> exit -> L1 -> re-enter loop (§4.2)."""
        cursor = fuzz_input.harness_cursor()
        cursor.offset += 128  # past the bytes the init phase consumed
        templates = runtime_templates(self.vendor)
        l2_templates = [t for t in templates if 2 in t.levels]
        l1_templates = [t for t in templates if 1 in t.levels]
        # Ablation ("w/o VM execution harness"): the predefined template
        # library still runs, but deterministically — fixed cycling
        # order and fixed operands (a zero cursor) instead of
        # input-driven selection and arguments.
        fixed_cursor = InputCursor(b"\x00") if not self.mutate else None

        schedule = None
        if self.async_events:
            from repro.core.async_events import AsyncEventSchedule

            schedule = AsyncEventSchedule(self.vendor, fuzz_input,
                                          horizon=self.runtime_iterations)

        for iteration in range(self.runtime_iterations):
            if hv.crashed:
                return
            if vcpu.level != 2:
                if not self._reenter(hv, vcpu, stats):
                    return
                if vcpu.level != 2:
                    return  # re-entry keeps failing; give up this case
            if schedule is not None:
                for event in schedule.due(iteration):
                    if vcpu.level != 2:
                        break
                    result = self._exec(hv, vcpu, event.instruction(), stats)
                    if result.exit_reason is not None and result.level == 1:
                        stats.l2_exits_to_l1 += 1
                        self._reenter(hv, vcpu, stats)
                if vcpu.level != 2:
                    continue
            if self.mutate:
                template = l2_templates[cursor.below(len(l2_templates))]
                instr = template.instantiate(cursor, 2)
            else:
                template = l2_templates[iteration % len(l2_templates)]
                instr = template.instantiate(fixed_cursor, 2)
            result = self._exec(hv, vcpu, instr, stats)
            if result.exit_reason is not None and result.level == 1:
                stats.l2_exits_to_l1 += 1
                # Step 2: an instruction in the L1 context, emulated by L0.
                if self.mutate:
                    l1_template = l1_templates[cursor.below(len(l1_templates))]
                    l1_instr = l1_template.instantiate(cursor, 1)
                else:
                    l1_template = l1_templates[iteration % len(l1_templates)]
                    l1_instr = l1_template.instantiate(fixed_cursor, 1)
                self._exec(hv, vcpu, l1_instr, stats)
            elif result.exit_reason is not None:
                stats.l0_handled_exits += 1

    @staticmethod
    def _vmcb_store(hv: L0Hypervisor, instr: GuestInstruction) -> ExecResult:
        """An L1 memory store into its own VMCB12 — no trap, no L0.

        This is how real L1 hypervisors reprogram the nested guest
        between vmruns, and it is the only way to reach merge-path bugs
        that depend on VMCB history (e.g. Xen's LME/!PG corruption).
        """
        from repro.core.templates import VMCB_STORE_TARGETS

        vmcb12 = hv.memory.get_vmcb(VMCB12_GPA)
        if vmcb12 is None:
            return ExecResult.success("vmcb store: no VMCB mapped")
        name, _ = VMCB_STORE_TARGETS[instr.op("target")
                                     % len(VMCB_STORE_TARGETS)]
        vmcb12.write(name, instr.op("value"))
        return ExecResult.success(f"vmcb store {name}")

    def _reenter(self, hv: L0Hypervisor, vcpu, stats: HarnessStats) -> bool:
        """Step 3: resume the L2 guest (vmresume / vmrun)."""
        if self.vendor is Vendor.INTEL:
            instr = GuestInstruction("vmresume", {})
        else:
            instr = GuestInstruction("vmrun", {"addr": VMCB12_GPA})
        result = self._exec(hv, vcpu, instr, stats)
        stats.vm_entries += 1
        return result.ok

    # ------------------------------------------------------------------

    def _exec(self, hv: L0Hypervisor, vcpu, instr: GuestInstruction,
              stats: HarnessStats) -> ExecResult:
        stats.instructions += 1
        if instr.mnemonic == "vmcb_store":
            result = self._vmcb_store(hv, instr)
        else:
            result = hv.execute(vcpu, instr)
        if not result.ok:
            stats.faults += 1
        # Keep a bounded trace for diagnosis; the vmwrite storm would
        # flood it, so routine successful vmwrites are not recorded.
        if instr.mnemonic != "vmwrite" or not result.ok:
            if len(stats.results) < 64:
                stats.results.append(result)
        return result
