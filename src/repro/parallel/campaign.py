"""The parallel campaign orchestrator.

``ParallelCampaign`` shards one iteration budget across N workers and
merges their results. Two execution modes share all of the sharding,
sync, and merge machinery:

* ``mode="inline"`` runs the workers round-robin in this process —
  fully deterministic (chunk order and sync order are fixed), the mode
  the determinism tests and single-core CI use;
* ``mode="process"`` forks one OS process per worker for real
  parallelism; workers sync through the filesystem at their own pace,
  so merged trajectories are only reproducible in the aggregate
  (superset semantics), exactly like AFL++ primary/secondary instances.

The determinism contract: with ``workers=1`` the (single) worker uses
the campaign seed verbatim, never imports anything, and reproduces the
serial ``NecoFuzz.run`` result bit for bit. With N workers the merged
covered-line set is a superset-style union — not bit-for-bit comparable
to any serial run, but measured over the same instrumented universe.
"""

from __future__ import annotations

import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.core.executor import ComponentToggles
from repro.core.necofuzz import CampaignResult
from repro.coverage.bitmap import VirginMap
from repro.fuzzer.engine import EngineStats
from repro.parallel.sync import SyncDirectory
from repro.parallel.worker import (
    CampaignWorker,
    WorkerReport,
    WorkerSpec,
    worker_seed,
)


@dataclass
class ParallelCampaignResult(CampaignResult):
    """A merged campaign result plus the per-worker breakdown."""

    workers: int
    per_worker: list[CampaignResult]
    #: OR-merge of every worker's virgin map: the campaign-global
    #: "behaviour already seen" map.
    virgin: VirginMap

    def summary(self) -> str:
        return (super().summary()
                + f", {self.workers} worker(s), "
                  f"{self.engine_stats.imported} synced import(s)")


def _merge_stats(stats: list[EngineStats]) -> EngineStats:
    return EngineStats(
        iterations=sum(s.iterations for s in stats),
        queue_adds=sum(s.queue_adds for s in stats),
        crashes=sum(s.crashes for s in stats),
        anomalies=sum(s.anomalies for s in stats),
        last_find=max((s.last_find for s in stats), default=0),
        imported=sum(s.imported for s in stats))


def _merge_virgin(reports: list[WorkerReport]) -> VirginMap:
    merged = VirginMap()
    scratch = VirginMap()
    for report in reports:
        scratch.bits = bytearray(report.virgin_bits)
        merged.merge_from(scratch)
    return merged


def _merge_timeline(reports: list[WorkerReport], instrumented_total: int,
                    label: str, iterations_per_hour: float) -> CoverageTimeline:
    """Union coverage over a lockstep global-iteration axis.

    At local sample iteration ``i`` the campaign as a whole has executed
    ``sum(min(i, share_w))`` cases (workers advance round-robin), and
    covers the union of every worker's lines up to ``i`` — monotone and
    deterministic given the workers' sample deltas.
    """
    merged = CoverageTimeline(label, iterations_per_hour)
    if not instrumented_total:
        return merged
    grid = sorted({i for report in reports for i, _ in report.samples})
    union: set = set()
    positions = {report.index: 0 for report in reports}
    for sample_iter in grid:
        for report in reports:
            pos = positions[report.index]
            samples = report.samples
            while pos < len(samples) and samples[pos][0] <= sample_iter:
                union |= samples[pos][1]
                pos += 1
            positions[report.index] = pos
        global_iter = sum(min(sample_iter, report.share) for report in reports)
        merged.record(global_iter, len(union) / instrumented_total)
    return merged


def _process_worker_main(spec: WorkerSpec, campaign_kwargs: dict,
                         sample_every: int, sync_every: int, root: str,
                         total_workers: int, out_path: str) -> None:
    """Child-process entry point: run one share, pickle the report."""
    worker = CampaignWorker(
        spec, campaign_kwargs, sample_every=sample_every,
        sync=SyncDirectory(Path(root), spec.index, total_workers))
    report = worker.run_share(sync_every)
    with open(out_path, "wb") as f:
        pickle.dump(report, f)


@dataclass
class ParallelCampaign:
    """One logical campaign sharded across N workers."""

    hypervisor: str = "kvm"
    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    workers: int = 1
    #: Iterations each worker runs between corpus-sync points.
    sync_every: int = 100
    mode: str = "inline"  # "inline" (deterministic) or "process" (forked)
    #: Sync-directory root; a temporary directory when None.
    sync_dir: Path | None = None
    toggles: ComponentToggles = field(default_factory=ComponentToggles)
    coverage_guided: bool = True
    patched: frozenset = frozenset()
    runtime_iterations: int = 24
    async_events: bool = False
    iterations_per_hour: float = 10.0
    reuse_hypervisor: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in ("inline", "process"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.sync_every < 1:
            raise ValueError("sync_every must be >= 1")

    # ------------------------------------------------------------------

    def _campaign_kwargs(self) -> dict:
        """NecoFuzz construction arguments shared by every worker."""
        return dict(
            hypervisor=self.hypervisor,
            vendor=self.vendor,
            toggles=self.toggles,
            coverage_guided=self.coverage_guided,
            patched=self.patched,
            runtime_iterations=self.runtime_iterations,
            async_events=self.async_events,
            iterations_per_hour=self.iterations_per_hour,
            reuse_hypervisor=self.reuse_hypervisor)

    def _specs(self, iterations: int) -> list[WorkerSpec]:
        base, remainder = divmod(iterations, self.workers)
        return [
            WorkerSpec(index=i,
                       seed=worker_seed(self.seed, i),
                       iterations=base + (1 if i < remainder else 0))
            for i in range(self.workers)
        ]

    def run(self, iterations: int, *,
            sample_every: int = 10) -> ParallelCampaignResult:
        """Run the sharded campaign for *iterations* total test cases."""
        if self.sync_dir is not None:
            root = Path(self.sync_dir)
            root.mkdir(parents=True, exist_ok=True)
            return self._run_in(root, iterations, sample_every)
        with tempfile.TemporaryDirectory(prefix="necofuzz-sync-") as tmp:
            return self._run_in(Path(tmp), iterations, sample_every)

    def _run_in(self, root: Path, iterations: int,
                sample_every: int) -> ParallelCampaignResult:
        specs = self._specs(iterations)
        if self.mode == "process" and self.workers > 1:
            reports = self._run_processes(root, specs, sample_every)
        else:
            reports = self._run_inline(root, specs, sample_every)
        return self._merge(reports)

    # --- inline mode --------------------------------------------------------

    def _run_inline(self, root: Path, specs: list[WorkerSpec],
                    sample_every: int) -> list[WorkerReport]:
        syncing = self.workers > 1
        workers = [
            CampaignWorker(
                spec, self._campaign_kwargs(), sample_every=sample_every,
                sync=SyncDirectory(root, spec.index, self.workers)
                if syncing else None)
            for spec in specs
        ]
        while any(not worker.finished for worker in workers):
            for worker in workers:
                if not worker.finished:
                    worker.run_chunk(self.sync_every)
                    worker.export()
            if syncing:
                # Bidirectional round: everyone has published, so every
                # worker sees every partner's finds from this round.
                for worker in workers:
                    worker.import_new()
        return [worker.report() for worker in workers]

    # --- process mode -------------------------------------------------------

    def _run_processes(self, root: Path, specs: list[WorkerSpec],
                       sample_every: int) -> list[WorkerReport]:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            ctx = multiprocessing.get_context()
        out_paths = [root / f"report-{spec.index:03d}.pkl" for spec in specs]
        procs = [
            ctx.Process(
                target=_process_worker_main,
                args=(spec, self._campaign_kwargs(), sample_every,
                      self.sync_every, str(root), self.workers,
                      str(out_path)),
                daemon=False)
            for spec, out_path in zip(specs, out_paths)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        reports = []
        for spec, proc, out_path in zip(specs, procs, out_paths):
            if proc.exitcode != 0 or not out_path.exists():
                raise RuntimeError(
                    f"worker {spec.index} failed (exit {proc.exitcode})")
            with open(out_path, "rb") as f:
                reports.append(pickle.load(f))
        return reports

    # --- merge --------------------------------------------------------------

    def _merge(self, reports: list[WorkerReport]) -> ParallelCampaignResult:
        reports = sorted(reports, key=lambda r: r.index)
        instrumented = reports[0].result.instrumented_lines
        for report in reports[1:]:
            assert report.result.instrumented_lines == instrumented, \
                "workers disagree on the instrumented universe"
        covered: set = set()
        merged_reports = []
        for report in reports:
            covered |= report.result.covered_lines
            merged_reports.extend(report.result.reports)
        label = f"NecoFuzz/{self.hypervisor}/{self.vendor.value}"
        timeline = _merge_timeline(reports, len(instrumented), label,
                                   self.iterations_per_hour)
        return ParallelCampaignResult(
            timeline=timeline,
            covered_lines=covered,
            instrumented_lines=set(instrumented),
            reports=merged_reports,
            engine_stats=_merge_stats([r.result.engine_stats for r in reports]),
            watchdog_restarts=sum(r.result.watchdog_restarts for r in reports),
            workers=self.workers,
            per_worker=[r.result for r in reports],
            virgin=_merge_virgin(reports))
