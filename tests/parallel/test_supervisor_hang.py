"""Hang detection must live entirely on the monotonic clock.

The regression pinned here: ``Supervisor._hung`` used to compare a
heartbeat file's *wall-clock* mtime against ``time.time()``. Any skew
between the filesystem clock and the wall clock — an NTP step
mid-campaign, a container whose mount stamps in a different epoch —
made a perfectly live worker look hung. The fixed detector only ever
compares an mtime token against other observations of the same file,
and measures staleness with ``time.monotonic``.
"""

import os
import time

import pytest

from repro.parallel.supervisor import (
    Supervisor,
    SupervisorConfig,
    heartbeat_path,
)
from repro.parallel.worker import WorkerSpec

TIMEOUT = 0.5
GRACE = 0.2


@pytest.fixture
def supervisor(tmp_path):
    spec = WorkerSpec(index=0, seed=1, iterations=10)
    return Supervisor(
        root=tmp_path, specs=[spec], campaign_kwargs={}, sample_every=10,
        sync_every=10,
        config=SupervisorConfig(case_timeout=TIMEOUT, startup_grace=GRACE))


def stamp(root, case: int, *, mtime: float | None = None) -> None:
    """Write the heartbeat like a worker would; optionally skew its mtime."""
    beat = heartbeat_path(root, 0)
    beat.parent.mkdir(parents=True, exist_ok=True)
    beat.write_text(f"{case}\n")
    if mtime is not None:
        os.utime(beat, (mtime, mtime))


class TestHungDetection:
    def test_fresh_heartbeat_is_not_hung(self, supervisor, tmp_path):
        stamp(tmp_path, 1)
        assert not supervisor._hung(0, started=time.monotonic())

    def test_wall_clock_skewed_mtime_does_not_flag_a_live_worker(
            self, supervisor, tmp_path):
        # A heartbeat stamped "ten hours ago" by a skewed filesystem
        # clock. The old `time.time() - mtime > timeout` check declared
        # this worker hung instantly; the token-based detector must not.
        started = time.monotonic()
        stamp(tmp_path, 1, mtime=time.time() - 36_000)
        assert not supervisor._hung(0, started)
        # The worker keeps making progress (new token every stamp), the
        # skew persists — still never hung.
        stamp(tmp_path, 2, mtime=time.time() - 36_000)
        assert not supervisor._hung(0, started)

    def test_mtime_in_the_future_does_not_flag_either(self, supervisor,
                                                      tmp_path):
        stamp(tmp_path, 1, mtime=time.time() + 36_000)
        assert not supervisor._hung(0, started=time.monotonic())

    def test_unchanged_token_past_deadline_is_hung(self, supervisor,
                                                   tmp_path):
        stamp(tmp_path, 1)
        started = time.monotonic()
        assert not supervisor._hung(0, started)  # first sighting
        # Simulate the deadline passing without re-stamping the file:
        # backdate the monotonic first-seen instant of the cached token.
        token, seen_at = supervisor._beat_seen[0]
        supervisor._beat_seen[0] = (token, seen_at - TIMEOUT - 0.01)
        assert supervisor._hung(0, started)

    def test_progress_resets_the_staleness_clock(self, supervisor, tmp_path):
        stamp(tmp_path, 1)
        started = time.monotonic()
        supervisor._hung(0, started)
        token, seen_at = supervisor._beat_seen[0]
        supervisor._beat_seen[0] = (token, seen_at - TIMEOUT - 0.01)
        stamp(tmp_path, 2)  # the case finished: new token
        assert not supervisor._hung(0, started)
        assert supervisor._beat_seen[0][0] != token

    def test_no_heartbeat_yet_uses_startup_grace(self, supervisor):
        now = time.monotonic()
        assert not supervisor._hung(0, started=now)
        assert supervisor._hung(0, started=now - TIMEOUT - GRACE - 0.01)

    def test_vanished_heartbeat_forgets_the_cached_token(self, supervisor,
                                                         tmp_path):
        stamp(tmp_path, 1)
        supervisor._hung(0, started=time.monotonic())
        assert 0 in supervisor._beat_seen
        heartbeat_path(tmp_path, 0).unlink()
        supervisor._hung(0, started=time.monotonic())
        assert 0 not in supervisor._beat_seen
