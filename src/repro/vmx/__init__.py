"""Intel VT-x data model: VMCS layout, control bits, capability MSRs."""

from repro.vmx.exit_reasons import ExitReason, VmInstructionError
from repro.vmx.msr_caps import VmxCapabilities, capabilities_for_features, default_capabilities
from repro.vmx.vmcs import Vmcs

__all__ = [
    "Vmcs",
    "ExitReason",
    "VmInstructionError",
    "VmxCapabilities",
    "capabilities_for_features",
    "default_capabilities",
]
