"""Line-coverage collection for the simulated hypervisors (kcov analogue).

The paper measures coverage with KCOV on KVM and gcov on Xen, restricted
to the nested-virtualization source files (``nested.c`` etc.). We do the
same thing for the simulated hypervisors, restricted to the
nested-virtualization *Python modules* and counting executable statement
lines the way gcov counts instrumented lines.

Only statements inside function bodies count as instrumented: module and
class bodies run at import time, before any fuzzing, and would dilute
the denominator the way unreachable boilerplate would in C.

Two collection strategies are available:

* the **legacy** mode (``fast_path=False``) installs a ``sys.settrace``
  global trace for the whole test case, paying one Python callback per
  function call anywhere in the interpreter plus one per executed line
  in target code — the pre-optimization behaviour;
* the **compiled fast path** (default) rewrites the target modules'
  function code objects in place, inserting a ``__kcov_rec__((file,
  line))`` marker call before every traceable statement. The marker is
  a bound ``list.append`` (a C call, no Python frame), so recording one
  line costs nanoseconds instead of a trace callback, and ``settrace``
  is never installed at all. While no tracer is active the markers
  append into a shared ``deque(maxlen=0)`` null sink, so instrumented
  modules are almost free to run untraced.

Both modes record the same covered *line* set over the instrumented
universe (pinned by tests/integration/test_tracer_equivalence.py). Edge
sets are mode-specific: settrace observes per-iteration loop-header
transitions and generator re-entries that statement markers summarise
differently, so AFL bitmaps — and therefore campaign trajectories — are
only comparable within one mode. Campaigns are deterministic per mode.
"""

from __future__ import annotations

import ast
import collections
import sys
from itertools import islice
from types import FrameType, FunctionType, ModuleType
from typing import Iterable

Line = tuple[str, int]


#: Memoized per-file analysis results. Source files do not change while
#: the interpreter runs, so re-parsing a target module for every
#: Agent/campaign construction is pure waste (visible in short-campaign
#: benchmarks and in per-worker startup of parallel campaigns).
_EXEC_LINES_CACHE: dict[str, frozenset[Line]] = {}

#: Shared null sink: ``_NULL_SINK.append`` discards its argument in O(1)
#: without retaining memory, which is what ``__kcov_rec__`` points at
#: whenever no fast-path tracer is active.
_NULL_SINK: collections.deque = collections.deque(maxlen=0)

#: Files whose modules have been instrumented, mapped to the qualnames
#: of functions that could not be swapped (empty in the normal case).
_INSTRUMENTED: dict[str, tuple[str, ...]] = {}

#: The tracer currently collecting (at most one process-wide).
_ACTIVE_TRACER: "KcovTracer | None" = None


def event_sink() -> "list[Line] | None":
    """The active fast-path tracer's event list, or ``None``.

    Consumers that memoize instrumented code (repro.perf.memoized_check)
    use this to record the event slice a computation emitted and to
    replay it on cache hits, keeping line and edge coverage identical
    between cached and recomputed paths.
    """
    tracer = _ACTIVE_TRACER
    if tracer is not None and tracer.fast_path:
        return tracer._events
    return None


def legacy_trace_active() -> bool:
    """True while a legacy (``sys.settrace``) tracer is collecting.

    settrace events cannot be replayed from a recorded slice, so
    memoization of instrumented code must be bypassed in this mode.
    """
    tracer = _ACTIVE_TRACER
    return tracer is not None and not tracer.fast_path


# --- AST analysis and marker insertion ----------------------------------------


def _is_docstring(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str))


def _is_untraceable(stmt: ast.stmt) -> bool:
    """Statements that compile to no traceable bytecode of their own."""
    if isinstance(stmt, (ast.Global, ast.Nonlocal)):
        return True
    # Constant expression statements (docstrings, bare ``...``) are
    # optimized away by the compiler and never produce a line event.
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


def _marker(filename: str, lineno: int) -> ast.Expr:
    """Build ``__kcov_rec__((filename, lineno))`` attributed to *lineno*.

    The marker carries the line number of the statement it records, so
    a settrace tracer running over instrumented code sees no alien
    lines (the marker bytecode merges into the statement's line).
    """
    node = ast.Expr(value=ast.Call(
        func=ast.Name(id="__kcov_rec__", ctx=ast.Load()),
        args=[ast.Constant(value=(filename, lineno))],
        keywords=[],
    ))
    for sub in ast.walk(node):
        sub.lineno = sub.end_lineno = lineno
        sub.col_offset = sub.end_col_offset = 0
    return node


def _process_tree(tree: ast.Module, filename: str) -> set[int]:
    """Insert markers into every function body; return statement linenos.

    The returned set *is* the instrumented-line universe for the file:
    the walker is the single source of truth shared by
    :func:`executable_lines` and :func:`instrument_module`, so the
    denominator and what the markers can record always agree.
    """
    lines: set[int] = set()

    def entry_lineno(fn) -> int:
        # settrace 'call' events report co_firstlineno, which for a
        # decorated function is the first decorator's line.
        if fn.decorator_list:
            return fn.decorator_list[0].lineno
        return fn.lineno

    def do_container(body: list[ast.stmt]) -> None:
        # Module or class body: never instrumented (runs at import),
        # but walk it to reach the function definitions inside.
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                do_function(stmt)
            elif isinstance(stmt, ast.ClassDef):
                do_container(stmt.body)
            elif isinstance(stmt, (ast.If, ast.Try)):
                for sub in (getattr(stmt, "body", []),
                            getattr(stmt, "orelse", []),
                            getattr(stmt, "finalbody", [])):
                    do_container(sub)
                for handler in getattr(stmt, "handlers", []):
                    do_container(handler.body)
            elif isinstance(stmt, (ast.With, ast.For, ast.While)):
                do_container(stmt.body)

    def do_function(fn) -> None:
        entry = entry_lineno(fn)
        lines.add(entry)
        body = list(fn.body)
        head: list[ast.stmt] = []
        if body and _is_docstring(body[0]):
            # Keep the docstring first so __doc__ survives.
            head.append(body.pop(0))
        fn.body = head + [_marker(filename, entry)] + do_stmts(body)

    def do_stmts(stmts: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # The ``def`` statement itself executes in this scope;
                # the body becomes its own instrumented unit.
                lines.add(stmt.lineno)
                out.append(_marker(filename, stmt.lineno))
                do_function(stmt)
                out.append(stmt)
                continue
            if isinstance(stmt, ast.ClassDef):
                lines.add(stmt.lineno)
                out.append(_marker(filename, stmt.lineno))
                do_container(stmt.body)
                out.append(stmt)
                continue
            if _is_untraceable(stmt):
                out.append(stmt)
                continue
            lines.add(stmt.lineno)
            out.append(_marker(filename, stmt.lineno))
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # Loop headers re-fire per iteration under settrace; a
                # body-top marker with the header's line reproduces the
                # loop-back transition for the edge bitmap.
                stmt.body = [_marker(filename, stmt.lineno)] + do_stmts(stmt.body)
                stmt.orelse = do_stmts(stmt.orelse)
            elif isinstance(stmt, ast.If):
                stmt.body = do_stmts(stmt.body)
                stmt.orelse = do_stmts(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                stmt.body = do_stmts(stmt.body)
            elif isinstance(stmt, ast.Try):
                stmt.body = do_stmts(stmt.body)
                for handler in stmt.handlers:
                    lines.add(handler.lineno)
                    handler.body = ([_marker(filename, handler.lineno)]
                                    + do_stmts(handler.body))
                stmt.orelse = do_stmts(stmt.orelse)
                stmt.finalbody = do_stmts(stmt.finalbody)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    case.body = do_stmts(case.body)
            out.append(stmt)
        return out

    do_container(tree.body)
    return lines


def _parse(filename: str) -> ast.Module:
    with open(filename, encoding="utf-8") as f:
        return ast.parse(f.read(), filename)


def executable_lines(module: ModuleType) -> frozenset[Line]:
    """All instrumentable (file, line) pairs of *module*'s function bodies.

    The universe is the set of statement lines inside functions — the
    exact lines the fast-path markers can record, and a subset of what
    settrace reports (settrace additionally sees continuation lines of
    multi-line statements; those are clipped by the intersection both
    :class:`repro.coverage.report.CoverageReport` and
    :meth:`KcovTracer.coverage_fraction` apply).

    Results are memoized per source file; the returned set is immutable.
    """
    filename = module.__file__
    if filename is None:
        raise ValueError(f"module {module.__name__} has no source file")
    cached = _EXEC_LINES_CACHE.get(filename)
    if cached is not None:
        return cached
    linenos = _process_tree(_parse(filename), filename)
    result = frozenset((filename, n) for n in linenos)
    _EXEC_LINES_CACHE[filename] = result
    return result


# --- in-place code instrumentation --------------------------------------------


def _collect_code(code, table: dict) -> None:
    table[code.co_qualname] = code
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            _collect_code(const, table)


def instrument_module(module: ModuleType) -> tuple[str, ...]:
    """Compile marker-instrumented code for *module* and swap it in.

    Every function/method whose code lives in the module's source file
    gets its ``__code__`` replaced by the instrumented equivalent —
    in-place, so aliases created by ``from x import f`` or method
    references taken earlier all see the markers. The module gains a
    ``__kcov_rec__`` global pointing at the null sink until a tracer
    activates it.

    Idempotent; returns the qualnames that could not be swapped (normally
    empty — e.g. a decorator-hidden function without ``__wrapped__``).
    """
    filename = module.__file__
    if filename is None:
        return ()
    done = _INSTRUMENTED.get(filename)
    if done is not None:
        return done

    tree = _parse(filename)
    linenos = _process_tree(tree, filename)
    _EXEC_LINES_CACHE.setdefault(
        filename, frozenset((filename, n) for n in linenos))
    table: dict[str, object] = {}
    _collect_code(compile(tree, filename, "exec"), table)

    failed: list[str] = []
    seen: set[int] = set()

    def swap(fn: FunctionType) -> None:
        if id(fn) in seen or fn.__code__.co_filename != filename:
            return
        seen.add(id(fn))
        new = table.get(fn.__code__.co_qualname)
        if new is None or new.co_freevars != fn.__code__.co_freevars:
            failed.append(fn.__qualname__)
            return
        fn.__code__ = new

    def visit(obj) -> None:
        if isinstance(obj, FunctionType):
            swap(obj)
            wrapped = getattr(obj, "__wrapped__", None)
            if isinstance(wrapped, FunctionType):
                swap(wrapped)
        elif isinstance(obj, (staticmethod, classmethod)):
            visit(obj.__func__)
        elif isinstance(obj, property):
            for accessor in (obj.fget, obj.fset, obj.fdel):
                if accessor is not None:
                    visit(accessor)

    for obj in list(vars(module).values()):
        if isinstance(obj, type) and obj.__module__ == module.__name__:
            for member in list(vars(obj).values()):
                visit(member)
        else:
            visit(obj)

    module.__kcov_rec__ = _NULL_SINK.append  # type: ignore[attr-defined]
    result = tuple(failed)
    _INSTRUMENTED[filename] = result
    return result


class KcovTracer:
    """Record executed lines in a fixed set of target modules.

    :meth:`drain` harvests the current test case's line set and edge set
    (consecutive-line transitions, the raw material for the AFL bitmap);
    the caller (the agent) merges them into campaign-cumulative state.

    With ``fast_path=True`` (the default) the target modules are
    instrumented with inline marker calls and ``sys.settrace`` is never
    used; with ``fast_path=False`` the pre-optimization settrace global
    trace runs instead. See the module docstring for the equivalence
    contract between the two modes.
    """

    def __init__(self, modules: Iterable[ModuleType], *,
                 fast_path: bool = True) -> None:
        self.modules = tuple(modules)
        self.fast_path = fast_path
        self.instrumented: set[Line] = set()
        self._files: set[str] = set()
        self.unswapped: tuple[str, ...] = ()
        for module in self.modules:
            self.instrumented |= executable_lines(module)
            if module.__file__:
                self._files.add(module.__file__)
            if fast_path:
                self.unswapped += instrument_module(module)
        #: Fast path: markers append (file, line) tuples here in
        #: execution order while the tracer is active.
        self._events: list[Line] = []
        self.run_lines: set[Line] = set()
        self.run_edges: set[tuple[Line, Line]] = set()
        self._prev: Line | None = None
        self._active = False

    # --- pickling (campaign checkpoints) -----------------------------------

    def __getstate__(self) -> dict:
        """Pickle by module *name*: module objects cannot be pickled.

        Campaign checkpoints snapshot whole workers (agent included);
        the tracer re-imports and, on the fast path, re-instruments its
        targets on restore — both idempotent per process.
        """
        state = self.__dict__.copy()
        state["modules"] = tuple(m.__name__ for m in self.modules)
        state["_events"] = list(self._events)
        state["_active"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        import importlib

        names = state.pop("modules")
        self.__dict__.update(state)
        self.modules = tuple(importlib.import_module(n) for n in names)
        if self.fast_path:
            unswapped: tuple[str, ...] = ()
            for module in self.modules:
                unswapped += instrument_module(module)
            self.unswapped = unswapped

    # --- legacy settrace plumbing ------------------------------------------

    def _local_trace(self, frame: FrameType, event: str, arg):
        if event == "line":
            cur = (frame.f_code.co_filename, frame.f_lineno)
            self.run_lines.add(cur)
            if self._prev is not None:
                self.run_edges.add((self._prev, cur))
            self._prev = cur
        return self._local_trace

    def _global_trace(self, frame: FrameType, event: str, arg):
        if event == "call" and frame.f_code.co_filename in self._files:
            cur = (frame.f_code.co_filename, frame.f_code.co_firstlineno)
            self.run_lines.add(cur)
            if self._prev is not None:
                self.run_edges.add((self._prev, cur))
            self._prev = cur
            return self._local_trace
        return None

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin collecting (nested/concurrent tracers are rejected)."""
        global _ACTIVE_TRACER
        if self._active:
            raise RuntimeError("tracer already active")
        if _ACTIVE_TRACER is not None:
            raise RuntimeError("another KcovTracer is already active")
        self._active = True
        self._prev = None
        _ACTIVE_TRACER = self
        if self.fast_path:
            record = self._events.append
            for module in self.modules:
                module.__kcov_rec__ = record  # type: ignore[attr-defined]
        else:
            sys.settrace(self._global_trace)

    def stop(self) -> None:
        """Stop collecting."""
        global _ACTIVE_TRACER
        if self.fast_path:
            for module in self.modules:
                module.__kcov_rec__ = _NULL_SINK.append  # type: ignore[attr-defined]
        else:
            sys.settrace(None)
        if _ACTIVE_TRACER is self:
            _ACTIVE_TRACER = None
        self._active = False

    def __enter__(self) -> "KcovTracer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def drain(self) -> tuple[set[Line], set[tuple[Line, Line]]]:
        """Harvest and reset the current run's lines and edges."""
        if self.fast_path:
            events = self._events
            lines = set(events)
            edges = set(zip(events, islice(events, 1, None)))
            # Clear in place: active markers hold a reference to the
            # bound append of this exact list.
            events.clear()
            return lines, edges
        lines, edges = self.run_lines, self.run_edges
        self.run_lines, self.run_edges = set(), set()
        self._prev = None
        return lines, edges

    # --- reporting helpers ---------------------------------------------------

    def coverage_fraction(self, covered: set[Line]) -> float:
        """Covered fraction of the instrumented lines."""
        if not self.instrumented:
            return 0.0
        return len(covered & self.instrumented) / len(self.instrumented)
