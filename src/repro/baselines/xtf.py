"""Xen Test Framework (XTF) baseline (paper §5.4, Table 4).

XTF provides microkernel-style test kernels for Xen. Its nested-virt
coverage is thin — the paper measures 20.4% (Intel) / 10.8% (AMD) —
because only a handful of smoke tests touch nvmx/nestedsvm at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_EFER
from repro.arch.registers import Efer
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.core.templates import VMCB12_GPA, VMCS12_GPA, VMXON_GPA
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.xen import XenHypervisor
from repro.vmx import fields as F


def _run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def test_nested_vmx_smoke(hv):
    """test-hvm64-vvmx: vmxon/vmxoff round trip plus a vmptrld."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmclear", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmptrld", addr=VMCS12_GPA)
    _run(hv, vcpu, "vmptrst")
    _run(hv, vcpu, "vmxoff")


def test_nested_vmx_vmxon_errors(hv):
    """vmxon error-path probes (the bulk of XTF's vvmx content)."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmxon", addr=0x123)
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmxon", addr=VMXON_GPA)
    _run(hv, vcpu, "vmwrite", field=int(F.GUEST_RIP), value=0)
    _run(hv, vcpu, "vmxoff")


def test_nested_svm_smoke(hv):
    """SVM instruction availability probes.

    XTF has no full nested-SVM bring-up: its probes check that the SVM
    instructions are decoded/gated correctly, never a successful vmrun
    (hence the paper's 10.8% AMD coverage).
    """
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "vmrun", addr=VMCB12_GPA)  # EFER.SVME clear -> #UD
    _run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    _run(hv, vcpu, "vmrun", addr=0x123)       # misaligned -> #GP
    _run(hv, vcpu, "vmload", addr=0x123)
    _run(hv, vcpu, "skinit", value=0)


def test_nested_svm_gif(hv):
    """XTF: stgi/clgi round trip."""
    vcpu = hv.create_vcpu()
    _run(hv, vcpu, "wrmsr", msr=IA32_EFER, value=Efer.SVME)
    _run(hv, vcpu, "clgi")
    _run(hv, vcpu, "stgi")


INTEL_XTF_TESTS = (
    ("test-hvm64-vvmx-smoke", test_nested_vmx_smoke),
    ("test-hvm64-vvmx-vmxon", test_nested_vmx_vmxon_errors),
)

AMD_XTF_TESTS = (
    ("test-hvm64-nestedsvm-smoke", test_nested_svm_smoke),
    ("test-hvm64-nestedsvm-gif", test_nested_svm_gif),
)


@dataclass
class XtfSuite:
    """Run the fixed XTF list once against the Xen model."""

    vendor: Vendor = Vendor.INTEL

    def run(self) -> CampaignResult:
        """Run the suite/campaign and return a CampaignResult."""
        harness = BaselineHarness("XTF", self.vendor, XenHypervisor)
        tests = INTEL_XTF_TESTS if self.vendor is Vendor.INTEL else AMD_XTF_TESTS
        for _, test in tests:
            hv = XenHypervisor(VcpuConfig.default(self.vendor))
            harness.run_case(hv, test)
        return harness.result()

    def test_names(self) -> tuple[str, ...]:
        """Names of the fixed test cases, in execution order."""
        tests = INTEL_XTF_TESTS if self.vendor is Vendor.INTEL else AMD_XTF_TESTS
        return tuple(name for name, _ in tests)
