"""Throughput benchmark: serial hot path and sharded campaigns.

Measures the cases/sec impact of this PR's two performance levers and
writes the numbers to ``BENCH_throughput.json`` at the repo root:

* the AST-marker coverage fast path vs. the legacy ``sys.settrace``
  tracer on an identical serial campaign (acceptance floor: >= 1.5x);
* process-mode ``ParallelCampaign`` wall-clock vs. serial for the same
  budget, with the per-phase sync-overhead breakdown (export / manifest
  scan / subsumption filter / import execution seconds) recorded so a
  regression in the corpus protocol shows up as a number, not a vibe —
  inline fallback (mode recorded) on single-core CI;
* static sharding vs. the work-stealing lease schedule on the same
  forked-worker budget, with lease/steal/reclaim counts recorded
  (logged null stage on single-CPU runners);
* the ``VirginMap.merge_from`` no-change fast path vs. a forced full
  merge on identical payloads.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from common import BenchReport, PhaseDeadline, bench_budget
from repro import NecoFuzz, Vendor
from repro.coverage.bitmap import CoverageBitmap, VirginMap
from repro.coverage.kcov import KcovTracer
from repro.hypervisors import HYPERVISORS
from repro.parallel import ParallelCampaign

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
DEFAULT_BUDGET = 400
#: ``NECOFUZZ_BENCH_BUDGET`` shrinks the budget for CI smoke runs and
#: doubles as a hard per-phase wall-clock deadline (seconds); the
#: speedup floors are only asserted at the full, untruncated budget.
BUDGET = bench_budget(DEFAULT_BUDGET)
SEED = 7
#: Acceptance floor from the issue; measured ~3x on the dev container.
MIN_SERIAL_SPEEDUP = 1.5


def _update_json(section: str, payload: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    data["config"] = {"hypervisor": "kvm", "vendor": "intel",
                      "seed": SEED, "iterations": BUDGET}
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed_serial(fast_path: bool) -> tuple[float, float, bool]:
    """One serial phase; returns (cases/sec, coverage, truncated).

    The campaign is stepped manually so the phase deadline is a hard
    stop mid-campaign, not a post-hoc observation.
    """
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED)
    if not fast_path:
        modules = HYPERVISORS["kvm"].nested_modules(Vendor.INTEL)
        campaign.agent.tracer = KcovTracer(modules, fast_path=False)
    deadline = PhaseDeadline()
    start = time.perf_counter()
    ran = deadline.run(BUDGET, campaign.engine.step)
    elapsed = time.perf_counter() - start
    return ran / elapsed, campaign.agent.coverage_fraction, deadline.hit


@pytest.mark.benchmark(group="perf-throughput")
def test_serial_fast_path_speedup(capsys):
    fast_cps, fast_cov, fast_cut = _timed_serial(fast_path=True)
    legacy_cps, legacy_cov, legacy_cut = _timed_serial(fast_path=False)
    truncated = fast_cut or legacy_cut
    speedup = fast_cps / legacy_cps

    _update_json("serial", {
        "fast_cases_per_sec": round(fast_cps, 1),
        "legacy_cases_per_sec": round(legacy_cps, 1),
        "speedup": round(speedup, 2),
        "fast_coverage": round(fast_cov, 4),
        "legacy_coverage": round(legacy_cov, 4),
        "deadline_truncated": {"fast": fast_cut, "legacy": legacy_cut},
    })

    report = BenchReport("Serial throughput: coverage fast path")
    report.add(f"fast path   {fast_cps:7.1f} cases/s "
               f"({100 * fast_cov:.1f}% coverage)")
    report.add(f"settrace    {legacy_cps:7.1f} cases/s "
               f"({100 * legacy_cov:.1f}% coverage)")
    report.add(f"speedup     {speedup:7.2f}x  (floor {MIN_SERIAL_SPEEDUP}x)"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    if BUDGET >= DEFAULT_BUDGET and not truncated:
        assert speedup >= MIN_SERIAL_SPEEDUP


@pytest.mark.benchmark(group="perf-throughput")
def test_parallel_wall_clock(capsys):
    cpus = os.cpu_count() or 1
    # With a single CPU the process-pool numbers are meaningless, but the
    # sharded-campaign machinery still deserves a recorded data point:
    # fall back to inline (in-process) workers instead of skipping, and
    # report the mode so the JSON says what the numbers mean.
    mode = "process" if cpus >= 2 else "inline"

    serial_campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL,
                               seed=SEED)
    serial_deadline = PhaseDeadline()
    start = time.perf_counter()
    ran = serial_deadline.run(BUDGET, serial_campaign.engine.step)
    serial_s = time.perf_counter() - start
    if ran == 0:
        pytest.skip("serial phase deadline left no budget to compare")

    # The parallel phase runs the budget the serial phase actually
    # completed, so a deadline-truncated comparison stays one-to-one.
    # The pool itself cannot be stopped mid-flight; its own deadline is
    # observed post hoc and reported per sub-phase.
    workers = min(4, cpus) if mode == "process" else 2
    parallel_deadline = PhaseDeadline()
    start = time.perf_counter()
    merged = ParallelCampaign(hypervisor="kvm", vendor=Vendor.INTEL,
                              seed=SEED, workers=workers, sync_every=50,
                              mode=mode).run(ran, sample_every=100)
    parallel_s = time.perf_counter() - start
    parallel_deadline.expired()

    overhead = merged.sync_overhead
    sync_seconds = (overhead.export_seconds + overhead.scan_seconds
                    + overhead.filter_seconds + overhead.execute_seconds)
    serial_covered = serial_campaign.agent.covered_lines()
    # On a single CPU the inline fallback time-slices both "workers" on
    # one core, so a wall-clock "speedup" below 1.0 is an artifact of
    # the runner, not a regression. Report null + a flag instead of a
    # misleading number; the CI gate skips (with a logged reason) on it.
    single_cpu = cpus < 2
    _update_json("parallel", {
        "mode": mode,
        "schedule": "static",
        "cpus": cpus,
        "single_cpu": single_cpu,
        "workers": workers,
        "iterations_run": ran,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "wall_clock_speedup": (None if single_cpu
                               else round(serial_s / parallel_s, 2)),
        "serial_covered": len(serial_covered),
        "merged_covered": len(merged.covered_lines),
        "shared_virgin_map": merged.shared_virgin_map,
        "imports_skipped_subsumed":
            merged.engine_stats.imports_skipped_subsumed,
        "sync_overhead_seconds": {
            "export": round(overhead.export_seconds, 4),
            "scan": round(overhead.scan_seconds, 4),
            "filter": round(overhead.filter_seconds, 4),
            "execute": round(overhead.execute_seconds, 4),
            "total": round(sync_seconds, 4),
        },
        "deadline_truncated": {"serial": serial_deadline.hit,
                               "parallel": parallel_deadline.hit},
    })

    report = BenchReport(
        f"Parallel wall clock ({workers} {mode} workers, {cpus} CPUs)")
    report.add(f"serial      {serial_s:6.2f}s  "
               f"({len(serial_covered)} lines)")
    report.add(f"parallel    {parallel_s:6.2f}s  "
               f"({len(merged.covered_lines)} lines)")
    if single_cpu:
        report.add("speedup       n/a  (single-CPU runner: inline "
                   "workers time-slice one core)")
    else:
        report.add(f"speedup     {serial_s / parallel_s:6.2f}x"
                   + ("  [deadline truncated]" if serial_deadline.hit
                      else ""))
    report.add(f"sync        {sync_seconds:6.2f}s  "
               f"(export {overhead.export_seconds:.2f} / "
               f"scan {overhead.scan_seconds:.2f} / "
               f"filter {overhead.filter_seconds:.2f} / "
               f"execute {overhead.execute_seconds:.2f}), "
               f"{merged.engine_stats.imports_skipped_subsumed} subsumed")
    report.emit(capsys)

    assert merged.engine_stats.iterations == ran
    if (mode == "process" and BUDGET >= DEFAULT_BUDGET
            and not serial_deadline.hit):
        # Near-linear scaling floor (DESIGN.md §13): 0.7x per usable
        # core, so 2 workers on 2+ CPUs must clear 1.4x, 4 workers on
        # 4+ CPUs must clear 2.8x. Mirrored by the CI gate script.
        assert serial_s / parallel_s >= 0.7 * min(workers, cpus)


@pytest.mark.benchmark(group="perf-throughput")
def test_stealing_wall_clock(capsys):
    """Work-stealing vs. static sharding, same forked-worker budget.

    Static splits the budget up front, so the campaign's wall clock is
    its slowest shard; stealing lets fast workers drain a straggler's
    backlog. On an idle symmetric runner the two should be within noise
    of each other — the stage exists to catch the stealing machinery
    *costing* wall clock, and to put lease/steal counts in the JSON.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        _update_json("stealing", {
            "cpus": cpus,
            "single_cpu": True,
            "schedule": "stealing",
            "workers": None,
            "lease_size": 0,
            "static_seconds": None,
            "stealing_seconds": None,
            "wall_clock_speedup": None,
            "leases": None,
            "steals": None,
            "reclaims": None,
            "pool_reuse": 0,
            "deadline_truncated": {"static": False, "stealing": False},
        })
        report = BenchReport("Work-stealing wall clock")
        report.add(f"SKIP: {cpus} CPU(s) — forked workers would "
                   "time-slice one core, so static vs. stealing would "
                   "measure the runner, not the scheduler. Recorded a "
                   "null stage in BENCH_throughput.json instead.")
        report.emit(capsys)
        pytest.skip("work-stealing comparison needs >= 2 CPUs")

    workers = min(4, cpus)

    def _sharded(schedule: str, root: Path):
        deadline = PhaseDeadline()
        start = time.perf_counter()
        merged = ParallelCampaign(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
            workers=workers, sync_every=50, mode="process",
            schedule=schedule, sync_dir=root).run(BUDGET, sample_every=100)
        elapsed = time.perf_counter() - start
        deadline.expired()
        return merged, elapsed, deadline.hit

    with tempfile.TemporaryDirectory() as tmp:
        static, static_s, static_cut = _sharded("static",
                                                Path(tmp) / "static")
        stolen, stolen_s, stolen_cut = _sharded("stealing",
                                                Path(tmp) / "stealing")
    truncated = static_cut or stolen_cut
    speedup = static_s / stolen_s

    _update_json("stealing", {
        "cpus": cpus,
        "single_cpu": False,
        "schedule": "stealing",
        "workers": workers,
        "lease_size": 0,
        "static_seconds": round(static_s, 2),
        "stealing_seconds": round(stolen_s, 2),
        "wall_clock_speedup": round(speedup, 2),
        "leases": len(stolen.lease_log),
        "steals": stolen.steals,
        "reclaims": stolen.reclaims,
        "pool_reuse": stolen.pool_reuse,
        "deadline_truncated": {"static": static_cut,
                               "stealing": stolen_cut},
    })

    report = BenchReport(
        f"Work-stealing wall clock ({workers} process workers)")
    report.add(f"static      {static_s:6.2f}s")
    report.add(f"stealing    {stolen_s:6.2f}s  "
               f"({len(stolen.lease_log)} leases, {stolen.steals} "
               f"steals, {stolen.reclaims} reclaims)")
    report.add(f"ratio       {speedup:6.2f}x"
               + ("  [deadline truncated]" if truncated else ""))
    report.emit(capsys)

    assert static.engine_stats.iterations == BUDGET
    assert stolen.engine_stats.iterations == BUDGET
    assert sum(r.size for r in stolen.lease_log) == BUDGET
    if BUDGET >= DEFAULT_BUDGET and not truncated:
        # Stealing must not cost meaningful wall clock on even load.
        assert stolen_s <= 1.5 * static_s


@pytest.mark.benchmark(group="perf-throughput")
def test_federation_wall_clock(capsys):
    """Federated transport vs. inline stealing, same lease schedule.

    The federation moves every lease grant and corpus record over a
    real socket (AF_UNIX under the campaign root), so this stage prices
    the transport: wall clock against the inline stealing loop it
    reproduces, with the fingerprint-equality acceptance pin recorded
    in the JSON. On a single-CPU runner the in-process node threads
    time-slice one core either way, so the stage records null timings
    and skips, matching the stealing stage's convention.
    """
    from repro.resilience import (
        FederatedCampaign,
        campaign_fingerprint,
    )

    cpus = os.cpu_count() or 1
    lease_size = max(1, BUDGET // 8)
    if cpus < 2:
        _update_json("federation", {
            "cpus": cpus,
            "single_cpu": True,
            "workers": None,
            "lease_size": lease_size,
            "inline_seconds": None,
            "federated_seconds": None,
            "transport_overhead": None,
            "fingerprint_match": None,
            "deadline_truncated": {"inline": False, "federated": False},
        })
        report = BenchReport("Federation wall clock")
        report.add(f"SKIP: {cpus} CPU(s) — node threads would time-slice "
                   "one core, so the comparison would measure the "
                   "runner, not the transport. Recorded a null stage in "
                   "BENCH_throughput.json instead.")
        report.emit(capsys)
        pytest.skip("federation comparison needs >= 2 CPUs")

    workers = 2

    inline_deadline = PhaseDeadline()
    start = time.perf_counter()
    inline = ParallelCampaign(
        hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED, workers=workers,
        mode="inline", schedule="stealing",
        lease_size=lease_size).run(BUDGET, sample_every=100)
    inline_s = time.perf_counter() - start
    inline_deadline.expired()

    federated_deadline = PhaseDeadline()
    start = time.perf_counter()
    federated = FederatedCampaign(
        hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED, workers=workers,
        lease_size=lease_size, telemetry_mode="off").run(
            BUDGET, sample_every=100)
    federated_s = time.perf_counter() - start
    federated_deadline.expired()

    truncated = inline_deadline.hit or federated_deadline.hit
    match = campaign_fingerprint(federated) == campaign_fingerprint(inline)
    overhead = federated_s / inline_s

    _update_json("federation", {
        "cpus": cpus,
        "single_cpu": False,
        "workers": workers,
        "lease_size": lease_size,
        "inline_seconds": round(inline_s, 2),
        "federated_seconds": round(federated_s, 2),
        "transport_overhead": round(overhead, 2),
        "fingerprint_match": match,
        "deadline_truncated": {"inline": inline_deadline.hit,
                               "federated": federated_deadline.hit},
    })

    report = BenchReport(
        f"Federation wall clock ({workers} socket nodes)")
    report.add(f"inline      {inline_s:6.2f}s")
    report.add(f"federated   {federated_s:6.2f}s  "
               f"({len(federated.lease_log)} leases over the wire)")
    report.add(f"overhead    {overhead:6.2f}x"
               + ("  [deadline truncated]" if truncated else ""))
    report.add(f"fingerprint {'MATCH' if match else 'MISMATCH'}")
    report.emit(capsys)

    assert match, "federated fingerprint diverged from inline stealing"
    assert federated.engine_stats.iterations == BUDGET
    assert sum(r.size for r in federated.lease_log) == BUDGET


#: The delta stage's acceptance floor (issue): the coverage plane must
#: shrink federation wire volume by at least this factor at the full
#: shape. Measured ~5.5x on the dev container.
MIN_DELTA_REDUCTION = 5.0
#: Shape the reduction is specified at: coarse rounds (one lease per
#: node) maximize cross-node redundancy, which is exactly the traffic
#: the delta plane exists to elide.
DELTA_WORKERS = 3
DELTA_BUDGET = 3600


@pytest.mark.benchmark(group="perf-throughput")
def test_federation_delta_reduction(capsys):
    """Delta-compressed coverage plane vs. pure record replay.

    Runs the identical federated campaign twice — virgin-map deltas on
    and off — and compares total relay wire volume: record bytes plus
    delta bytes against record bytes alone. Both runs must produce the
    same campaign fingerprint (elision is observationally invisible);
    the reduction floor is only asserted at the full shape, since the
    subsumed fraction shrinks with the budget. Wire volume is
    deterministic, so unlike the wall-clock stages this one runs on any
    CPU count; a generous transport timeout keeps loaded runners from
    inflating byte counts with resends.
    """
    from repro.resilience import FederatedCampaign, campaign_fingerprint
    from repro.telemetry.report import campaign_summary

    budget = (DELTA_BUDGET if BUDGET >= DEFAULT_BUDGET
              else max(DELTA_WORKERS * 8, 3 * BUDGET))
    lease_size = budget // DELTA_WORKERS

    def run_plane(delta_plane: bool, root: Path):
        deadline = PhaseDeadline()
        start = time.perf_counter()
        result = FederatedCampaign(
            hypervisor="kvm", vendor=Vendor.INTEL, seed=11,
            workers=DELTA_WORKERS, lease_size=lease_size, sync_dir=root,
            telemetry_mode="metrics", transport_timeout=10.0,
            delta_plane=delta_plane).run(budget, sample_every=100)
        elapsed = time.perf_counter() - start
        deadline.expired()
        plane = campaign_summary(root)["coverage_plane"]
        wire_bytes = (plane.get("net.relay_bytes", 0)
                      + plane.get("net.delta_bytes", 0))
        return result, plane, wire_bytes, elapsed, deadline.hit

    with tempfile.TemporaryDirectory(prefix="necofuzz-delta-on-") as on_dir:
        on, on_plane, on_bytes, on_s, on_hit = run_plane(
            True, Path(on_dir))
    with tempfile.TemporaryDirectory(prefix="necofuzz-delta-off-") as off_dir:
        off, _off_plane, off_bytes, off_s, off_hit = run_plane(
            False, Path(off_dir))

    match = campaign_fingerprint(on) == campaign_fingerprint(off)
    reduction = off_bytes / on_bytes if on_bytes else 0.0
    truncated = on_hit or off_hit
    full_shape = budget == DELTA_BUDGET and not truncated

    _update_json("federation_delta", {
        "workers": DELTA_WORKERS,
        "budget": budget,
        "lease_size": lease_size,
        "record_replay_bytes": off_bytes,
        "delta_plane_bytes": on_bytes,
        "delta_bytes": on_plane.get("net.delta_bytes", 0),
        "records_elided": on_plane.get("net.records_delta_skipped", 0),
        "bytes_saved": on_plane.get("net.bytes_saved", 0),
        "reduction": round(reduction, 2),
        "fingerprint_match": match,
        "full_shape": full_shape,
        "seconds": {"delta_on": round(on_s, 2),
                    "delta_off": round(off_s, 2)},
    })

    report = BenchReport(
        f"Federation delta plane ({DELTA_WORKERS} nodes, "
        f"{budget} cases)")
    report.add(f"record replay {off_bytes:>12,} bytes  ({off_s:5.1f}s)")
    report.add(f"delta plane   {on_bytes:>12,} bytes  ({on_s:5.1f}s)")
    report.add(f"reduction     {reduction:6.2f}x  "
               f"({on_plane.get('net.records_delta_skipped', 0)} records "
               "elided)")
    report.add(f"fingerprint   {'MATCH' if match else 'MISMATCH'}")
    if not full_shape:
        report.add("reduction floor gated off (reduced budget or "
                   "deadline truncation)")
    report.emit(capsys)

    assert match, "delta plane changed the campaign fingerprint"
    assert on.engine_stats.iterations == budget
    if full_shape:
        assert reduction >= MIN_DELTA_REDUCTION, (
            f"coverage plane reduced wire volume only {reduction:.2f}x "
            f"(floor {MIN_DELTA_REDUCTION}x)")


@pytest.mark.benchmark(group="perf-throughput")
def test_virgin_merge_fast_path(capsys):
    """`merge_from` with nothing to contribute must be near-free."""
    rounds = max(50, BUDGET)
    populated = VirginMap()
    run = CoverageBitmap()
    for i in range(3000):
        run.record_edge(i * 5, i * 5 + 1)
    populated.has_new_bits(run)
    empty = VirginMap()

    start = time.perf_counter()
    for _ in range(rounds):
        assert not populated.merge_from(empty)
    skip_s = time.perf_counter() - start

    # Forced full merges: payload differs every round, no early-out.
    # (Built outside the timed region so only merge_from is measured.)
    contributors = []
    for i in range(rounds):
        fresh = VirginMap()
        probe = CoverageBitmap()
        probe.record_edge(i, i + 1)
        fresh.has_new_bits(probe)
        contributors.append(fresh)
    start = time.perf_counter()
    for fresh in contributors:
        populated.merge_from(fresh)
    full_s = time.perf_counter() - start

    _update_json("bitmap", {
        "merge_rounds": rounds,
        "merge_skip_seconds": round(skip_s, 4),
        "merge_full_seconds": round(full_s, 4),
        "skip_speedup": round(full_s / max(skip_s, 1e-9), 1),
    })

    report = BenchReport("VirginMap.merge_from fast path")
    report.add(f"no-change skip  {1e6 * skip_s / rounds:8.1f} us/merge")
    report.add(f"full merge      {1e6 * full_s / rounds:8.1f} us/merge")
    report.add(f"speedup         {full_s / max(skip_s, 1e-9):8.1f}x")
    report.emit(capsys)

    assert full_s > skip_s
