"""Tests for the settrace-based line coverage (kcov analogue)."""

import pytest

from repro.coverage.kcov import KcovTracer, executable_lines

# A tiny target module defined in-repo for tracing tests.
from tests.coverage import traced_target


class TestExecutableLines:
    def test_function_bodies_counted(self):
        lines = executable_lines(traced_target)
        linenos = {lineno for _, lineno in lines}
        assert traced_target.BRANCH_TRUE_LINE in linenos
        assert traced_target.BRANCH_FALSE_LINE in linenos

    def test_module_level_not_counted(self):
        lines = executable_lines(traced_target)
        linenos = {lineno for _, lineno in lines}
        assert traced_target.MODULE_LEVEL_LINE not in linenos

    def test_class_body_not_counted(self):
        lines = executable_lines(traced_target)
        linenos = {lineno for _, lineno in lines}
        assert traced_target.CLASS_ATTR_LINE not in linenos

    def test_method_body_counted(self):
        lines = executable_lines(traced_target)
        linenos = {lineno for _, lineno in lines}
        assert traced_target.METHOD_BODY_LINE in linenos


class TestTracing:
    def test_branch_coverage_distinguished(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            traced_target.branchy(True)
        lines, _ = tracer.drain()
        linenos = {lineno for _, lineno in lines}
        assert traced_target.BRANCH_TRUE_LINE in linenos
        assert traced_target.BRANCH_FALSE_LINE not in linenos

        with tracer:
            traced_target.branchy(False)
        lines, _ = tracer.drain()
        linenos = {lineno for _, lineno in lines}
        assert traced_target.BRANCH_FALSE_LINE in linenos

    def test_untraced_module_ignored(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            sorted([3, 1, 2])  # stdlib work only
        lines, edges = tracer.drain()
        assert lines == set()
        assert edges == set()

    def test_edges_recorded(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            traced_target.branchy(True)
        _, edges = tracer.drain()
        assert edges  # consecutive-line transitions exist

    def test_drain_resets(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            traced_target.branchy(True)
        tracer.drain()
        assert tracer.run_lines == set()

    def test_nested_start_rejected(self):
        tracer = KcovTracer([traced_target])
        with tracer:
            with pytest.raises(RuntimeError):
                tracer.start()

    def test_coverage_fraction(self):
        tracer = KcovTracer([traced_target])
        assert tracer.coverage_fraction(set()) == 0.0
        with tracer:
            traced_target.branchy(True)
            traced_target.branchy(False)
            traced_target.Helper().method()
            traced_target.looper(3)
        lines, _ = tracer.drain()
        fraction = tracer.coverage_fraction(lines)
        assert fraction == 1.0

    def test_fraction_clips_to_instrumented(self):
        tracer = KcovTracer([traced_target])
        bogus = {("elsewhere.py", 1)}
        assert tracer.coverage_fraction(bogus) == 0.0
