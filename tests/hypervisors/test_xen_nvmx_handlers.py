"""Instruction-level tests for Xen's nvmx handlers (error paths etc.)."""

import pytest

from repro.arch.cpuid import Vendor
from repro.hypervisors import GuestInstruction, VcpuConfig, XenHypervisor
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.exit_reasons import VmInstructionError

VMXON, VMCS12 = 0x1000, 0x3000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


@pytest.fixture
def xen():
    hv = XenHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv, hv.create_vcpu()


class TestNvmxInstructionErrors:
    def test_vmxon_requires_cr4_vmxe(self, xen):
        hv, vcpu = xen
        vcpu.nvmx.cr4 = 0
        assert not run(hv, vcpu, "vmxon", addr=VMXON).ok

    def test_double_vmxon(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmxon", addr=VMXON)
        assert result.value == int(VmInstructionError.VMXON_IN_VMX_ROOT)

    def test_vmxon_misaligned(self, xen):
        hv, vcpu = xen
        result = run(hv, vcpu, "vmxon", addr=0x123)
        assert result.value == -1  # VMfailInvalid

    def test_instructions_before_vmxon_fault(self, xen):
        hv, vcpu = xen
        for mnemonic in ("vmclear", "vmptrld", "vmptrst", "vmxoff",
                         "invept", "invvpid"):
            assert not run(hv, vcpu, mnemonic, addr=VMCS12).ok

    def test_vmptrld_of_vmxon_region(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmptrld", addr=VMXON)
        assert result.value == int(VmInstructionError.VMPTRLD_VMXON_POINTER)

    def test_vmptrld_without_vmclear(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmptrld", addr=0x5000)
        assert result.value == int(
            VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID)

    def test_vmwrite_read_only_field(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        result = run(hv, vcpu, "vmwrite", field=int(F.VM_EXIT_REASON), value=1)
        assert result.value == int(
            VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)

    def test_vmread_unsupported_component(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        result = run(hv, vcpu, "vmread", field=0xDEAD)
        assert result.value == int(
            VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)

    def test_vmlaunch_without_current_vvmcs(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "vmlaunch")
        assert result.value == -1

    def test_vmresume_nonlaunched(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        result = run(hv, vcpu, "vmresume")
        assert result.value == int(
            VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

    def test_invept_bad_type(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        result = run(hv, vcpu, "invept", type=0)
        assert result.value == int(
            VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)

    def test_vmptrst_returns_pointer(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        assert run(hv, vcpu, "vmptrst").value == VMCS12

    def test_vmclear_resets_launch_state(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        for spec, value in golden_vmcs(hv.nested_vmx.caps).fields():
            if spec.group is not F.FieldGroup.READ_ONLY:
                run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
        assert run(hv, vcpu, "vmlaunch").level == 2
        run(hv, vcpu, "hlt", level=2)  # back to L1
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        result = run(hv, vcpu, "vmresume")  # clear again -> non-launched
        assert result.value == int(
            VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

    def test_entry_failure_writes_reason(self, xen):
        hv, vcpu = xen
        run(hv, vcpu, "vmxon", addr=VMXON)
        run(hv, vcpu, "vmclear", addr=VMCS12)
        run(hv, vcpu, "vmptrld", addr=VMCS12)
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_RFLAGS, 0)  # fixed-bit violation
        for spec, value in vmcs.fields():
            if spec.group is not F.FieldGroup.READ_ONLY:
                run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
        result = run(hv, vcpu, "vmlaunch")
        assert result.exit_reason is not None
        assert result.exit_reason & (1 << 31)
        vvmcs = hv.memory.get_vmcs(VMCS12)
        assert vvmcs.read(F.VM_EXIT_REASON) == result.exit_reason
