"""Evaluation methodology: statistics, timelines, Hamming-distance study."""

from repro.analysis.hamming import HammingStudy, run_study
from repro.analysis.stats import (
    Comparison,
    cohens_d,
    compare,
    confidence_interval,
    mann_whitney_u,
    median_of,
)
from repro.analysis.timeline import CoverageTimeline, TimelinePoint, median_timeline

__all__ = [
    "Comparison",
    "compare",
    "median_of",
    "confidence_interval",
    "mann_whitney_u",
    "cohens_d",
    "CoverageTimeline",
    "TimelinePoint",
    "median_timeline",
    "HammingStudy",
    "run_study",
]
