"""The federation coordinator: lease API + corpus relay over sockets.

One coordinator serves N fuzzing nodes a round-based (BSP) protocol
whose observable schedule is *identical* to the inline stealing loop in
:meth:`repro.parallel.campaign.ParallelCampaign._run_inline_stealing`:

round ``r`` (every node, in lockstep)
    1. ``claim(r)`` — a **barrier**: the coordinator waits for every
       member, then grants leases in node-index order through
       :meth:`FileLeaseBoard.claim_once` (exactly the order the inline
       loop claims in). If the board is finished at barrier release,
       every member is told ``drained`` instead — the inline loop's
       ``while not board.drained()`` check.
    2. nodes holding a lease run it, ``push`` their fresh corpus
       records (idempotent, offset-based), and ``complete`` the lease.
    3. ``fetch(r)`` — the second barrier: released only once every
       member has arrived, which guarantees every member's round-``r``
       records are in the relay. Responses carry, per partner in index
       order, the records past the requester's consumed offsets — the
       same records, in the same order, that
       :meth:`SyncDirectory.import_new` would have read off disk.

Fault tolerance (DESIGN.md §14):

* **At-least-once delivery, exactly-once apply.** Every request is
  idempotent: claims are keyed ``"round:node"`` and persisted in the
  board transaction that carves them (:meth:`FileLeaseBoard.claim_once`),
  completes tolerate replay, pushes carry a base offset and are
  deduplicated against the relay manifest, fetches for released rounds
  are recomputed from the relay (which provably contains exactly rounds
  ``<= r`` — a node cannot push round ``r+1`` records before its
  ``claim(r+1)`` grant, which needs the full barrier).
* **Crash/restart.** Everything that matters survives on disk: the
  board (+ grants), the relay queues, ``coord.json`` (fetch round,
  drained round, byes, expiries), the node reports. ``kill_coordinator``
  faults exercise exactly this path: all connections are dropped, all
  in-memory state is discarded, and the persisted state is reloaded;
  nodes reconnect with backoff and resend.
* **Liveness.** Nodes heartbeat; a member silent past ``node_ttl`` is
  expired — its unfinished leases are reclaimed for re-issue and it is
  removed from barrier membership (persisted, so a restart does not
  resurrect it). An expired node that comes back is retired politely:
  its pushes and report are still accepted (zero record loss), but it
  gets no further leases.

Barriers wait on persistent **membership** (all nodes minus byes minus
expiries), never on the currently-connected set: releasing a barrier
with partial membership would grant leases in a different order and
change the campaign fingerprint.
"""

from __future__ import annotations

import json
import logging
import pickle
import selectors
import socket
import threading
import time
from pathlib import Path

from repro import faults, telemetry
from repro.coverage import delta
from repro.coverage.bitmap import MAP_SIZE
from repro.fuzzer.crashes import atomic_write_bytes
from repro.parallel import wire
from repro.parallel.transport import frames

log = logging.getLogger("repro.parallel.transport")


class TransportError(RuntimeError):
    """The federation transport failed past its retry budget."""


# --- addresses -------------------------------------------------------------


def parse_address(text: str) -> tuple:
    """``unix:/path`` or ``host:port`` into an address tuple."""
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError(f"bad transport address {text!r} "
                             f"(unix: needs a socket path)")
        return ("unix", path)
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad transport address {text!r} (want host:port or unix:/path)")
    return ("tcp", host or "127.0.0.1", int(port))


def format_address(address: tuple) -> str:
    if address[0] == "unix":
        return f"unix:{address[1]}"
    return f"{address[1]}:{address[2]}"


#: AF_UNIX sun_path is ~104-108 bytes on the platforms we run on;
#: anything close is routed to TCP instead of failing at bind time.
_UNIX_PATH_MAX = 100


def default_local_address(root: Path) -> tuple:
    """The default federation endpoint for a campaign rooted at *root*.

    AF_UNIX under the sync root when the platform has it and the path
    fits the ``sun_path`` limit (sandboxed CI often blocks loopback
    TCP); an ephemeral loopback TCP port otherwise.
    """
    path = Path(root) / "coord.sock"
    if hasattr(socket, "AF_UNIX") and len(str(path)) <= _UNIX_PATH_MAX:
        return ("unix", str(path))
    return ("tcp", "127.0.0.1", 0)


def make_listener(address: tuple) -> tuple[socket.socket, tuple]:
    """Bound + listening server socket; returns it with the resolved
    address (TCP port 0 comes back as the actual port)."""
    if address[0] == "unix":
        path = Path(address[1])
        path.unlink(missing_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(path))
        resolved = address
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((address[1], address[2]))
        resolved = ("tcp", address[1], sock.getsockname()[1])
    sock.listen(16)
    return sock, resolved


def connect_socket(address: tuple, timeout: float) -> socket.socket:
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
    else:
        sock = socket.create_connection((address[1], address[2]),
                                        timeout=timeout)
    return sock


# --- connection bookkeeping ------------------------------------------------


class _Conn:
    """One accepted client connection."""

    __slots__ = ("sock", "decoder", "out", "node")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = frames.FrameDecoder()
        self.out = bytearray()
        self.node: int | None = None


class Coordinator:
    """Single-threaded federation server over one ``selectors`` loop.

    Single-threaded on purpose: every message is handled to completion
    before the next, so barrier releases, board transactions, and relay
    appends never interleave — the concurrency story is the protocol's,
    not the implementation's.
    """

    RELAY = "relay"
    REPORTS = "reports"
    STATE = "coord.json"
    #: Per-node virgin-map mirror inside the node's relay directory,
    #: reconstructed from its pushed NCD1 deltas (DESIGN.md §15).
    VIRGIN = "virgin.bin"

    def __init__(self, root: Path, board, workers: int, *,
                 node_ttl: float = 300.0,
                 fault_plan: faults.FaultPlan | None = None,
                 config_payload: bytes | None = None,
                 auto_stop: bool = False) -> None:
        self.root = Path(root)
        self.board = board
        self.workers = workers
        self.node_ttl = node_ttl
        self.fault_plan = fault_plan
        #: Pickled node config served to externally launched nodes
        #: (``repro --node``) in the hello reply.
        self.config_payload = config_payload
        #: Leave the serve loop once every member has byed or expired
        #: (the ``repro --coordinator`` mode; in-process campaigns stop
        #: explicitly).
        self.auto_stop = auto_stop
        self.relay_root = self.root / self.RELAY
        self.reports_dir = self.root / self.REPORTS
        self.state_path = self.root / self.STATE
        self.address: tuple | None = None
        self.error: BaseException | None = None
        self._events = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._conns: dict[socket.socket, _Conn] = {}
        self._last_seen: dict[int, float] = {}
        #: round -> {node: (conn, seq, rate)} for buffered claims.
        self._claim_waits: dict[int, dict[int, tuple]] = {}
        #: round -> {node: (conn, seq, offsets)} for buffered fetches.
        self._fetch_waits: dict[int, dict[int, tuple]] = {}
        #: node -> (manifest entries, queue.idx bytes parsed): the relay
        #: manifests are append-only, so fetches past round 0 read only
        #: the fresh tail instead of re-parsing from byte 0 every RPC.
        self._manifests: dict[int, tuple[list, int]] = {}
        #: node -> mirrored virgin bits (lazily loaded from VIRGIN).
        self._virgin_cache: dict[int, bytearray] = {}
        self._state = self._load_state()

    # --- persistent state ---------------------------------------------------

    def _default_state(self) -> dict:
        return {"fetch_round": -1, "drained_round": None,
                "byed": [], "expired": [], "assigned": 0,
                #: str(node) -> [generation, delta_round, line_universe]
                #: watermarks for the mirrored virgin maps.
                "coverage": {}}

    def _load_state(self) -> dict:
        if not self.state_path.exists():
            return self._default_state()
        try:
            state = json.loads(self.state_path.read_text())
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"coordinator state {self.state_path} is unreadable or "
                f"corrupt ({exc}); a fresh campaign must recreate it"
            ) from exc
        merged = self._default_state()
        merged.update(state)
        return merged

    def _persist(self) -> None:
        atomic_write_bytes(
            self.state_path,
            json.dumps(self._state, sort_keys=True).encode())

    def membership(self) -> set[int]:
        """The nodes barriers wait on: everyone minus byes and expiries."""
        return (set(range(self.workers))
                - set(self._state["byed"]) - set(self._state["expired"]))

    # --- lifecycle ----------------------------------------------------------

    def start(self, address: tuple) -> tuple:
        """Bind, spawn the serve thread, return the resolved address."""
        self._listener, self.address = make_listener(address)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        now = time.monotonic()
        for node in range(self.workers):
            self._last_seen.setdefault(node, now)
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="necofuzz-coordinator")
        self._thread.start()
        return self.address

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._teardown()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _teardown(self) -> None:
        for sock in list(self._conns):
            self._drop_conn(sock)
        if self._listener is not None:
            try:
                if self._selector is not None:
                    self._selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self.address is not None and self.address[0] == "unix":
            Path(self.address[1]).unlink(missing_ok=True)

    def _serve(self) -> None:
        try:
            while not self._stop.is_set():
                events = self._selector.select(timeout=0.05)
                for key, mask in events:
                    if key.fileobj is self._listener:
                        self._accept()
                        continue
                    conn = key.data
                    if mask & selectors.EVENT_READ:
                        self._readable(conn)
                    if (mask & selectors.EVENT_WRITE
                            and conn.sock in self._conns):
                        self._writable(conn)
                self._check_expiry()
                if (self.auto_stop and not self.membership()
                        and not any(c.out for c in self._conns.values())):
                    break
        except BaseException as exc:  # surfaced by the owning campaign
            self.error = exc
            log.exception("coordinator died: %s", exc)

    # --- socket plumbing ----------------------------------------------------

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Conn(sock)
        self._conns[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drop_conn(self, sock: socket.socket) -> None:
        self._conns.pop(sock, None)
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._drop_conn(conn.sock)
            return
        if not data:
            self._drop_conn(conn.sock)
            return
        try:
            received = conn.decoder.feed(data)
        except frames.FrameError as exc:
            # A corrupt link has no trustworthy stream position left:
            # drop the connection and let the sender reconnect + resend.
            telemetry.counter("net.decode_errors")
            log.warning("dropping connection after frame error: %s", exc)
            self._drop_conn(conn.sock)
            return
        for ftype, payload in received:
            telemetry.counter("net.frames_received")
            try:
                self._handle(conn, ftype, payload)
            except frames.FrameError as exc:
                telemetry.counter("net.decode_errors")
                log.warning("dropping connection after bad message: %s", exc)
                self._drop_conn(conn.sock)
                return
            if conn.sock not in self._conns:
                return  # the handler crashed the coordinator / dropped us

    def _writable(self, conn: _Conn) -> None:
        if not conn.out:
            self._selector.modify(conn.sock, selectors.EVENT_READ, conn)
            return
        try:
            sent = conn.sock.send(bytes(conn.out))
        except BlockingIOError:
            return
        except OSError:
            self._drop_conn(conn.sock)
            return
        del conn.out[:sent]
        if not conn.out:
            self._selector.modify(conn.sock, selectors.EVENT_READ, conn)

    def _queue_send(self, conn: _Conn, data: bytes) -> None:
        """Buffer *data* on *conn*; silently skipped for dead
        connections (the peer's resend path recovers the reply)."""
        if conn.sock not in self._conns:
            return
        conn.out += data
        self._selector.modify(
            conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn)

    # --- message dispatch ---------------------------------------------------

    def _handle(self, conn: _Conn, ftype: int, payload: bytes) -> None:
        if ftype in (frames.FT_BLOB, frames.FT_DELTA):
            msg, raw = frames.split_blob(payload)
        else:
            msg, raw = frames.parse_ctrl(payload), b""
        op = msg.get("op")
        node = msg.get("node")
        if isinstance(node, int):
            self._last_seen[node] = time.monotonic()
            conn.node = node
        if op == "hb":
            return  # liveness only; not a protocol event
        self._events += 1
        plan = self.fault_plan if self.fault_plan is not None \
            else faults.active()
        if plan is not None:
            spec = plan.take_coordinator_fault(self._events)
            if spec is not None:
                plan.record("kill_coordinator", None,
                            f"event {self._events} ({op})")
                self._crash()
                return  # the triggering message dies with the crash
        handler = getattr(self, f"_on_{op}", None)
        if handler is None:
            raise frames.FrameError(f"unknown op {op!r}")
        handler(conn, msg, raw)

    def _crash(self) -> None:
        """Simulated abrupt coordinator death + restart.

        Everything in memory is discarded — connections, decoders,
        buffered barrier waits — and the persisted state reloaded,
        exactly what a fresh coordinator process starting over the same
        campaign root would see. Liveness clocks restart so a partition
        during the outage is not immediately punished as an expiry.
        """
        log.warning("injected coordinator crash at event %d", self._events)
        for sock in list(self._conns):
            self._drop_conn(sock)
        self._claim_waits.clear()
        self._fetch_waits.clear()
        self._manifests.clear()
        self._virgin_cache.clear()
        self._state = self._load_state()
        now = time.monotonic()
        for node in range(self.workers):
            self._last_seen[node] = now
        telemetry.counter("net.coordinator_restarts")

    # --- liveness -----------------------------------------------------------

    def _check_expiry(self) -> None:
        if self.node_ttl <= 0:
            return
        now = time.monotonic()
        expired = [node for node in sorted(self.membership())
                   if now - self._last_seen.get(node, now) > self.node_ttl]
        for node in expired:
            reclaimed = self.board.reclaim(node)
            self._state["expired"].append(node)
            self._persist()
            telemetry.counter("net.node_expiries")
            if reclaimed:
                telemetry.counter("net.lease_expiries", reclaimed)
            log.warning("node %d expired after %.1fs of silence; "
                        "%d lease(s) reclaimed for re-issue",
                        node, self.node_ttl, reclaimed)
        if expired:
            self._reevaluate_barriers()

    def _reevaluate_barriers(self) -> None:
        for rnd in sorted(self._claim_waits):
            self._maybe_release_claim(rnd)
        for rnd in sorted(self._fetch_waits):
            self._maybe_release_fetch(rnd)

    # --- handlers -----------------------------------------------------------

    def _on_hello(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node = msg.get("node")
        if node is None:
            # Externally launched node: assign the next index and ship
            # the campaign config.
            node = self._state["assigned"]
            if node >= self.workers:
                self._queue_send(conn, frames.pack_ctrl(
                    {"op": "hello_ok", "seq": msg["seq"], "node": -1,
                     "status": "full"}))
                return
            self._state["assigned"] = node + 1
            self._persist()
            conn.node = node
            self._last_seen[node] = time.monotonic()
        status = "ok"
        if node in self._state["expired"]:
            status = "expired"
        elif node in self._state["byed"]:
            status = "retired"
        reply = {"op": "hello_ok", "seq": msg["seq"], "node": node,
                 "status": status, "workers": self.workers}
        if self.config_payload is not None and msg.get("want_config"):
            self._queue_send(conn,
                             frames.pack_blob(reply, self.config_payload))
        else:
            self._queue_send(conn, frames.pack_ctrl(reply))

    def _on_claim(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node, rnd = msg["node"], msg["round"]
        key = f"{rnd}:{node}"
        recorded, lease = self.board.recorded_grant(key)
        if recorded:
            # Barrier already released (the reply was lost, or we
            # restarted): serve the persisted outcome.
            self._send_claim_reply(conn, msg["seq"], rnd, lease=lease)
            return
        drained_round = self._state["drained_round"]
        if drained_round is not None and rnd >= drained_round:
            self._send_claim_reply(conn, msg["seq"], rnd, drained=True)
            return
        # Patient resends legitimately replace the buffered entry
        # (fresher connection + seq).
        self._claim_waits.setdefault(rnd, {})[node] = (
            conn, msg["seq"], float(msg.get("rate", 0.0)))
        self._maybe_release_claim(rnd)

    def _send_claim_reply(self, conn: _Conn, seq: int, rnd: int, *,
                          lease=None, drained: bool = False,
                          retired: bool = False) -> None:
        reply = {"op": "claim_ok", "seq": seq, "round": rnd,
                 "drained": drained, "retired": retired,
                 "lease": [lease.id, lease.size] if lease is not None
                 else None}
        self._queue_send(conn, frames.pack_ctrl(reply))

    def _maybe_release_claim(self, rnd: int) -> None:
        members = self.membership()
        waits = self._claim_waits.get(rnd, {})
        if not members or not members <= set(waits):
            return
        del self._claim_waits[rnd]
        if self.board.finished():
            # The inline loop's `while not board.drained()` check:
            # every member sees it at the same round boundary.
            self._state["drained_round"] = rnd
            self._persist()
            for node in sorted(waits):
                conn, seq, _rate = waits[node]
                self._send_claim_reply(conn, seq, rnd, drained=True)
            return
        for node in sorted(waits):
            conn, seq, rate = waits[node]
            if node not in members:
                # An expired node that came back: polite retirement —
                # no lease, and its loop ends with a report.
                self._send_claim_reply(conn, seq, rnd, retired=True)
                continue
            lease = self.board.claim_once(node, f"{rnd}:{node}", rate=rate)
            self._send_claim_reply(conn, seq, rnd, lease=lease)

    def _on_complete(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        self.board.complete(msg["lease"], msg["node"],
                            round_no=msg.get("round", 0))
        self._queue_send(conn, frames.pack_ctrl(
            {"op": "complete_ok", "seq": msg["seq"]}))

    def _relay_dir(self, node: int) -> Path:
        return self.relay_root / f"node-{node:03d}"

    def _relay_manifest(self, node: int) -> list[tuple[int, int, int]]:
        """The node's relay manifest, read incrementally.

        ``queue.idx`` under the relay is append-only (only this
        coordinator writes it), so the cache keeps the parsed entries
        plus the byte offset they came from and every later call reads
        just the fresh tail — O(new records) per fetch instead of
        O(corpus). A shrunken file (a fresh campaign reusing the root)
        falls back to a full reload; the cache dies with :meth:`_crash`
        like all in-memory state.
        """
        entries, parsed = self._manifests.get(node, ([], 0))
        idx_path = self._relay_dir(node) / wire.QUEUE_IDX
        try:
            size = idx_path.stat().st_size
        except OSError:
            size = 0
        if size < parsed:
            entries, parsed = [], 0
        usable = size - size % wire.MANIFEST_RECORD.size
        if usable > parsed:
            try:
                with open(idx_path, "rb") as handle:
                    handle.seek(parsed)
                    raw = handle.read(usable - parsed)
            except OSError:
                return entries
            tail = len(raw) - len(raw) % wire.MANIFEST_RECORD.size
            entries = entries + [
                wire.MANIFEST_RECORD.unpack_from(raw, pos)
                for pos in range(0, tail, wire.MANIFEST_RECORD.size)]
            parsed += tail
            self._manifests[node] = (entries, parsed)
        return entries

    def _on_push(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node, base = msg["node"], msg["base"]
        relay = self._relay_dir(node)
        relay.mkdir(parents=True, exist_ok=True)
        applied = len(self._relay_manifest(node))
        blobs = frames.decode_blobs(raw)
        if applied >= base:
            fresh = blobs[applied - base:]
            if fresh:
                wire.append_records(relay, fresh)
                applied += len(fresh)
                telemetry.counter("net.records_pushed", len(fresh))
        # applied < base cannot happen (the node only advances its base
        # on our acks, and the relay is persistent) — but if it ever
        # did, acking the true count makes the node back up and refill
        # the gap instead of losing records.
        self._queue_send(conn, frames.pack_ctrl(
            {"op": "push_ok", "seq": msg["seq"], "acked": applied}))

    # --- coverage plane (DESIGN.md §15) -------------------------------------

    def _node_virgin(self, node: int) -> bytearray | None:
        """The node's mirrored virgin bits, or None when unavailable."""
        bits = self._virgin_cache.get(node)
        if bits is not None:
            return bits
        if str(node) not in self._state["coverage"]:
            return None
        try:
            raw = (self._relay_dir(node) / self.VIRGIN).read_bytes()
        except OSError:
            return None
        if len(raw) != MAP_SIZE:
            return None
        bits = bytearray(raw)
        self._virgin_cache[node] = bits
        return bits

    def _store_virgin(self, node: int, bits: bytearray, generation: int,
                      round_no: int, universe: int) -> None:
        relay = self._relay_dir(node)
        relay.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(relay / self.VIRGIN, bytes(bits))
        self._virgin_cache[node] = bits
        self._state["coverage"][str(node)] = [generation, round_no,
                                              universe]
        self._persist()

    def _on_delta(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        """Apply one pushed coverage delta against its watermark.

        Accept rules: a full snapshot (``base_generation == 0``) always
        applies (it is the resync payload); an incremental delta applies
        only when its base matches the stored generation. A resend whose
        target generation we already hold is acked as a duplicate.
        Anything else — corrupt payload, watermark mismatch — gets a
        ``resync`` reply and the node falls back to a full snapshot;
        meanwhile fetches for this node fall back to full NCQ2 relay,
        so coverage semantics never depend on a delta landing.
        """
        node, rnd = msg["node"], msg["round"]
        telemetry.counter("net.delta_bytes", len(raw))
        entry = self._state["coverage"].get(str(node))
        stored_gen = entry[0] if entry else 0
        try:
            pushed = delta.decode(raw)
        except delta.DeltaError as exc:
            log.warning("node %d pushed a corrupt coverage delta for "
                        "round %d (%s); requesting resync", node, rnd, exc)
            telemetry.counter("net.delta_resyncs")
            self._queue_send(conn, frames.pack_ctrl(
                {"op": "delta_ok", "seq": msg["seq"], "status": "resync"}))
            return
        bits = self._node_virgin(node)
        if pushed.full:
            bits = bits if bits is not None else bytearray(MAP_SIZE)
            delta.apply_runs(bits, pushed.runs)
        elif (bits is None or entry is None
                or pushed.base_generation != stored_gen):
            if entry is not None and pushed.generation == stored_gen:
                # A resent delta we already applied: ack idempotently.
                entry[1] = max(entry[1], rnd)
                self._persist()
                self._queue_send(conn, frames.pack_ctrl(
                    {"op": "delta_ok", "seq": msg["seq"], "status": "ok"}))
                return
            telemetry.counter("net.delta_resyncs")
            self._queue_send(conn, frames.pack_ctrl(
                {"op": "delta_ok", "seq": msg["seq"], "status": "resync"}))
            return
        else:
            delta.apply_runs(bits, pushed.runs)
        self._store_virgin(node, bits, pushed.generation, rnd,
                           int(msg.get("universe", 0)))
        self._queue_send(conn, frames.pack_ctrl(
            {"op": "delta_ok", "seq": msg["seq"], "status": "ok"}))

    def _on_fetch(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node, rnd = msg["node"], msg["round"]
        if rnd <= self._state["fetch_round"]:
            # Already-released round: the relay provably holds exactly
            # rounds <= rnd (nobody can push round rnd+1 records before
            # the claim(rnd+1) barrier, which needs this node).
            self._send_fetch_reply(conn, msg["seq"], node, rnd,
                                   msg.get("offsets", {}))
            return
        self._fetch_waits.setdefault(rnd, {})[node] = (
            conn, msg["seq"], msg.get("offsets", {}))
        self._maybe_release_fetch(rnd)

    def _maybe_release_fetch(self, rnd: int) -> None:
        members = self.membership()
        waits = self._fetch_waits.get(rnd, {})
        if not members or not members <= set(waits):
            return
        del self._fetch_waits[rnd]
        self._state["fetch_round"] = rnd
        self._persist()
        for node in sorted(waits):
            conn, seq, offsets = waits[node]
            self._send_fetch_reply(conn, seq, node, rnd, offsets)

    def _send_fetch_reply(self, conn: _Conn, seq: int, node: int, rnd: int,
                          offsets: dict) -> None:
        """Serve one fetch: delta-elided when the watermarks allow it.

        **Delta mode** requires a current mirror of the requester's own
        virgin map — a delta pushed for this round or later. The skip
        decision is then *exact*, not heuristic: the requester's map
        cannot change between its delta push and its fetch apply (both
        sides of the same barrier), so walking the pending records in
        apply order against a simulation seeded from the mirror
        reproduces, record for record, the subsumption decisions the
        requester's own filter would have made. Elided records ship as
        a count plus one unioned line payload; everything else ships
        verbatim. A requester that is behind on deltas (resync pending,
        delta plane off, corrupt push) falls back to full NCQ2 relay —
        the fallback changes bytes on the wire, never coverage.
        """
        started = time.perf_counter()
        entry = self._state["coverage"].get(str(node))
        sim = self._node_virgin(node) if entry is not None else None
        use_delta = (sim is not None and entry[1] >= rnd)
        if use_delta:
            sim = bytearray(sim)  # simulation must not mutate the mirror
            universe = entry[2]
        parts = []
        chunks: list[bytes] = []
        skipped_total = 0
        saved_bytes = 0
        line_union: set[int] = set()
        for partner in range(self.workers):
            if partner == node:
                continue
            relay = self._relay_dir(partner)
            manifest = self._relay_manifest(partner)
            start = int(offsets.get(str(partner), 0))
            blobs = []
            skipped = 0
            pending = manifest[start:]
            if pending:
                with open(relay / wire.QUEUE_BIN, "rb") as handle:
                    for offset, length, crc in pending:
                        blob = wire.read_record_blob(handle, offset,
                                                     length, crc)
                        if blob is None:
                            continue
                        if use_delta and self._simulate_subsumed(
                                sim, blob, universe, line_union):
                            skipped += 1
                            saved_bytes += len(blob)
                            continue
                        blobs.append(blob)
            if use_delta:
                parts.append([partner, len(blobs), skipped])
            else:
                parts.append([partner, len(blobs)])
            skipped_total += skipped
            chunks.extend(blobs)
        meta = {"op": "fetch_ok", "seq": seq, "round": rnd, "parts": parts,
                "mode": "delta" if use_delta else "records"}
        if skipped_total:
            meta["lines"] = True
            chunks.append(wire.pack_line_indices(line_union))
            telemetry.counter("net.records_delta_skipped", skipped_total)
            telemetry.counter("net.bytes_saved", saved_bytes)
        if chunks:
            telemetry.counter("net.records_fetched",
                              len(chunks) - (1 if skipped_total else 0))
        raw = frames.encode_blobs(chunks)
        telemetry.counter("net.relay_bytes", len(raw))
        telemetry.observe("net.fetch", time.perf_counter() - started)
        self._queue_send(conn, frames.pack_blob(meta, raw))

    def _simulate_subsumed(self, sim: bytearray, blob: bytes,
                           universe: int, line_union: set[int]) -> bool:
        """Would the requester's filter absorb *blob* without running it?

        Walks the same structural gates as
        :func:`repro.parallel.sync.record_subsumed` — coverage + lines
        shipped, not crashed/anomalous, every ``(cell, class-bit)``
        already lit — against the simulated map, then advances the
        simulation exactly as the requester's map would advance:
        elided records contribute nothing; shipped records merge their
        recorded coverage (deterministic replay makes the execution's
        map contribution identical to the recorded one).
        """
        summary = wire.summarize_record(blob)
        if summary is None:
            return False  # relay verbatim; the receiver's parse decides
        subsumed = False
        if (summary.skippable
                and all(i < universe for i in summary.line_indices)
                and all(not cls & ~sim[cell]
                        for cell, cls in summary.coverage)):
            line_union.update(summary.line_indices)
            subsumed = True
        elif summary.coverage is not None:
            for cell, cls in summary.coverage:
                sim[cell] |= cls
        return subsumed

    def _on_report(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node = msg["node"]
        self.reports_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.reports_dir / f"report-{node:03d}.pkl", raw)
        self._queue_send(conn, frames.pack_ctrl(
            {"op": "report_ok", "seq": msg["seq"]}))

    def _on_bye(self, conn: _Conn, msg: dict, raw: bytes) -> None:
        node = msg["node"]
        if node not in self._state["byed"]:
            self._state["byed"].append(node)
            self._persist()
        self._queue_send(conn, frames.pack_ctrl(
            {"op": "bye_ok", "seq": msg["seq"]}))
        self._reevaluate_barriers()

    # --- results ------------------------------------------------------------

    def load_reports(self) -> dict[int, object]:
        """All node reports persisted by the report op, by node index."""
        reports: dict[int, object] = {}
        if not self.reports_dir.is_dir():
            return reports
        for path in sorted(self.reports_dir.glob("report-*.pkl")):
            try:
                node = int(path.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            reports[node] = pickle.loads(path.read_bytes())
        return reports
