"""Bochs-derived VM state validator with hardware-oracle correction."""

from repro.validator.base import Correction
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.validator.oracle import HardwareOracle, OracleReport
from repro.validator.rounding import RoundingReport, VmStateValidator
from repro.validator.svm_validator import SvmHardwareOracle, VmcbValidator

__all__ = [
    "Correction",
    "VmStateValidator",
    "RoundingReport",
    "HardwareOracle",
    "OracleReport",
    "VmcbValidator",
    "SvmHardwareOracle",
    "golden_vmcs",
    "golden_vmcb",
]
