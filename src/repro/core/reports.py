"""Crash/anomaly reports and reproduction metadata (paper §4.5).

"Upon detecting an anomaly ... the agent saves the current fuzzing input
to a timestamped file within a designated directory." Reports carry
everything needed to replay a finding: the raw input, the vCPU
configuration command line, and the anomaly description.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.detectors import Anomaly
from repro.fuzzer.input import FuzzInput


@dataclass(frozen=True)
class CrashReport:
    """One saved finding."""

    iteration: int
    anomaly: Anomaly
    fuzz_input: FuzzInput
    command_line: str
    hypervisor: str

    def file_name(self) -> str:
        """Deterministic "timestamped" name: iteration counter + signature."""
        sig = self.anomaly.signature().replace("@", "_").replace("/", "_")
        return f"crash-{self.iteration:08d}-{sig}"

    def to_json(self) -> str:
        """Serialise the report metadata (input saved separately)."""
        return json.dumps({
            "iteration": self.iteration,
            "hypervisor": self.hypervisor,
            "method": self.anomaly.method.value,
            "location": self.anomaly.location,
            "message": self.anomaly.message,
            "command_line": self.command_line,
        }, indent=2)


@dataclass
class ReportStore:
    """Collects reports in memory; optionally mirrors them to disk."""

    directory: Path | None = None
    reports: list[CrashReport] = field(default_factory=list)

    def save(self, report: CrashReport) -> None:
        """Record a report (and write it out when a directory is set)."""
        self.reports.append(report)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            stem = self.directory / report.file_name()
            stem.with_suffix(".json").write_text(report.to_json())
            stem.with_suffix(".bin").write_bytes(report.fuzz_input.data)

    def by_method(self) -> dict[str, list[CrashReport]]:
        """Group reports by detection method (Table-6 style)."""
        groups: dict[str, list[CrashReport]] = {}
        for report in self.reports:
            groups.setdefault(report.anomaly.method.value, []).append(report)
        return groups

    def unique_locations(self) -> set[str]:
        """Distinct anomaly sites — the "previously unknown bug" count."""
        return {r.anomaly.signature() for r in self.reports}

    def __len__(self) -> int:
        return len(self.reports)
