"""Corpus protocol v2 wire-format tests: records, manifest, healing."""

from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.queue import QueueEntry
from repro.fuzzer.rng import Rng
from repro.coverage.bitmap import CoverageBitmap
from repro.parallel import wire


def entry(data=b"x" * INPUT_SIZE, found_at=3, new_bits=2, **kw):
    return QueueEntry(data=data, found_at=found_at, new_bits=new_bits, **kw)


class TestRecordRoundTrip:
    def test_plain_entry(self):
        blob = wire.pack_record(0, entry())
        record = wire.parse_record(blob)
        assert record is not None
        assert record.data == b"x" * INPUT_SIZE
        assert record.found_at == 3
        assert record.new_bits == 2
        assert not record.seed and not record.imported
        assert not record.crashed and not record.anomaly
        assert record.coverage is None and record.lines is None

    def test_seed_flag(self):
        record = wire.parse_record(
            wire.pack_record(0, entry(found_at=0, new_bits=0)))
        assert record.seed

    def test_coverage_and_flags(self):
        coverage = ((7, 1), (500, 128))
        blob = wire.pack_record(
            4, entry(coverage=coverage, crashed=True, anomaly=True,
                     imported=True))
        record = wire.parse_record(blob)
        assert record.coverage == coverage
        assert record.crashed and record.anomaly and record.imported
        assert record.index == 4

    def test_lines_round_trip_through_codec(self):
        universe = [("a.py", 1), ("a.py", 2), ("b.py", 9)]
        codec = wire.LineCodec(universe)
        lines = frozenset({("a.py", 2), ("b.py", 9)})
        blob = wire.pack_record(0, entry(coverage=(), lines=lines),
                                codec=codec)
        record = wire.parse_record(blob, codec)
        assert record.lines == lines

    def test_unencodable_lines_degrade_to_none(self):
        codec = wire.LineCodec([("a.py", 1)])
        lines = frozenset({("other.py", 99)})  # outside the universe
        blob = wire.pack_record(0, entry(coverage=(), lines=lines),
                                codec=codec)
        record = wire.parse_record(blob, codec)
        assert record.lines is None  # entry will be executed, never skipped
        assert record.coverage == ()

    def test_bad_magic_rejected(self):
        blob = wire.pack_record(0, entry())
        assert wire.parse_record(b"XXXX" + blob[4:]) is None

    def test_truncated_rejected(self):
        blob = wire.pack_record(0, entry())
        assert wire.parse_record(blob[:-1]) is None
        assert wire.parse_record(blob[: wire.RECORD_HEADER.size - 1]) is None

    def test_coverage_digest_mismatch_rejected(self):
        blob = bytearray(wire.pack_record(0, entry(coverage=((7, 1),))))
        blob[-1] ^= 0xFF  # flip a coverage cell byte
        assert wire.parse_record(bytes(blob)) is None


class TestLineCodec:
    def test_identical_universe_identical_indices(self):
        lines = [("m.py", i) for i in range(50)]
        a = wire.LineCodec(reversed(lines))
        b = wire.LineCodec(lines)
        payload = a.encode(frozenset(lines[10:20]))
        assert payload == b.encode(frozenset(lines[10:20]))
        assert b.decode(payload) == frozenset(lines[10:20])

    def test_foreign_index_decodes_to_none(self):
        small = wire.LineCodec([("m.py", 1)])
        big = wire.LineCodec([("m.py", i) for i in range(5)])
        payload = big.encode(frozenset({("m.py", 4)}))
        assert small.decode(payload) is None


class TestManifestFiles:
    def test_append_then_read(self, tmp_path):
        blobs = [wire.pack_record(i, entry()) for i in range(3)]
        wire.append_records(tmp_path, blobs[:2])
        wire.append_records(tmp_path, blobs[2:])
        manifest = wire.read_manifest(tmp_path)
        assert len(manifest) == 3
        with open(tmp_path / wire.QUEUE_BIN, "rb") as f:
            for (offset, length, crc), blob in zip(manifest, blobs):
                assert wire.read_record_blob(f, offset, length, crc) == blob

    def test_torn_manifest_tail_ignored(self, tmp_path):
        wire.append_records(tmp_path, [wire.pack_record(0, entry())])
        with open(tmp_path / wire.QUEUE_IDX, "ab") as f:
            f.write(b"\x01\x02\x03")  # partial 16-byte record
        assert len(wire.read_manifest(tmp_path)) == 1

    def test_tail_intact_detects_all_corruption_shapes(self, tmp_path):
        blobs = [wire.pack_record(i, entry()) for i in range(2)]
        total = wire.append_records(tmp_path, blobs)
        assert wire.tail_intact(tmp_path, 2, total)
        # Truncation: queue.bin size changes.
        bin_path = tmp_path / wire.QUEUE_BIN
        raw = bin_path.read_bytes()
        bin_path.write_bytes(raw[:-17])
        assert not wire.tail_intact(tmp_path, 2, total)
        # Garbage in the last record: size intact, CRC broken.
        bin_path.write_bytes(raw[:-17] + b"\xa5" * 17)
        assert not wire.tail_intact(tmp_path, 2, total)
        # Heal restores the invariant.
        rebuilt = wire.rewrite_records(tmp_path, blobs)
        assert rebuilt == total
        assert wire.tail_intact(tmp_path, 2, total)

    def test_empty_dir_is_intact_at_zero(self, tmp_path):
        assert wire.tail_intact(tmp_path, 0, 0)
        assert not wire.tail_intact(tmp_path, 1, 100)


def data_edge_execute(fi):
    """Deterministic bitmap derived from the input bytes alone."""
    bitmap = CoverageBitmap()
    bitmap.record_edge(fi.data[0], fi.data[1])
    return RunFeedback(bitmap=bitmap)


def seeded_engine(seed=5):
    engine = FuzzEngine(execute=data_edge_execute, rng=Rng(seed))
    engine.add_seed(bytes(INPUT_SIZE))
    engine.run(6)
    return engine


class TestBinaryLegacyEquivalence:
    """The same corpus through both formats yields the same engine state."""

    def test_wire_records_carry_save_corpus_payloads(self, tmp_path):
        engine = seeded_engine()
        legacy_dir = tmp_path / "legacy"
        engine.save_corpus(legacy_dir)
        legacy = [p.read_bytes() for p in sorted(legacy_dir.iterdir())]

        blobs = [wire.pack_record(i, e)
                 for i, e in enumerate(engine.queue.entries)]
        binary = [wire.parse_record(b).data for b in blobs]
        assert binary == legacy

    def test_import_paths_agree(self):
        source = seeded_engine()
        a = FuzzEngine(execute=data_edge_execute, rng=Rng(9))
        b = FuzzEngine(execute=data_edge_execute, rng=Rng(9))
        for i, e in enumerate(source.queue.entries):
            a.import_packed(wire.parse_record(wire.pack_record(i, e)))
            b.import_case(e.data)
        assert a.stats.imported == b.stats.imported
        assert bytes(a.virgin.bits) == bytes(b.virgin.bits)
        assert ([e.data for e in a.queue.entries]
                == [e.data for e in b.queue.entries])


class TestJsonReproducersStillDecode:
    """The legacy JSON path survives: crash reproducers import fine."""

    def test_json_reproducer_imports(self):
        import json

        engine = FuzzEngine(execute=data_edge_execute, rng=Rng(2))
        payload = json.dumps(
            {"input": (b"\x41" * INPUT_SIZE).hex()}).encode()
        assert engine.import_case(payload) is not None
        assert engine.stats.import_skipped == 0

    def test_corrupt_json_counted(self):
        engine = FuzzEngine(execute=data_edge_execute, rng=Rng(2))
        assert engine.import_case(b'{"input": not-json') is None
        assert engine.stats.import_skipped == 1
