"""The VM control structure (VMCS) object.

A VMCS is modelled as a typed mapping from field encodings to values,
with the architectural launch-state machine (clear / launched) attached.
Serialisation follows the canonical field layout from
:mod:`repro.vmx.fields` so that Hamming-distance comparisons (paper
Figure 5) are well defined over an 8,000-bit state.
"""

from __future__ import annotations

from typing import Iterator

from repro.arch.bits import bytes_hamming
from repro.vmx import fields as F
from repro.vmx.fields import ALL_FIELDS, FieldGroup, FieldSpec

#: Hot-path lookup tables: ``Vmcs.read``/``write`` execute hundreds of
#: times per test case (often under the coverage tracer, where every
#: helper frame also costs a trace callback), so width masks and byte
#: sizes are precomputed instead of going through FieldSpec properties.
_FIELD_MASK: dict[int, int] = {s.encoding: (1 << s.bits) - 1 for s in ALL_FIELDS}
_FIELD_NBYTES: tuple[tuple[int, int], ...] = tuple(
    (s.encoding, s.bits // 8) for s in ALL_FIELDS)


def _build_layout(field_nbytes):
    """(encoding, offset, nbytes) rows plus a byte-offset -> row map."""
    layout = []
    byte_map = []
    offset = 0
    for index, (encoding, nbytes) in enumerate(field_nbytes):
        layout.append((encoding, offset, nbytes))
        byte_map.extend([index] * nbytes)
        offset += nbytes
    return tuple(layout), tuple(byte_map)


#: Canonical layout as (encoding, byte offset, width) rows, plus the
#: byte-offset -> row index map the batched deserializer uses to turn a
#: differing byte position back into a field.
_LAYOUT, _BYTE_FIELD = _build_layout(_FIELD_NBYTES)

#: Batched-deserialize reference images (DESIGN.md §12): MRU list of
#: (image bytes, image as one little-endian int, frozen master) rows.
#: Masters are private — they are never returned and never written, so
#: a candidate built as ``master.light_image()`` plus the journalled
#: byte-diff writes can anchor value-revalidated memo sharing on them.
_DESER_REFS: list = []
_DESER_REF_LIMIT = 8
#: Diff size (in fields) past which a full parse is cheaper and the
#: parsed image becomes a new reference.
_DESER_DIFF_LIMIT = 48
#: XOR popcount at or below which a reference is accepted immediately
#: without scanning the rest of the MRU list — single-mutation diffs
#: against the front (current corpus parent) take this exit.
_DESER_EARLY_BITS = 64
#: Diff size (in fields) past which the image is *promoted* to a fresh
#: reference master even though the diff path would still be correct:
#: per-candidate journals stay tiny and later siblings diff against the
#: promoted image instead of re-deriving the same drift.
_DESER_PROMOTE = 8


def _changed_fields(x: int, layout=_LAYOUT, byte_map=_BYTE_FIELD):
    """Layout rows whose bytes are set in XOR-image *x*, low to high.

    Walks set bits from the least-significant end, mapping each to its
    field and clearing that field's whole byte range (everything below
    is already zero, so two shifts truncate it). Returns None when the
    diff exceeds ``_DESER_DIFF_LIMIT`` fields — a full parse wins then.
    """
    out = []
    while x:
        if len(out) >= _DESER_DIFF_LIMIT:
            return None
        row = layout[byte_map[((x & -x).bit_length() - 1) >> 3]]
        out.append(row)
        end = (row[1] + row[2]) * 8
        x = (x >> end) << end
    return out


class VmcsState:
    """Architectural VMCS launch states (SDM 24.1)."""

    CLEAR = "clear"
    LAUNCHED = "launched"


#: Change-journal bounds: when a structure's journal exceeds ``_LOG_MAX``
#: entries it is truncated to the most recent ``_LOG_KEEP``; consumers
#: holding generations older than the truncation point fall back to a
#: full recompute (``changes_since`` returns ``None``).
_LOG_MAX = 4096
_LOG_KEEP = 1024

_EMPTY_SET: frozenset = frozenset()


class Vmcs:
    """One VM control structure.

    Values are stored truncated to their field width. Unknown encodings
    raise ``KeyError`` — the same condition that makes a real vmread /
    vmwrite fail with VMfailValid(12).

    Every value-changing write bumps a generation counter and appends
    the encoding to a change journal, so consumers (the incremental
    entry checker, the VMCS02 merge cache, the serialization cache) can
    ask "what changed since generation g" instead of re-reading all
    ~700 fields. Memoized derived results live in ``_memo`` as
    immutable entries keyed by the consumer; ``copy()`` shares them, so
    a snapshot inherits its parent's warm caches.
    """

    #: Frozen reference image this structure was byte-diffed from by the
    #: batched deserializer (None for every other construction path).
    #: Consumers may read the anchor and memoize pure results on it;
    #: they must never write to it.
    _anchor: "Vmcs | None" = None

    def __init__(self, revision_id: int = 0x12) -> None:
        self.revision_id = revision_id
        self.launch_state = VmcsState.CLEAR
        self._values: dict[int, int] = {spec.encoding: 0 for spec in ALL_FIELDS}
        # Architectural default: the VMCS link pointer must be all-ones
        # unless VMCS shadowing is in use.
        self._values[F.VMCS_LINK_POINTER] = (1 << 64) - 1
        self._gen = 0
        self._log: list[int] = []
        self._log_base = 0
        self._memo: dict = {}
        self._ser: bytes | None = None
        self._ser_gen = -1
        self._read_trace: set[int] | None = None

    # --- field access -----------------------------------------------------

    def read(self, encoding: int) -> int:
        """Read a field by encoding (vmread semantics)."""
        if self._read_trace is not None:
            self._read_trace.add(encoding)
        try:
            return self._values[encoding]
        except KeyError:
            raise KeyError(f"unsupported VMCS component {encoding:#x}") from None

    def write(self, encoding: int, value: int) -> None:
        """Write a field by encoding, truncating to the field width."""
        fmask = _FIELD_MASK.get(encoding)
        if fmask is None:
            raise KeyError(f"unsupported VMCS component {encoding:#x}")
        value &= fmask
        values = self._values
        if values[encoding] != value:
            values[encoding] = value
            self._gen += 1
            log = self._log
            log.append(encoding)
            if len(log) >= _LOG_MAX:
                del log[:len(log) - _LOG_KEEP]
                self._log_base = self._gen - _LOG_KEEP

    # --- dirty tracking ----------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of value-changing writes."""
        return self._gen

    def changes_since(self, gen: int) -> frozenset[int] | set[int] | None:
        """Encodings written (with a new value) since generation *gen*.

        Returns ``None`` when the journal no longer reaches back to
        *gen* (it was truncated), which callers must treat as
        "everything may have changed".
        """
        if gen == self._gen:
            return _EMPTY_SET
        if gen < self._log_base:
            return None
        return set(self._log[gen - self._log_base:])

    def memo_get(self, key):
        """Fetch a memoized derived result (opaque entry) by *key*."""
        return self._memo.get(key)

    def memo_put(self, key, entry) -> None:
        """Store a memoized derived result.

        Entries must be treated as immutable: ``copy()`` shares them
        between snapshots, so consumers replace entries rather than
        mutating them in place.
        """
        self._memo[key] = entry

    def __getitem__(self, encoding: int) -> int:
        return self.read(encoding)

    def __setitem__(self, encoding: int, value: int) -> None:
        self.write(encoding, value)

    def by_name(self, name: str) -> int:
        """Read a field by its symbolic name."""
        return self.read(F.SPEC_BY_NAME[name].encoding)

    def set_by_name(self, name: str, value: int) -> None:
        """Write a field by its symbolic name."""
        self.write(F.SPEC_BY_NAME[name].encoding, value)

    def fields(self) -> Iterator[tuple[FieldSpec, int]]:
        """Iterate (spec, value) pairs in canonical layout order."""
        for spec in ALL_FIELDS:
            yield spec, self._values[spec.encoding]

    # --- launch state -----------------------------------------------------

    def clear(self) -> None:
        """vmclear semantics: flush and mark the VMCS clear."""
        self.launch_state = VmcsState.CLEAR

    def mark_launched(self) -> None:
        """Successful vmlaunch moves the VMCS to the launched state."""
        self.launch_state = VmcsState.LAUNCHED

    @property
    def launched(self) -> bool:
        """True when in the launched state."""
        return self.launch_state == VmcsState.LAUNCHED

    # --- whole-structure operations ----------------------------------------

    def copy(self) -> "Vmcs":
        """Deep copy, preserving launch state.

        Fast path: bypasses ``__init__`` (no field-table rebuild) and
        carries over the generation counter, change journal, memo
        entries, and the serialization cache, so a snapshot starts warm
        and diverges from its parent through its own journal.
        """
        dup = Vmcs.__new__(Vmcs)
        dup.revision_id = self.revision_id
        dup.launch_state = self.launch_state
        dup._values = dict(self._values)
        dup._gen = self._gen
        dup._log = list(self._log)
        dup._log_base = self._log_base
        dup._memo = dict(self._memo)
        dup._ser = self._ser
        dup._ser_gen = self._ser_gen
        dup._read_trace = None
        dup._anchor = self._anchor
        return dup

    def light_image(self) -> "Vmcs":
        """Journal-free copy for throwaway execution images.

        Like :meth:`copy` but the duplicate starts with an *empty*
        journal anchored at the copy generation: ``changes_since`` still
        answers for every generation at or after the copy (memo entries
        pre-warmed on the parent immediately before copying therefore
        revalidate), while generations from before the copy read as
        truncated. Skipping the journal duplication is what makes the
        batched publish cheap.
        """
        dup = Vmcs.__new__(Vmcs)
        dup.revision_id = self.revision_id
        dup.launch_state = self.launch_state
        dup._values = dict(self._values)
        dup._gen = self._gen
        dup._log = []
        dup._log_base = self._gen
        dup._memo = dict(self._memo)
        dup._ser = self._ser
        dup._ser_gen = self._ser_gen
        dup._read_trace = None
        return dup

    def snapshot(self) -> "Vmcs":
        """Alias for :meth:`copy` in snapshot/restore pairs."""
        return self.copy()

    def restore(self, snap: "Vmcs") -> None:
        """Restore field values from *snap*, journalling the deltas.

        Restoring goes through :meth:`write` so that generation-holding
        consumers see the restored fields as changes instead of silently
        observing rolled-back values.
        """
        self.launch_state = snap.launch_state
        values = snap._values
        for encoding, value in self._values.items():
            other = values[encoding]
            if other != value:
                self.write(encoding, other)

    def load_dict(self, values: dict[int, int]) -> None:
        """Bulk-write fields from an encoding->value mapping."""
        for encoding, value in values.items():
            self.write(encoding, value)

    def diff(self, other: "Vmcs") -> list[tuple[FieldSpec, int, int]]:
        """Fields whose values differ, as (spec, self_value, other_value)."""
        return [
            (spec, self._values[spec.encoding], other._values[spec.encoding])
            for spec in ALL_FIELDS
            if self._values[spec.encoding] != other._values[spec.encoding]
        ]

    def serialize(self) -> bytes:
        """Pack every field into the canonical little-endian layout.

        The packed image is cached behind the generation counter, so
        repeated Hamming-distance comparisons (or hashes) of an
        unchanged structure reuse the same immutable bytes.
        """
        if self._ser_gen == self._gen and self._ser is not None:
            return self._ser
        values = self._values
        out = bytearray()
        for encoding, nbytes in _FIELD_NBYTES:
            out += values[encoding].to_bytes(nbytes, "little")
        packed = bytes(out)
        self._ser = packed
        self._ser_gen = self._gen
        return packed

    @classmethod
    def deserialize(cls, raw: bytes, revision_id: int = 0x12) -> "Vmcs":
        """Unpack a serialised layout (inverse of :meth:`serialize`).

        Extra trailing bytes are ignored; short input raises ValueError.
        This is also how the state generator interprets raw fuzzing input
        as "several kilobytes of binary data treated as raw VMCS content".

        On the batched hot path (DESIGN.md §12) the image is first
        XOR-diffed — as one big little-endian integer — against a small
        MRU set of reference images; a near match is built as a light
        image of the frozen reference master plus journalled writes of
        only the differing fields. Every field width is a whole number
        of bytes and parsing is per-field raw little-endian, so the
        diffed candidate is value-identical to a full parse; the anchor
        it carries lets downstream memo consumers revalidate against the
        master instead of recomputing from scratch.
        """
        if len(raw) < F.LAYOUT_BYTES:
            raise ValueError(
                f"need {F.LAYOUT_BYTES} bytes for a VMCS image, got {len(raw)}"
            )
        from repro import perf

        if not perf.batch_enabled():
            return cls._parse(raw, revision_id)
        from repro import telemetry

        image = bytes(raw[:F.LAYOUT_BYTES])
        image_int = int.from_bytes(image, "little")
        best = best_x = None
        for index, (_ref_image, ref_int, master) in enumerate(_DESER_REFS):
            if master.revision_id != revision_id:
                continue
            x = image_int ^ ref_int
            if not x:
                telemetry.counter("batch.deser_fast")
                if index:
                    _DESER_REFS.insert(0, _DESER_REFS.pop(index))
                dup = master.light_image()
                dup._anchor = master
                return dup
            count = x.bit_count()
            if best_x is None or count < best_count:
                best, best_x, best_count = index, x, count
                if count <= _DESER_EARLY_BITS:
                    break
        if best is not None:
            changed = _changed_fields(best_x)
            if changed is not None and len(changed) <= _DESER_PROMOTE:
                telemetry.counter("batch.deser_fast")
                master = _DESER_REFS[best][2]
                if best:
                    _DESER_REFS.insert(0, _DESER_REFS.pop(best))
                dup = master.light_image()
                dup._anchor = master
                for encoding, offset, nbytes in changed:
                    dup.write(encoding, int.from_bytes(
                        image[offset:offset + nbytes], "little"))
                return dup
        telemetry.counter("batch.deser_full")
        master = cls._parse(image, revision_id)
        # Field widths are byte-exact and parsing is raw, so
        # serialize(parse(image)) == image: pre-seed the cache.
        master._ser = image
        master._ser_gen = master._gen
        _DESER_REFS.insert(0, (image, image_int, master))
        del _DESER_REFS[_DESER_REF_LIMIT:]
        dup = master.light_image()
        dup._anchor = master
        return dup

    @classmethod
    def _parse(cls, raw: bytes, revision_id: int) -> "Vmcs":
        """Plain full parse of the canonical layout."""
        vmcs = cls(revision_id)
        offset = 0
        for encoding, nbytes in _FIELD_NBYTES:
            vmcs._values[encoding] = int.from_bytes(
                raw[offset:offset + nbytes], "little"
            )
            offset += nbytes
        return vmcs

    def hamming(self, other: "Vmcs") -> int:
        """Bitwise Hamming distance over the serialised layout."""
        return bytes_hamming(self.serialize(), other.serialize())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vmcs):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self.serialize())

    def __repr__(self) -> str:
        nonzero = sum(1 for v in self._values.values() if v)
        return (f"<Vmcs rev={self.revision_id:#x} state={self.launch_state} "
                f"nonzero_fields={nonzero}/{len(self._values)}>")


def guest_state_fields() -> tuple[FieldSpec, ...]:
    """All guest-state field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.GUEST)


def host_state_fields() -> tuple[FieldSpec, ...]:
    """All host-state field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.HOST)


def control_fields() -> tuple[FieldSpec, ...]:
    """All control field specs."""
    return tuple(s for s in ALL_FIELDS if s.group is FieldGroup.CONTROL)
