"""Federation coverage plane: delta-compressed relay parity (DESIGN.md §15).

The acceptance pin of the delta plane: a federated campaign that ships
virgin-map deltas and elides subsumed relay records produces the
**bit-identical campaign fingerprint** to the same campaign running
pure record replay — on both vendors, and under corrupt-delta faults
that force the watermark resync fallback, including a node whose delta
push never lands (the coordinator must quietly fall back to shipping
records for it).
"""

from __future__ import annotations

import pytest

from repro import Vendor
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import FederatedCampaign, campaign_fingerprint
from repro.telemetry.report import campaign_summary

SEED = 11
BUDGET = 32
LEASE = 8
WORKERS = 2


def _federated(**overrides) -> FederatedCampaign:
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=WORKERS, lease_size=LEASE, telemetry_mode="off",
                  transport_timeout=1.0, heartbeat_interval=0.1)
    kwargs.update(overrides)
    return FederatedCampaign(**kwargs)


@pytest.fixture(scope="module")
def replay_fingerprint() -> dict:
    """Record-replay (delta plane off) fingerprints, one per vendor."""
    return {vendor: campaign_fingerprint(
                _federated(vendor=vendor, delta_plane=False).run(BUDGET))
            for vendor in (Vendor.INTEL, Vendor.AMD)}


# --- parity -----------------------------------------------------------------


@pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                         ids=["intel", "amd"])
def test_delta_plane_matches_record_replay(vendor, replay_fingerprint):
    result = _federated(vendor=vendor, delta_plane=True).run(BUDGET)
    assert campaign_fingerprint(result) == replay_fingerprint[vendor]


def test_delta_traffic_reaches_telemetry(tmp_path):
    _federated(sync_dir=tmp_path, telemetry_mode="metrics").run(BUDGET)
    plane = campaign_summary(tmp_path)["coverage_plane"]
    assert plane.get("net.delta_bytes", 0) > 0
    assert plane.get("net.relay_bytes", 0) > 0
    # No resyncs on a clean link.
    assert "net.delta_resyncs" not in plane


# --- corrupt-delta fallback -------------------------------------------------


class TestCorruptDeltaFallback:
    def test_single_corrupt_delta_resyncs_and_matches(self,
                                                      replay_fingerprint,
                                                      tmp_path):
        """A corrupt NCD1 payload (frame CRC fine, delta CRC bad) must
        degrade to a resync snapshot on the retry — never a torn
        connection, never a fingerprint change."""
        plan = FaultPlan([FaultSpec("corrupt_delta", worker=0, at_round=1)])
        result = _federated(sync_dir=tmp_path, fault_plan=plan,
                            telemetry_mode="metrics").run(BUDGET)
        assert plan.exhausted, "the corrupt_delta fault never fired"
        assert plan.fired and plan.fired[0][0] == "corrupt_delta"
        assert (campaign_fingerprint(result)
                == replay_fingerprint[Vendor.INTEL])
        plane = campaign_summary(tmp_path)["coverage_plane"]
        assert plane.get("net.delta_resyncs", 0) >= 1

    def test_corrupt_deltas_on_both_nodes(self, replay_fingerprint):
        plan = FaultPlan([
            FaultSpec("corrupt_delta", worker=0, at_round=1),
            FaultSpec("corrupt_delta", worker=1, at_round=2),
        ])
        result = _federated(fault_plan=plan).run(BUDGET)
        assert plan.exhausted
        assert (campaign_fingerprint(result)
                == replay_fingerprint[Vendor.INTEL])

    def test_node_whose_delta_never_lands_falls_back_to_records(
            self, replay_fingerprint, tmp_path):
        """All three push attempts in one round corrupted: the node gives
        up on that round's delta, so the coordinator's mirror for it
        stays behind the fetch round and the reply must carry records,
        not a delta verdict — with the fingerprint unchanged."""
        plan = FaultPlan([FaultSpec("corrupt_delta", worker=0, at_round=1)
                          for _ in range(3)])
        result = _federated(sync_dir=tmp_path, fault_plan=plan,
                            telemetry_mode="metrics").run(BUDGET)
        assert plan.exhausted
        assert (campaign_fingerprint(result)
                == replay_fingerprint[Vendor.INTEL])
        plane = campaign_summary(tmp_path)["coverage_plane"]
        assert plane.get("net.delta_resyncs", 0) >= 3


# --- mixed planes -----------------------------------------------------------


def test_delta_plane_off_ships_no_deltas(tmp_path):
    _federated(sync_dir=tmp_path, delta_plane=False,
               telemetry_mode="metrics").run(BUDGET)
    summary = campaign_summary(tmp_path)
    assert not summary["coverage_plane"].get("net.delta_bytes")
    assert summary["net"].get("net.records_fetched", 0) > 0
