"""Scheduling benchmark: coverage-per-1k-cases, flat vs fast.

The adaptive schedule (DESIGN.md §16) is a *search-efficiency* lever,
not a cases/sec one: both modes execute the same number of cases, and
the question is how much virgin-map behaviour each case buys. This
bench runs identical budgets under ``--power-schedule flat`` and
``fast`` and records, per mode:

* coverage-per-1k-cases (covered source lines normalised to a 1k-case
  budget — the issue's acceptance metric);
* queue growth and virgin-map cell counts (what the energy formula and
  distillation actually steer);
* the bandit's per-operator hit rates (fast only), the same numbers
  ``repro telemetry-report`` renders in its operator-learning section.

Results land in the ``schedule`` stage of ``BENCH_throughput.json``.
Coverage deltas at bench budgets are noisy, so the stage records both
directions honestly and asserts only sanity floors (fast found
*something*, the bandit actually learned) rather than a win margin.
"""

from __future__ import annotations

import json
from pathlib import Path

from common import PhaseDeadline, bench_budget
from repro import NecoFuzz, Vendor

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
DEFAULT_BUDGET = 600
BUDGET = bench_budget(DEFAULT_BUDGET)
SEED = 7
#: Chunk size between deadline checks: big enough to amortise, small
#: enough that a CI deadline cuts within a few seconds.
CHUNK = 50


def _update_json(section: str, payload: dict) -> None:
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run_mode(mode: str) -> dict:
    """One iteration-budgeted campaign under *mode*; returns the stats."""
    campaign = NecoFuzz(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                        power_schedule=mode)
    deadline = PhaseDeadline()
    done = 0
    while done < BUDGET and not deadline.expired():
        step = min(CHUNK, BUDGET - done)
        for _ in range(step):
            campaign.engine.step()
        done += step
    engine = campaign.engine
    covered = len(campaign.agent.covered_lines())
    stats = {
        "mode": mode,
        "cases": done,
        "truncated": done < BUDGET,
        "covered_lines": covered,
        "coverage_per_1k_cases": round(1000.0 * covered / done, 2)
        if done else 0.0,
        "queue_entries": len(engine.queue),
        "virgin_cells": len(engine.virgin.bits) - engine.virgin.bits.count(0),
        "crashes": engine.stats.crashes,
    }
    if engine.bandit is not None:
        stats["operator_hit_rates"] = {
            op: round(rate, 4)
            for op, rate in sorted(engine.bandit.hit_rates().items())}
        schedule = engine.schedule
        stats["distill_runs"] = schedule.distill_runs
        stats["redundant_entries"] = sum(
            1 for e in engine.queue.entries if e.redundant)
    return stats


class TestScheduleBench:
    def test_flat_vs_fast_coverage_per_case(self):
        flat = _run_mode("flat")
        fast = _run_mode("fast")
        payload = {
            "flat": flat,
            "fast": fast,
            "fast_vs_flat_coverage_ratio": round(
                fast["coverage_per_1k_cases"]
                / flat["coverage_per_1k_cases"], 3)
            if flat["coverage_per_1k_cases"] else None,
        }
        _update_json("schedule", payload)

        # Sanity floors only — coverage deltas at bench budgets are
        # noise; the learning machinery itself must demonstrably run.
        assert flat["covered_lines"] > 0 and fast["covered_lines"] > 0
        assert fast["operator_hit_rates"], \
            "fast mode ran without the bandit recording a single case"
        truncated = flat["truncated"] or fast["truncated"]
        if not truncated:
            # Untruncated runs must have fed every operator arm at
            # least once through the havoc stack.
            assert len(fast["operator_hit_rates"]) >= 10
