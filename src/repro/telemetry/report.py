"""Render a merged campaign telemetry summary (``repro telemetry-report``).

Reads the campaign root a parallel run synced through: the merged
``metrics.json`` the orchestrator wrote (falling back to merging the
per-worker ``worker-NNN/metrics.json`` snapshots when only those
survived, e.g. after a killed supervisor) plus the merged
``events.jsonl`` when one exists. Everything is computed into a plain
dict first (:func:`campaign_summary`) so tests — and the benchmark
export — consume numbers, not formatted text.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry import (
    METRICS_NAME,
    MetricsRegistry,
    load_metrics,
    read_events,
)
from repro.telemetry.events import merged_events_path


def load_campaign_metrics(root: Path) -> MetricsRegistry | None:
    """The merged registry for one campaign root, or ``None``.

    Prefers the orchestrator's merged snapshot; otherwise folds
    whatever per-worker snapshots are readable.
    """
    root = Path(root)
    merged = load_metrics(root / METRICS_NAME)
    if merged is not None:
        return merged
    registry = MetricsRegistry()
    found = False
    for path in sorted(root.glob("worker-*/" + METRICS_NAME)):
        worker = load_metrics(path)
        if worker is not None:
            registry.merge_snapshot(worker.snapshot())
            found = True
    return registry if found else None


def campaign_summary(root: Path) -> dict:
    """Structured summary: spans, counters, per-shard skew, events."""
    registry = load_campaign_metrics(root)
    if registry is None:
        raise FileNotFoundError(
            f"no telemetry snapshots under {root} (was the campaign run "
            f"with --telemetry off, or without a persistent --sync-dir?)")
    spans = {}
    for name in registry.span_names():
        hist = registry.merged_histogram(name)
        spans[name] = {
            "count": hist.count,
            "total_seconds": hist.sum,
            "mean_seconds": hist.mean,
            "max_seconds": hist.max,
        }
    counters = {name: registry.counter_total(name)
                for name in registry.counter_names()}
    gauges = {name: registry.gauge_max(name)
              for name in registry.gauge_names()}
    skew = _shard_skew(registry)
    events_path = merged_events_path(root)
    events = read_events(events_path) if events_path.exists() else []
    return {"root": str(root), "spans": spans, "counters": counters,
            "gauges": gauges, "scheduler": _scheduler_summary(registry),
            "operators": _operator_summary(registry),
            "net": _net_summary(registry),
            "coverage_plane": _coverage_plane_summary(registry),
            "shards": skew, "event_count": len(events)}


#: The work-stealing scheduler's own counters (DESIGN.md §13), pulled
#: into their own report block so lease churn is visible at a glance.
_SCHED_COUNTERS = ("sched.leases_issued", "sched.steals", "sched.reclaims",
                   "pool.worker_reuse")


def _scheduler_summary(registry: MetricsRegistry) -> dict:
    """Scheduler block: lease counters plus the adaptive-sync interval.

    Empty when the campaign ran the static schedule with adaptive sync
    off — the renderer then omits the section entirely.
    """
    summary = {name: total for name in _SCHED_COUNTERS
               if (total := registry.counter_total(name))}
    interval = registry.gauge_max("sync.interval")
    if interval is not None:
        summary["sync.interval"] = interval
    distills = registry.counter_total("sched.distill_runs")
    if distills:
        summary["sched.distill_runs"] = distills
    return summary


#: Prefixes the operator bandit (DESIGN.md §16) records per mutation
#: operator while a ``--power-schedule fast`` campaign runs.
_OP_USES = "sched.op_uses."
_OP_HITS = "sched.op_hits."


def _operator_summary(registry: MetricsRegistry) -> dict:
    """Scheduler-learning block: per-operator uses, hits, hit rate.

    Empty (section omitted) for flat-schedule campaigns, which run no
    bandit and record no ``sched.op_*`` counters.
    """
    operators: dict = {}
    for name in registry.counter_names():
        if not name.startswith(_OP_USES):
            continue
        op = name[len(_OP_USES):]
        uses = registry.counter_total(name)
        hits = registry.counter_total(_OP_HITS + op)
        operators[op] = {"uses": uses, "hits": hits,
                         "hit_rate": hits / uses if uses else 0.0}
    return operators


#: The federation transport's counters (DESIGN.md §14): traffic volume,
#: then the robustness machinery actually firing — resends, reconnects,
#: decode errors, expiries, partition time.
_NET_COUNTERS = ("net.frames_sent", "net.frames_received",
                 "net.frames_resent", "net.frames_dropped",
                 "net.decode_errors", "net.reconnects",
                 "net.coordinator_restarts", "net.node_expiries",
                 "net.lease_expiries", "net.partition_seconds",
                 "net.records_pushed", "net.records_fetched")


def _net_summary(registry: MetricsRegistry) -> dict:
    """Transport block; empty (section omitted) for local campaigns."""
    return {name: total for name in _NET_COUNTERS
            if (total := registry.counter_total(name))}


#: The coverage plane's counters (DESIGN.md §15): delta traffic and what
#: it saved — relay records elided against pushed virgin-map mirrors,
#: local batches rejected from one sidecar delta — plus the resyncs the
#: fallback leg absorbed.
_COVERAGE_PLANE_COUNTERS = ("net.delta_bytes", "net.bytes_saved",
                            "net.relay_bytes", "net.records_delta_skipped",
                            "net.delta_resyncs", "sync.delta_rejects")


def _coverage_plane_summary(registry: MetricsRegistry) -> dict:
    """Coverage-plane block; empty (section omitted) when the campaign
    never exchanged a delta."""
    summary = {name: total for name in _COVERAGE_PLANE_COUNTERS
               if (total := registry.counter_total(name))}
    saved = summary.get("net.bytes_saved", 0)
    relayed = summary.get("net.relay_bytes", 0)
    if saved and relayed:
        summary["relay_reduction"] = round((relayed + saved) / relayed, 2)
    return summary


def _shard_skew(registry: MetricsRegistry) -> dict:
    """Per-shard span totals, plus a max/min skew ratio per span."""
    shards: dict = {}
    for shard, metrics in registry.shards.items():
        if shard is None:
            continue
        shards[shard] = {
            "span_seconds": {name: hist.sum
                             for name, hist in metrics.histograms.items()},
            "counters": dict(metrics.counters),
        }
    skew: dict = {}
    for name in registry.span_names():
        totals = [m["span_seconds"][name] for m in shards.values()
                  if name in m["span_seconds"]]
        if len(totals) >= 2 and min(totals) > 0:
            skew[name] = max(totals) / min(totals)
    return {"per_shard": {str(k): v for k, v in sorted(shards.items())},
            "skew_ratio": skew}


def render_report(root: Path, *, top: int = 12) -> str:
    """Human-readable report for one campaign root."""
    summary = campaign_summary(root)
    lines = [f"telemetry report — {summary['root']}", ""]

    spans = sorted(summary["spans"].items(),
                   key=lambda kv: -kv[1]["total_seconds"])
    lines.append(f"top spans (by total time, {len(spans)} recorded)")
    lines.append(f"  {'span':<28} {'count':>8} {'total':>10} "
                 f"{'mean':>10} {'max':>10}")
    for name, data in spans[:top]:
        lines.append(
            f"  {name:<28} {data['count']:>8} "
            f"{data['total_seconds']:>9.3f}s "
            f"{1e3 * data['mean_seconds']:>8.2f}ms "
            f"{1e3 * data['max_seconds']:>8.2f}ms")
    lines.append("")

    counters = sorted(summary["counters"].items())
    lines.append(f"counters ({len(counters)})")
    for name, value in counters:
        lines.append(f"  {name:<40} {value:>12}")
    lines.append("")

    scheduler = summary.get("scheduler") or {}
    if scheduler:
        lines.append("scheduler")
        for name, value in sorted(scheduler.items()):
            rendered = (f"{value:g}" if isinstance(value, float)
                        else f"{value}")
            lines.append(f"  {name:<40} {rendered:>12}")
        lines.append("")

    operators = summary.get("operators") or {}
    if operators:
        ranked = sorted(operators.items(),
                        key=lambda kv: (-kv[1]["hit_rate"], kv[0]))
        lines.append(f"operator learning ({len(ranked)} arm(s), "
                     f"by hit rate)")
        lines.append(f"  {'operator':<24} {'uses':>8} {'hits':>8} "
                     f"{'hit rate':>9}")
        for op, data in ranked:
            lines.append(f"  {op:<24} {data['uses']:>8} {data['hits']:>8} "
                         f"{100 * data['hit_rate']:>8.1f}%")
        lines.append("")

    net = summary.get("net") or {}
    if net:
        lines.append("net (federation transport)")
        for name, value in sorted(net.items()):
            lines.append(f"  {name:<40} {value:>12}")
        lines.append("")

    plane = summary.get("coverage_plane") or {}
    if plane:
        lines.append("coverage plane (virgin-map deltas)")
        for name, value in sorted(plane.items()):
            rendered = (f"{value:g}" if isinstance(value, float)
                        else f"{value}")
            lines.append(f"  {name:<40} {rendered:>12}")
        lines.append("")

    per_shard = summary["shards"]["per_shard"]
    if per_shard:
        lines.append(f"per-shard skew ({len(per_shard)} shard(s))")
        for shard, data in per_shard.items():
            busiest = sorted(data["span_seconds"].items(),
                             key=lambda kv: -kv[1])[:3]
            detail = ", ".join(f"{n} {s:.3f}s" for n, s in busiest)
            lines.append(f"  shard {shard}: {detail or '(no spans)'}")
        for name, ratio in sorted(summary["shards"]["skew_ratio"].items(),
                                  key=lambda kv: -kv[1])[:top]:
            lines.append(f"  skew {name}: max/min {ratio:.2f}x")
    if summary["event_count"]:
        lines.append("")
        lines.append(f"{summary['event_count']} event(s) in events.jsonl")
    return "\n".join(lines)
