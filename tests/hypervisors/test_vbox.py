"""Tests for the simulated VirtualBox hypervisor and CVE-2024-21106."""

import pytest

from repro.arch.cpuid import Vendor
from repro.arch.msr import IA32_KERNEL_GS_BASE, IA32_LSTAR, IA32_TSC, MsrEntry
from repro.hypervisors import GuestInstruction, VboxHypervisor, VcpuConfig
from repro.hypervisors.base import VmCrash
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F

VMXON = 0x1000
VMCS12 = 0x3000
MSR_AREA = 0x15000


def run(hv, vcpu, mnemonic, level=1, **operands):
    return hv.execute(vcpu, GuestInstruction(mnemonic, operands, level=level))


def launch_l2(hv, vcpu, vmcs):
    run(hv, vcpu, "vmxon", addr=VMXON)
    run(hv, vcpu, "vmclear", addr=VMCS12)
    run(hv, vcpu, "vmptrld", addr=VMCS12)
    for spec, value in vmcs.fields():
        if spec.group is not F.FieldGroup.READ_ONLY:
            run(hv, vcpu, "vmwrite", field=spec.encoding, value=value)
    return run(hv, vcpu, "vmlaunch")


@pytest.fixture
def vbox():
    hv = VboxHypervisor(VcpuConfig.default(Vendor.INTEL))
    return hv, hv.create_vcpu()


class TestVboxLifecycle:
    def test_intel_only(self):
        with pytest.raises(ValueError):
            VboxHypervisor(VcpuConfig.default(Vendor.AMD))

    def test_golden_launch(self, vbox):
        hv, vcpu = vbox
        result = launch_l2(hv, vcpu, golden_vmcs(hv.nested_vmx.caps))
        assert result.level == 2

    def test_l2_exit_routing(self, vbox):
        hv, vcpu = vbox
        launch_l2(hv, vcpu, golden_vmcs(hv.nested_vmx.caps))
        assert run(hv, vcpu, "cpuid", level=2).level == 1

    def test_vbox_checks_ia32e_pae(self, vbox):
        """Unlike KVM pre-fix, VirtualBox *does* check IA-32e/PAE."""
        from repro.arch.registers import Cr4

        hv, vcpu = vbox
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.GUEST_CR4, vmcs.read(F.GUEST_CR4) & ~Cr4.PAE)
        result = launch_l2(hv, vcpu, vmcs)
        assert "entry failed" in result.detail


class TestBug2Cve202421106:
    def _msr_load_state(self, hv, entries):
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, len(entries))
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, MSR_AREA)
        hv.memory.put_msr_area(MSR_AREA, entries)
        return vmcs

    def test_non_canonical_kernel_gs_base_crashes_host(self, vbox):
        hv, vcpu = vbox
        vmcs = self._msr_load_state(hv, [
            MsrEntry(IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000)])
        with pytest.raises(VmCrash) as excinfo:
            launch_l2(hv, vcpu, vmcs)
        assert "CVE-2024-21106" in str(excinfo.value)

    def test_gp_logged_like_the_paper(self, vbox):
        hv, vcpu = vbox
        vmcs = self._msr_load_state(hv, [
            MsrEntry(IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000)])
        with pytest.raises(VmCrash):
            launch_l2(hv, vcpu, vmcs)
        # §5.5.3 quotes the exact dmesg line.
        assert hv.log.grep("general protection fault, probably for "
                           "non-canonical address 0x8000000000000000")

    def test_lstar_also_affected(self, vbox):
        hv, vcpu = vbox
        vmcs = self._msr_load_state(hv, [MsrEntry(IA32_LSTAR, 1 << 63)])
        with pytest.raises(VmCrash):
            launch_l2(hv, vcpu, vmcs)

    def test_canonical_values_load_fine(self, vbox):
        hv, vcpu = vbox
        vmcs = self._msr_load_state(hv, [
            MsrEntry(IA32_KERNEL_GS_BASE, 0xFFFF_8000_0000_0000),
            MsrEntry(IA32_TSC, 12345)])
        result = launch_l2(hv, vcpu, vmcs)
        assert result.level == 2
        assert vcpu.nested.host_loaded_msrs[IA32_TSC] == 12345

    def test_plain_msr_non_canonical_is_harmless(self, vbox):
        hv, vcpu = vbox
        vmcs = self._msr_load_state(hv, [MsrEntry(IA32_TSC, 1 << 63)])
        assert launch_l2(hv, vcpu, vmcs).level == 2

    def test_patched_vbox_fails_entry_cleanly(self):
        hv = VboxHypervisor(VcpuConfig.default(Vendor.INTEL),
                            patched=frozenset({"canonical_msr_check"}))
        vcpu = hv.create_vcpu()
        vmcs = golden_vmcs(hv.nested_vmx.caps)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_COUNT, 1)
        vmcs.write(F.VM_ENTRY_MSR_LOAD_ADDR, MSR_AREA)
        hv.memory.put_msr_area(MSR_AREA, [
            MsrEntry(IA32_KERNEL_GS_BASE, 0x8000_0000_0000_0000)])
        result = launch_l2(hv, vcpu, vmcs)
        assert "entry failed" in result.detail  # reason 34, host alive
        assert not hv.log.grep("general protection fault")
