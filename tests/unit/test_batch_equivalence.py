"""Pins the equivalence contract of the batched hot path (DESIGN.md §12).

Batching — signature-keyed caches, replay-memoized rounding, anchored
byte-diff deserialize, and the ``step_batch`` engine loop — must be a
pure optimisation. The contract has three tiers:

* **batch size 1** is bit-identical to the incremental path: same
  violations, corrections, coverage, and campaign fingerprints;
* **black-box batch N** is bit-identical to incremental for any N
  (no scheduling feedback exists to reorder);
* **guided batch N > 1** is deterministic (two identical runs agree)
  and survives kill-and-resume mid-batch with an identical fingerprint.

Exception accounting is also pinned here (the satellite contract): a
poisoned case mid-batch increments ``case_exceptions`` exactly once and
leaves the other lanes' results intact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import NecoFuzz, Vendor, faults, perf
from repro.core.vcpu_config import VcpuConfig
from repro.coverage.bitmap import CoverageBitmap
from repro.faults import FaultPlan, FaultSpec
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE, FuzzInput
from repro.fuzzer.rng import Rng
from repro.hypervisors.kvm import KvmHypervisor
from repro.hypervisors.kvm.nested_svm import SvmNestedState
from repro.hypervisors.kvm.nested_vmx import VmxNestedState
from repro.resilience import (
    CampaignAborted,
    ParallelCampaign,
    campaign_fingerprint,
)
from repro.svm import fields as SF
from repro.svm.vmcb import Vmcb
from repro.validator.golden import golden_vmcb, golden_vmcs
from repro.validator.oracle import HardwareOracle
from repro.validator.rounding import VmStateValidator
from repro.validator.svm_validator import SvmHardwareOracle, VmcbValidator
from repro.vmx import fields as F
from repro.vmx.vmcs import Vmcs

_VMX_MUTABLE = [s for s in F.ALL_FIELDS
                if s.group is not F.FieldGroup.READ_ONLY]

vmx_mutations = st.lists(
    st.tuples(st.integers(0, len(_VMX_MUTABLE) - 1), st.integers(0, 63)),
    min_size=1, max_size=6)
svm_mutations = st.lists(
    st.tuples(st.integers(0, len(SF.ALL_FIELDS) - 1), st.integers(0, 63)),
    min_size=1, max_size=6)


def _vmx_pipeline(batch: int, mutations) -> tuple:
    """The per-case hot path on a persistent VMCS; returns observables.

    ``batch == 0`` is the incremental mode baseline; ``batch > 0`` runs
    the same sequence under ``perf.batch_mode`` (signature caches,
    replay memos, the oracle's probe-based fast path).
    """
    with perf.incremental_mode(True), perf.batch_mode(batch):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.INTEL))
        nested = hv.nested_vmx
        validator = VmStateValidator(nested.caps)
        oracle = HardwareOracle(nested.caps)
        state = VmxNestedState()
        vmcs = golden_vmcs(nested.caps)
        trail = []
        for index, bit in mutations:
            spec = _VMX_MUTABLE[index]
            vmcs.write(spec.encoding,
                       vmcs.read(spec.encoding) ^ (1 << (bit % spec.bits)))
            report = validator.round_to_valid(vmcs)
            oracle_report = oracle.verify(vmcs)
            prep = nested.prepare_vmcs02(state, vmcs)
            trail.append((
                [str(c) for c in report.all],
                oracle_report.entered,
                oracle_report.attempts,
                oracle_report.activated_rules,
                oracle_report.golden_fallbacks,
                oracle_report.silent_fixup_fields,
                [str(v) for v in oracle_report.final_violations],
                (prep.detail, prep.exit_reason) if prep is not None else None,
                vmcs.serialize(),
                state.vmcs02.serialize(),
            ))
        return tuple(trail)


def _svm_pipeline(batch: int, mutations) -> tuple:
    with perf.incremental_mode(True), perf.batch_mode(batch):
        hv = KvmHypervisor(VcpuConfig.default(Vendor.AMD))
        nested = hv.nested_svm
        validator = VmcbValidator()
        oracle = SvmHardwareOracle()
        state = SvmNestedState()
        vmcb = golden_vmcb()
        trail = []
        for index, bit in mutations:
            spec = SF.ALL_FIELDS[index]
            vmcb.write(spec.name,
                       vmcb.read(spec.name) ^ (1 << (bit % spec.bits)))
            corrections = validator.round_to_valid(vmcb)
            entered = oracle.verify(vmcb)
            prep = nested.prepare_vmcb02(state, vmcb)
            trail.append((
                [str(c) for c in corrections],
                entered,
                dict(oracle.fixup_masks),
                (prep.detail, prep.exit_reason) if prep is not None else None,
                vmcb.serialize(),
                state.vmcb02.serialize(),
            ))
        return tuple(trail)


class TestPipelineEquivalence:
    """Batched pipelines equal the incremental baseline case for case."""

    @given(vmx_mutations)
    @settings(max_examples=15, deadline=None)
    def test_vmx_batched_matches_incremental(self, mutations):
        assert _vmx_pipeline(0, mutations) == _vmx_pipeline(8, mutations)

    @given(svm_mutations)
    @settings(max_examples=15, deadline=None)
    def test_svm_batched_matches_incremental(self, mutations):
        assert _svm_pipeline(0, mutations) == _svm_pipeline(8, mutations)


class TestDeserializeEquivalence:
    """The anchored byte-diff deserializer is value-identical to a full
    parse, and the anchor journal names exactly the differing fields."""

    @given(st.binary(min_size=F.LAYOUT_BYTES, max_size=F.LAYOUT_BYTES),
           st.lists(st.tuples(st.integers(0, F.LAYOUT_BYTES - 1),
                              st.integers(1, 255)), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_vmcs_deserialize_matches_parse(self, base, patches):
        img = bytearray(base)
        for offset, xor in patches:
            img[offset] ^= xor
        img = bytes(img)
        with perf.batch_mode(8):
            Vmcs.deserialize(base)  # make the base a reference master
            fast = Vmcs.deserialize(img)
        slow = Vmcs._parse(img, 0x12)
        assert fast._values == slow._values
        assert fast.serialize() == slow.serialize()
        master = fast._anchor
        assert master is not None
        delta = fast.changes_since(master.generation)
        assert delta is not None
        for enc, value in fast._values.items():
            if enc not in delta:
                assert value == master._values[enc]

    @given(st.binary(min_size=SF.LAYOUT_BYTES, max_size=SF.LAYOUT_BYTES),
           st.lists(st.tuples(st.integers(0, SF.LAYOUT_BYTES - 1),
                              st.integers(1, 255)), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_vmcb_deserialize_matches_parse(self, base, patches):
        img = bytearray(base)
        for offset, xor in patches:
            img[offset] ^= xor
        img = bytes(img)
        with perf.batch_mode(8):
            Vmcb.deserialize(base)
            fast = Vmcb.deserialize(img)
        slow = Vmcb._parse(img)
        assert fast._values == slow._values
        assert fast.serialize() == slow.serialize()
        master = fast._anchor
        assert master is not None
        delta = fast.changes_since(master.generation)
        assert delta is not None
        for name, value in fast._values.items():
            if name not in delta:
                assert value == master._values[name]


def _fingerprint(result):
    return (sorted(result.covered_lines),
            result.engine_stats.queue_adds,
            result.engine_stats.case_exceptions,
            [(r.iteration, r.anomaly.signature()) for r in result.reports])


def _run_campaign(vendor, *, batch_size, guided=True, iterations=80):
    campaign = NecoFuzz(hypervisor="kvm", vendor=vendor, seed=11,
                        coverage_guided=guided, batch_size=batch_size)
    return _fingerprint(campaign.run(iterations))


class TestCampaignEquivalence:
    """Whole campaigns — trajectory, coverage, findings — are pinned."""

    @pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                             ids=["kvm-intel", "kvm-amd"])
    def test_batch_of_one_matches_incremental(self, vendor):
        # --batch-size 1 must reproduce the incremental-mode campaign
        # fingerprint bit for bit (the issue's acceptance pin).
        assert (_run_campaign(vendor, batch_size=0)
                == _run_campaign(vendor, batch_size=1))

    @pytest.mark.parametrize("vendor", [Vendor.INTEL, Vendor.AMD],
                             ids=["kvm-intel", "kvm-amd"])
    def test_blackbox_batch_matches_incremental(self, vendor):
        # Without coverage feedback there is no scheduling to reorder:
        # any batch size must equal the incremental trajectory exactly.
        assert (_run_campaign(vendor, batch_size=0, guided=False)
                == _run_campaign(vendor, batch_size=8, guided=False))

    def test_guided_batch_is_deterministic(self):
        assert (_run_campaign(Vendor.INTEL, batch_size=8)
                == _run_campaign(Vendor.INTEL, batch_size=8))


class _StubExecutor:
    """Deterministic engine target: unique bitmap per input, optional
    poisoned cases that raise at exact call indices."""

    def __init__(self, poison_at=()):
        self.calls = 0
        self.poison_at = set(poison_at)
        self.seen: list[bytes] = []

    def __call__(self, candidate: FuzzInput) -> RunFeedback:
        self.calls += 1
        self.seen.append(candidate.data)
        if self.calls in self.poison_at:
            raise ValueError(f"poisoned case {self.calls}")
        bitmap = CoverageBitmap()
        bitmap.record_edge(candidate.data[0], candidate.data[1])
        return RunFeedback(bitmap=bitmap)


def _stub_engine(execute, seed=5) -> FuzzEngine:
    engine = FuzzEngine(execute=execute, rng=Rng(seed))
    engine.add_seed(bytes(range(256)) * (INPUT_SIZE // 256 + 1))
    return engine


class TestBatchExceptionAccounting:
    """Satellite contract: per-case isolation inside a batch."""

    def test_poisoned_case_counts_once_and_spares_the_rest(self):
        execute = _StubExecutor(poison_at={3})
        engine = _stub_engine(execute)
        with perf.batch_mode(8):
            feedbacks = engine.step_batch(8)
        assert len(feedbacks) == 8
        assert engine.stats.case_exceptions == 1
        assert engine.stats.iterations == 8
        crashed = [f.crashed for f in feedbacks]
        assert crashed.count(True) == 1 and crashed[2]
        assert "poisoned case 3" in feedbacks[2].anomaly
        # The other seven lanes executed and reported normally.
        assert execute.calls == 8
        assert not any(f.crashed for i, f in enumerate(feedbacks) if i != 2)

    def test_step_batch_of_one_equals_step(self):
        runs = []
        for batched in (False, True):
            execute = _StubExecutor()
            engine = _stub_engine(execute)
            if batched:
                with perf.batch_mode(1):
                    for _ in range(12):
                        engine.step_batch(1)
            else:
                for _ in range(12):
                    engine.step()
            runs.append((execute.seen, engine.stats.queue_adds,
                         engine.stats.iterations))
        assert runs[0] == runs[1]

    def test_import_batch_counts_corrupt_entries_per_entry(self):
        execute = _StubExecutor()
        engine = _stub_engine(execute)
        good = bytes(INPUT_SIZE)
        with perf.batch_mode(8):
            results = engine.import_batch(
                [good, b"\x00" * 7, good, b'{"not": "an input"}'])
        assert results[1] is None and results[3] is None
        assert results[0] is not None and results[2] is not None
        assert engine.stats.import_skipped == 2
        assert engine.stats.imported == 2
        assert engine.stats.case_exceptions == 0


SEED = 11
BUDGET = 40


def _parallel(sync_dir, **overrides):
    kwargs = dict(hypervisor="kvm", vendor=Vendor.INTEL, seed=SEED,
                  workers=2, sync_every=10, mode="inline",
                  sync_dir=sync_dir, checkpoint_interval=1, batch_size=8)
    kwargs.update(overrides)
    return ParallelCampaign(**kwargs)


class TestBatchedResume:
    def test_kill_and_resume_mid_batch_reproduces_fingerprint(self, tmp_path):
        clean = _parallel(tmp_path / "clean").run(BUDGET)

        # Kill worker 0 at case 15 — mid-tick for batch size 8 — after
        # round 1 has been checkpointed.
        crashed_dir = tmp_path / "crashed"
        plan = FaultPlan([FaultSpec("kill_worker", worker=0, at_case=15)])
        with faults.injected(plan):
            with pytest.raises(CampaignAborted):
                _parallel(crashed_dir, max_restarts=0).run(BUDGET)
        assert (crashed_dir / "campaign.ckpt").exists()

        resumed = _parallel(crashed_dir, resume=True).run(BUDGET)
        assert resumed.engine_stats.iterations == BUDGET
        assert campaign_fingerprint(resumed) == campaign_fingerprint(clean)
