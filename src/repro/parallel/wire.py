"""Corpus protocol v2: struct-packed queue records + append-only manifest.

Protocol v1 (``FuzzEngine.save_corpus``) writes one file per queue entry
and rewrites *all* of them on every export; importers re-list and
re-read the directory every sync round. That is O(corpus) filesystem
work per round and is why the first parallel benchmark lost to serial.

V2 keeps exactly two files per worker queue directory:

``queue.bin``
    Concatenated binary records, append-only. Each record is a fixed
    header (:data:`RECORD_HEADER`) followed by the input bytes, the
    entry's sparse classified coverage (``(cell, class-bit)`` pairs,
    sorted), and the entry's covered-line indices into the shared
    instrumented-universe table (:class:`LineCodec`).

``queue.idx``
    The manifest: one fixed 16-byte record ``(offset, length, crc32)``
    per ``queue.bin`` record, appended *after* the data record. Torn
    tails are therefore invisible: a partial manifest record (size not a
    multiple of 16) is ignored, and a manifest record whose data fails
    its CRC is skipped and retried after the owner heals the file.

Importers remember how many manifest records they have consumed per
partner and only read record payloads past that point — a seek into
``queue.bin`` instead of a directory re-listing. Exporters remember how
many records (and bytes) they have appended; on each export they verify
the tail still matches (size + last-record CRC, O(1)) and, when a crash
or injected corruption broke it, rewrite both files from the live queue
— the append-only analogue of v1's rewrite-everything healing.

The per-entry coverage and line payloads exist for the subsumption
filter: a partner whose virgin map already contains every shipped
``(cell, class-bit)`` pair skips *executing* the entry and just absorbs
the shipped line coverage. Crashing or anomalous entries never carry
that shortcut — they are always re-executed so crash accounting stays
identical to v1.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Sequence

from repro.parallel import checksum

QUEUE_BIN = "queue.bin"
QUEUE_IDX = "queue.idx"

RECORD_MAGIC = b"NCQ2"

#: magic, entry index, found_at, new_bits, flags, cell count, line count,
#: data length, digest (sha256 of the packed coverage cells, truncated).
RECORD_HEADER = struct.Struct("<4sIQBBIII16s")
_CELL = struct.Struct("<HB")
_LINE = struct.Struct("<H")
MANIFEST_RECORD = struct.Struct("<QII")  # offset, length, crc32

FLAG_IMPORTED = 1
FLAG_SEED = 2
FLAG_CRASHED = 4
FLAG_ANOMALY = 8
FLAG_COVERAGE = 16  # record carries sparse classified coverage
FLAG_LINES = 32     # record carries covered-line indices


@dataclass(frozen=True)
class WireRecord:
    """One decoded protocol-v2 corpus entry."""

    index: int
    data: bytes
    found_at: int
    new_bits: int
    imported: bool
    seed: bool
    crashed: bool
    anomaly: bool
    #: Sorted ``(cell, class-bit)`` pairs, or None when not shipped.
    coverage: tuple[tuple[int, int], ...] | None
    #: Covered source lines, or None when not shipped / not decodable.
    lines: frozenset | None


class LineCodec:
    """Two-byte indices into the sorted instrumented-line universe.

    Every worker of one campaign instruments the same modules, so the
    sorted universe — and therefore the index assignment — is identical
    across workers without any coordination. Lines outside the universe
    (settrace mode can observe harness frames) make a set unencodable;
    the record then ships without ``FLAG_LINES`` and is simply never
    skipped by the subsumption filter.
    """

    def __init__(self, universe: Iterable) -> None:
        self.universe = tuple(sorted(universe))
        self._index = {line: i for i, line in enumerate(self.universe)}

    def encode(self, lines: Iterable) -> bytes | None:
        if len(self.universe) > 0xFFFF:
            return None
        index = self._index
        out = []
        for line in lines:
            i = index.get(line)
            if i is None:
                return None
            out.append(i)
        out.sort()
        return b"".join(_LINE.pack(i) for i in out)

    def decode(self, payload: bytes) -> frozenset | None:
        universe = self.universe
        total = len(universe)
        lines = []
        for (i,) in _LINE.iter_unpack(payload):
            if i >= total:
                return None  # produced against a different universe
            lines.append(universe[i])
        return frozenset(lines)


def coverage_digest(coverage: Sequence[tuple[int, int]]) -> bytes:
    """Truncated sha256 over the packed coverage cells."""
    h = hashlib.sha256()
    for idx, cls in coverage:
        h.update(_CELL.pack(idx, cls))
    return h.digest()[:16]


def pack_record(index: int, entry, codec: LineCodec | None = None) -> bytes:
    """Serialize one :class:`repro.fuzzer.queue.QueueEntry`."""
    flags = 0
    if entry.imported:
        flags |= FLAG_IMPORTED
    if not entry.found_at and not entry.new_bits:
        flags |= FLAG_SEED
    if getattr(entry, "crashed", False):
        flags |= FLAG_CRASHED
    if getattr(entry, "anomaly", False):
        flags |= FLAG_ANOMALY
    coverage = getattr(entry, "coverage", None)
    cells = b""
    if coverage is not None:
        flags |= FLAG_COVERAGE
        cells = b"".join(_CELL.pack(i, c) for i, c in coverage)
    line_payload = b""
    lines = getattr(entry, "lines", None)
    if lines is not None and codec is not None:
        encoded = codec.encode(lines)
        if encoded is not None:
            flags |= FLAG_LINES
            line_payload = encoded
    header = RECORD_HEADER.pack(
        RECORD_MAGIC, index, entry.found_at, entry.new_bits, flags,
        len(cells) // _CELL.size, len(line_payload) // _LINE.size,
        len(entry.data), coverage_digest(coverage or ()))
    return header + entry.data + cells + line_payload


def parse_record(blob: bytes, codec: LineCodec | None = None
                 ) -> WireRecord | None:
    """Decode one record; ``None`` for anything malformed."""
    if len(blob) < RECORD_HEADER.size:
        return None
    (magic, index, found_at, new_bits, flags, cell_count, line_count,
     data_len, digest) = RECORD_HEADER.unpack_from(blob)
    expected = (RECORD_HEADER.size + data_len + cell_count * _CELL.size
                + line_count * _LINE.size)
    if magic != RECORD_MAGIC or data_len == 0 or len(blob) != expected:
        return None
    offset = RECORD_HEADER.size
    data = blob[offset:offset + data_len]
    offset += data_len
    coverage = None
    if flags & FLAG_COVERAGE:
        coverage = tuple(
            _CELL.unpack_from(blob, offset + k * _CELL.size)
            for k in range(cell_count))
        if coverage_digest(coverage) != digest:
            return None
    offset += cell_count * _CELL.size
    lines = None
    if flags & FLAG_LINES and codec is not None:
        # An undecodable payload degrades to "no lines": the entry is
        # then executed rather than skipped, which is always safe.
        lines = codec.decode(blob[offset:offset + line_count * _LINE.size])
    return WireRecord(
        index=index, data=data, found_at=found_at, new_bits=new_bits,
        imported=bool(flags & FLAG_IMPORTED), seed=bool(flags & FLAG_SEED),
        crashed=bool(flags & FLAG_CRASHED),
        anomaly=bool(flags & FLAG_ANOMALY),
        coverage=coverage, lines=lines)


@dataclass(frozen=True)
class RecordSummary:
    """A codec-free header view of one record (coverage plane).

    What the federation coordinator can see without holding the
    campaign's :class:`LineCodec`: flags, the verified sparse coverage,
    and the *raw* line indices (every worker of a campaign shares one
    sorted universe, so indices are meaningful without decoding).
    """

    flags: int
    #: Verified sorted ``(cell, class-bit)`` pairs, or None.
    coverage: tuple[tuple[int, int], ...] | None
    #: Raw u16 indices into the shared line universe, or None.
    line_indices: tuple[int, ...] | None

    @property
    def skippable(self) -> bool:
        """May a relay elide this record for a subsuming receiver?

        Mirrors :func:`repro.parallel.sync.record_subsumed`'s structural
        half: coverage and lines must both be shipped, and crashing or
        anomalous entries always travel in full (they re-execute).
        """
        return (self.coverage is not None
                and self.line_indices is not None
                and not self.flags & (FLAG_CRASHED | FLAG_ANOMALY))


def summarize_record(blob: bytes) -> RecordSummary | None:
    """Header + coverage view of one record, without a codec.

    ``None`` for anything malformed — the caller then relays the blob
    verbatim and lets the receiver's own parse handle it, so a relay
    never makes a skip decision on bytes it could not verify.
    """
    if len(blob) < RECORD_HEADER.size:
        return None
    (magic, _index, _found_at, _new_bits, flags, cell_count, line_count,
     data_len, digest) = RECORD_HEADER.unpack_from(blob)
    expected = (RECORD_HEADER.size + data_len + cell_count * _CELL.size
                + line_count * _LINE.size)
    if magic != RECORD_MAGIC or data_len == 0 or len(blob) != expected:
        return None
    offset = RECORD_HEADER.size + data_len
    coverage = None
    if flags & FLAG_COVERAGE:
        coverage = tuple(
            _CELL.unpack_from(blob, offset + k * _CELL.size)
            for k in range(cell_count))
        if coverage_digest(coverage) != digest:
            return None
    offset += cell_count * _CELL.size
    line_indices = None
    if flags & FLAG_LINES:
        line_indices = tuple(
            i for (i,) in _LINE.iter_unpack(
                blob[offset:offset + line_count * _LINE.size]))
    return RecordSummary(flags=flags, coverage=coverage,
                         line_indices=line_indices)


def pack_line_indices(indices: Iterable[int]) -> bytes:
    """Raw u16 line indices as one :meth:`LineCodec.decode`-able payload.

    The coordinator unions the indices of every record it elides and
    ships them once; the receiver decodes the union with its own codec
    and absorbs it in one call.
    """
    return b"".join(_LINE.pack(i) for i in sorted(indices))


# --- file layer ---------------------------------------------------------


def read_manifest(queue_dir: Path) -> list[tuple[int, int, int]]:
    """All complete ``(offset, length, crc32)`` manifest records.

    A torn 16-byte tail (owner died mid-append) is silently ignored —
    its data record becomes visible on the owner's next export.
    """
    try:
        raw = (Path(queue_dir) / QUEUE_IDX).read_bytes()
    except OSError:
        return []
    usable = len(raw) - len(raw) % MANIFEST_RECORD.size
    return [MANIFEST_RECORD.unpack_from(raw, pos)
            for pos in range(0, usable, MANIFEST_RECORD.size)]


def read_record_blob(handle: BinaryIO, offset: int, length: int,
                     crc: int) -> bytes | None:
    """One raw record out of an open ``queue.bin``; CRC-checked."""
    try:
        handle.seek(offset)
        blob = handle.read(length)
    except OSError:
        return None
    if len(blob) != length or not checksum.verify(blob, crc):
        return None
    return blob


def append_records(queue_dir: Path, blobs: Sequence[bytes]) -> int:
    """Append records to ``queue.bin``, then their manifest entries.

    Returns the bytes added to ``queue.bin``. Ordering is the torn-write
    defence: data first, manifest second, so a manifest record never
    points past the data it describes.
    """
    queue_dir = Path(queue_dir)
    bin_path = queue_dir / QUEUE_BIN
    offset = bin_path.stat().st_size if bin_path.exists() else 0
    manifest = bytearray()
    added = 0
    with open(bin_path, "ab") as f:
        for blob in blobs:
            f.write(blob)
            manifest += MANIFEST_RECORD.pack(offset + added, len(blob),
                                             checksum.checksum(blob))
            added += len(blob)
        f.flush()
    with open(queue_dir / QUEUE_IDX, "ab") as f:
        f.write(bytes(manifest))
        f.flush()
    return added


def rewrite_records(queue_dir: Path, blobs: Sequence[bytes]) -> int:
    """Atomically replace both files (the heal path). Returns bin size."""
    from repro.fuzzer.crashes import atomic_write_bytes

    queue_dir = Path(queue_dir)
    manifest = bytearray()
    offset = 0
    for blob in blobs:
        manifest += MANIFEST_RECORD.pack(offset, len(blob),
                                         checksum.checksum(blob))
        offset += len(blob)
    atomic_write_bytes(queue_dir / QUEUE_BIN, b"".join(blobs))
    atomic_write_bytes(queue_dir / QUEUE_IDX, bytes(manifest))
    return offset


def tail_intact(queue_dir: Path, expected_records: int,
                expected_bytes: int) -> bool:
    """Does the on-disk tail still match what this exporter wrote?

    O(1): two ``stat`` calls plus one CRC over the last record. Catches
    every corruption shape the chaos suite injects — truncation changes
    the ``queue.bin`` size, garbage breaks the tail CRC, and a torn
    manifest changes the ``queue.idx`` size.
    """
    queue_dir = Path(queue_dir)
    bin_path = queue_dir / QUEUE_BIN
    idx_path = queue_dir / QUEUE_IDX
    bin_size = bin_path.stat().st_size if bin_path.exists() else 0
    idx_size = idx_path.stat().st_size if idx_path.exists() else 0
    if (bin_size != expected_bytes
            or idx_size != expected_records * MANIFEST_RECORD.size):
        return False
    if not expected_records:
        return True
    manifest = read_manifest(queue_dir)
    if len(manifest) != expected_records:
        return False
    offset, length, crc = manifest[-1]
    with open(bin_path, "rb") as f:
        return read_record_blob(f, offset, length, crc) is not None
