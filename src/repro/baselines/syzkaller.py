"""Syzkaller baseline (paper §5.1/§5.2).

Syzkaller is "the only available fuzzing tool that explicitly targets
nested virtualization via manually written harnesses", driving KVM
through its ioctl interface. Its model here captures the properties the
paper measures against:

* an **Intel-only** nested harness (``syz_kvm_setup_cpu`` descriptions):
  a fixed, valid initialization sequence whose VMCS12 starts from a
  known-good state with *random field values* assigned by the syscall
  descriptions — no rounding, no boundary search;
* **no AMD harness**: on AMD it only exercises generic ioctls
  (KVM_GET/SET_NESTED_STATE with description-generated blobs), which is
  why the paper measures only 7.0% AMD coverage;
* a **static vCPU configuration** (conventional fuzzers do not mutate
  module parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeline import CoverageTimeline
from repro.arch.cpuid import Vendor
from repro.baselines.common import BaselineHarness
from repro.core.necofuzz import CampaignResult
from repro.core.templates import VMCB12_GPA, VMCS12_GPA, VMXON_GPA
from repro.fuzzer.rng import Rng
from repro.hypervisors.base import GuestInstruction, VcpuConfig
from repro.hypervisors.kvm import KvmHypervisor
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F

#: The instruction templates syzkaller's harness issues in L2 (a small
#: fixed set described in its KVM descriptions).
_SYZ_L2_OPS = ("cpuid", "hlt", "rdmsr", "wrmsr", "in", "out", "mov_cr",
               "rdtsc", "vmcall")


@dataclass
class SyzkallerCampaign:
    """An iteration-budgeted syzkaller run against the KVM model."""

    vendor: Vendor = Vendor.INTEL
    seed: int = 1
    iterations_per_hour: float = 10.0

    def __post_init__(self) -> None:
        self.rng = Rng(self.seed)
        self.harness = BaselineHarness("Syzkaller", self.vendor, KvmHypervisor)
        self.config = VcpuConfig.default(self.vendor)  # static config
        self.timeline = CoverageTimeline(f"Syzkaller/{self.vendor.value}",
                                         self.iterations_per_hour)

    def run(self, iterations: int, *, sample_every: int = 10) -> CampaignResult:
        """Run *iterations* syscall programs."""
        for i in range(1, iterations + 1):
            hv = KvmHypervisor(self.config)
            if self.vendor is Vendor.INTEL:
                self.harness.run_case(hv, self._intel_program())
            else:
                self.harness.run_case(hv, self._amd_program())
            if i % sample_every == 0 or i == iterations:
                self.timeline.record(i, self.harness.coverage_fraction)
        return self.harness.result(self.timeline)

    # ------------------------------------------------------------------

    def _intel_program(self):
        """One syz_kvm_setup_cpu-style program for VT-x."""
        rng = self.rng.fork(self.rng.u32())
        vmcs12 = golden_vmcs()
        # "assigning random values to VM states" — a handful of fields
        # get raw random values straight from the descriptions.
        writable = F.WRITABLE_FIELDS
        for _ in range(rng.below(6) + 1):
            spec = writable[rng.below(len(writable))]
            vmcs12.write(spec.encoding, rng.u64())

        def program(hv: KvmHypervisor) -> None:
            vcpu = hv.create_vcpu()

            def run(mnemonic: str, level: int = 1, **operands: int):
                return hv.execute(vcpu, GuestInstruction(
                    mnemonic, operands, level=level))

            run("vmxon", addr=VMXON_GPA)
            run("vmclear", addr=VMCS12_GPA)
            run("vmptrld", addr=VMCS12_GPA)
            for spec, value in vmcs12.fields():
                if spec.group is not F.FieldGroup.READ_ONLY:
                    run("vmwrite", field=spec.encoding, value=value)
            result = run("vmlaunch")
            if result.level == 2:
                for _ in range(8):
                    op = _SYZ_L2_OPS[rng.below(len(_SYZ_L2_OPS))]
                    out = run(op, level=2, msr=rng.u32(), value=rng.u64(),
                              port=rng.u16(), cr=rng.below(9))
                    if out.level == 1:
                        run("vmresume")
            # Migration-style ioctls are part of syzkaller's surface.
            assert hv.nested_vmx is not None
            blob = hv.nested_vmx.vmx_get_nested_state(vcpu.vmx)
            if rng.chance(0.5):
                blob["current_vmptr"] = rng.u64()
            hv.nested_vmx.vmx_set_nested_state(vcpu.vmx, blob)

        return program

    def _amd_program(self):
        """Without an AMD harness, only generic ioctls reach nested code."""
        rng = self.rng.fork(self.rng.u32())

        def program(hv: KvmHypervisor) -> None:
            vcpu = hv.create_vcpu()
            assert hv.nested_svm is not None
            nested = hv.nested_svm
            # Random KVM_SET_NESTED_STATE blobs: mostly rejected early.
            blob = {
                "format": "svm" if rng.chance(0.9) else "vmx",
                "svme": rng.chance(0.5),
                "gif": rng.chance(0.5),
                "hsave_pa": rng.u32() & ~0xFFF if rng.chance(0.5) else rng.u32(),
                "guest_mode": rng.chance(0.5),
                "vmcb12_pa": rng.u32(),
            }
            nested.svm_set_nested_state(vcpu.svm, blob)
            nested.svm_get_nested_state(vcpu.svm)
            # Bare SVM instructions without the EFER.SVME dance: #UD.
            hv.execute(vcpu, GuestInstruction("vmrun", {"addr": VMCB12_GPA}))

        return program
