"""``VMenterLoadCheckVmControls()`` analogue.

Rounds the VM-execution, VM-entry, and VM-exit control fields of a raw
VMCS to specification-compliant values, following Bochs's check order:
pin-based, processor-based primary and secondary, the exception bitmap,
CR0/CR4 masks and shadows, and the associated physical addresses (I/O
bitmaps, MSR bitmap, MSR-load/store areas).

KNOWN MODELLING GAP (deliberate, paper §3.4): this routine does *not*
know that posted interrupts additionally require the VM-exit control
"acknowledge interrupt on exit". The physical CPU enforces that rule, so
validated states using posted interrupts initially fail on hardware
until the oracle (:mod:`repro.validator.oracle`) observes the rejection
and registers a runtime correction — exactly the detect-and-correct loop
the paper describes.
"""

from __future__ import annotations

from repro.arch.exceptions import ERROR_CODE_VECTORS, EventType, InterruptionInfo
from repro.arch.paging import MAX_PHYSADDR_WIDTH
from repro.validator.base import Correction, Rounder
from repro.vmx import fields as F
from repro.vmx.controls import EntryControls, ExitControls, PinBased, ProcBased, Secondary
from repro.vmx.msr_caps import VmxCapabilities
from repro.vmx.vmcs import Vmcs

_PHYS_MASK = (1 << MAX_PHYSADDR_WIDTH) - 1

#: The fuzz-harness VM's RAM window. The validator runs *inside* the
#: harness VM and owns every structure the VMCS points at, so it rounds
#: structure addresses into its own RAM (the EPTP is deliberately NOT
#: rounded this way — its reach is part of the attack surface).
_GUEST_RAM_MASK = 0x0FFF_FFFF


def _round_address(r: Rounder, encoding: int, alignment: int, rule: str) -> None:
    """Mask an address field to its alignment, inside harness RAM."""
    addr = r.read(encoding) & _GUEST_RAM_MASK & ~(alignment - 1)
    r.force(encoding, addr, rule)


def vmenter_load_check_vm_controls(vmcs: Vmcs, caps: VmxCapabilities) -> list[Correction]:
    """Round all control fields toward validity; return the corrections."""
    r = Rounder(vmcs)

    # Read-only (VM-exit information) fields are not part of a generated
    # state: the executor programs VMCS12 through vmwrite, which cannot
    # touch them, so the validator normalises them to zero up front.
    from repro.vmx.fields import ALL_FIELDS, FieldGroup

    for spec in ALL_FIELDS:
        if spec.group is FieldGroup.READ_ONLY:
            r.force(spec.encoding, 0, "read-only field not writable by vmwrite")

    # Reserved bits against the capability MSRs (allowed-0/allowed-1).
    r.force(F.PIN_BASED_VM_EXEC_CONTROL,
            caps.pin_based.round(r.read(F.PIN_BASED_VM_EXEC_CONTROL)),
            "pin-based controls: allowed-settings rounding")
    r.force(F.CPU_BASED_VM_EXEC_CONTROL,
            caps.proc_based.round(r.read(F.CPU_BASED_VM_EXEC_CONTROL)),
            "proc-based controls: allowed-settings rounding")
    r.force(F.VM_ENTRY_CONTROLS,
            caps.entry.round(r.read(F.VM_ENTRY_CONTROLS)),
            "entry controls: allowed-settings rounding")
    r.force(F.VM_EXIT_CONTROLS,
            caps.exit.round(r.read(F.VM_EXIT_CONTROLS)),
            "exit controls: allowed-settings rounding")

    # A 64-bit host is the only host this platform supports.
    r.set_bits(F.VM_EXIT_CONTROLS, ExitControls.HOST_ADDR_SPACE_SIZE,
               "64-bit host requires host-address-space-size")
    # SMM-only entry controls are invalid outside SMM.
    r.clear_bits(F.VM_ENTRY_CONTROLS,
                 EntryControls.ENTRY_TO_SMM | EntryControls.DEACTIVATE_DUAL_MONITOR,
                 "SMM entry controls cleared outside SMM")

    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS:
        r.force(F.SECONDARY_VM_EXEC_CONTROL,
                caps.secondary.round(r.read(F.SECONDARY_VM_EXEC_CONTROL)),
                "secondary controls: allowed-settings rounding")
    else:
        r.force(F.SECONDARY_VM_EXEC_CONTROL, 0,
                "secondary controls cleared when not activated")
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)

    # Pin/proc NMI dependency chain.
    pin = r.read(F.PIN_BASED_VM_EXEC_CONTROL)
    if pin & PinBased.VIRTUAL_NMIS and not pin & PinBased.NMI_EXITING:
        r.set_bits(F.PIN_BASED_VM_EXEC_CONTROL, PinBased.NMI_EXITING,
                   "virtual NMIs require NMI exiting")
    pin = r.read(F.PIN_BASED_VM_EXEC_CONTROL)
    if proc & ProcBased.NMI_WINDOW_EXITING and not pin & PinBased.VIRTUAL_NMIS:
        r.clear_bits(F.CPU_BASED_VM_EXEC_CONTROL, ProcBased.NMI_WINDOW_EXITING,
                     "NMI-window exiting requires virtual NMIs")

    # TPR shadow / APIC virtualization dependencies.
    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    apic_bits = (Secondary.VIRTUALIZE_X2APIC | Secondary.APIC_REGISTER_VIRT
                 | Secondary.VIRTUAL_INTR_DELIVERY)
    if proc2 & apic_bits and not proc & ProcBased.USE_TPR_SHADOW:
        if caps.proc_based.allowed1 & ProcBased.USE_TPR_SHADOW:
            r.set_bits(F.CPU_BASED_VM_EXEC_CONTROL, ProcBased.USE_TPR_SHADOW,
                       "APIC virtualization requires use-TPR-shadow")
        else:
            r.clear_bits(F.SECONDARY_VM_EXEC_CONTROL, apic_bits,
                         "APIC virtualization unavailable without TPR shadow")
    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)
    if proc2 & Secondary.VIRTUALIZE_X2APIC and proc2 & Secondary.VIRTUALIZE_APIC_ACCESSES:
        r.clear_bits(F.SECONDARY_VM_EXEC_CONTROL, Secondary.VIRTUALIZE_APIC_ACCESSES,
                     "x2APIC mode conflicts with APIC-access virtualization")

    # Posted interrupts need virtual-interrupt delivery and an 8-bit,
    # 64-byte-aligned descriptor. (The ack-intr-on-exit requirement is
    # the documented modelling gap — see module docstring.)
    pin = r.read(F.PIN_BASED_VM_EXEC_CONTROL)
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)
    if pin & PinBased.POSTED_INTERRUPTS:
        if not proc2 & Secondary.VIRTUAL_INTR_DELIVERY:
            if (caps.secondary.allowed1 & Secondary.VIRTUAL_INTR_DELIVERY
                    and proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS
                    and proc & ProcBased.USE_TPR_SHADOW):
                r.set_bits(F.SECONDARY_VM_EXEC_CONTROL,
                           Secondary.VIRTUAL_INTR_DELIVERY,
                           "posted interrupts require virtual-interrupt delivery")
            else:
                r.clear_bits(F.PIN_BASED_VM_EXEC_CONTROL, PinBased.POSTED_INTERRUPTS,
                             "posted interrupts unavailable")
        if r.read(F.PIN_BASED_VM_EXEC_CONTROL) & PinBased.POSTED_INTERRUPTS:
            r.force(F.POSTED_INTR_NV, r.read(F.POSTED_INTR_NV) & 0xFF,
                    "posted-interrupt vector is 8 bits")
            _round_address(r, F.POSTED_INTR_DESC_ADDR, 64,
                           "posted-interrupt descriptor is 64-byte aligned")

    # EPT-dependent features.
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)
    ept_on = bool(proc2 & Secondary.ENABLE_EPT)
    for bits, rule in ((Secondary.UNRESTRICTED_GUEST, "unrestricted guest requires EPT"),
                       (Secondary.ENABLE_PML, "PML requires EPT"),
                       (Secondary.EPT_VIOLATION_VE, "#VE requires EPT"),
                       (Secondary.MODE_BASED_EPT_EXEC, "MBEC requires EPT")):
        if proc2 & bits and not ept_on:
            r.clear_bits(F.SECONDARY_VM_EXEC_CONTROL, bits, rule)
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)

    if ept_on:
        eptp = r.read(F.EPT_POINTER)
        eptp = (eptp & _PHYS_MASK & ~0xFFF) | 6 | (3 << 3)  # WB, 4-level walk
        r.force(F.EPT_POINTER, eptp, "EPTP rounded to WB/4-level/aligned")
    if proc2 & Secondary.ENABLE_VPID and not r.read(F.VIRTUAL_PROCESSOR_ID):
        r.force(F.VIRTUAL_PROCESSOR_ID, 1, "VPID must be nonzero")
    if proc2 & Secondary.ENABLE_PML:
        _round_address(r, F.PML_ADDRESS, 4096, "PML address alignment")
    if proc2 & Secondary.EPT_VIOLATION_VE:
        _round_address(r, F.VE_INFORMATION_ADDRESS, 4096, "#VE info alignment")
    if proc2 & Secondary.ENABLE_VMFUNC:
        func = r.read(F.VM_FUNCTION_CONTROL) & 1
        if func and not ept_on:
            func = 0
        r.force(F.VM_FUNCTION_CONTROL, func, "only EPTP switching supported")
        if func:
            _round_address(r, F.EPTP_LIST_ADDRESS, 4096, "EPTP list alignment")
    if proc2 & Secondary.SHADOW_VMCS:
        _round_address(r, F.VMREAD_BITMAP, 4096, "vmread bitmap alignment")
        _round_address(r, F.VMWRITE_BITMAP, 4096, "vmwrite bitmap alignment")

    # Exception bitmap and CR masks/shadows have no invalid encodings —
    # Bochs loads them unchecked; nothing to round.

    # I/O and MSR bitmap addresses.
    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    if proc & ProcBased.USE_IO_BITMAPS:
        _round_address(r, F.IO_BITMAP_A, 4096, "I/O bitmap A alignment")
        _round_address(r, F.IO_BITMAP_B, 4096, "I/O bitmap B alignment")
    if proc & ProcBased.USE_MSR_BITMAPS:
        _round_address(r, F.MSR_BITMAP, 4096, "MSR bitmap alignment")
    if proc & ProcBased.USE_TPR_SHADOW:
        _round_address(r, F.VIRTUAL_APIC_PAGE_ADDR, 4096, "virtual-APIC page alignment")
        if not r.read(F.SECONDARY_VM_EXEC_CONTROL) & Secondary.VIRTUAL_INTR_DELIVERY:
            r.force(F.TPR_THRESHOLD, r.read(F.TPR_THRESHOLD) & 0xF,
                    "TPR threshold bits 31:4 zero")
    if r.read(F.SECONDARY_VM_EXEC_CONTROL) & Secondary.VIRTUALIZE_APIC_ACCESSES:
        _round_address(r, F.APIC_ACCESS_ADDR, 4096, "APIC-access page alignment")

    pin = r.read(F.PIN_BASED_VM_EXEC_CONTROL)
    if (r.read(F.VM_EXIT_CONTROLS) & ExitControls.SAVE_PREEMPTION_TIMER
            and not pin & PinBased.PREEMPTION_TIMER):
        r.clear_bits(F.VM_EXIT_CONTROLS, ExitControls.SAVE_PREEMPTION_TIMER,
                     "save-preemption-timer requires the timer")

    r.force(F.CR3_TARGET_COUNT, min(r.read(F.CR3_TARGET_COUNT), 4),
            "CR3-target count <= 4")

    # MSR-load/store areas: align, bound the counts to keep areas in range.
    for count_field, addr_field in ((F.VM_EXIT_MSR_STORE_COUNT, F.VM_EXIT_MSR_STORE_ADDR),
                                    (F.VM_EXIT_MSR_LOAD_COUNT, F.VM_EXIT_MSR_LOAD_ADDR),
                                    (F.VM_ENTRY_MSR_LOAD_COUNT, F.VM_ENTRY_MSR_LOAD_ADDR)):
        count = r.read(count_field) & 0xF
        r.force(count_field, count, "MSR area count bounded")
        if count:
            _round_address(r, addr_field, 16, "MSR area 16-byte alignment")

    _round_event_injection(r)
    _normalize_gated_fields(r)
    return r.corrections


def _normalize_gated_fields(r: Rounder) -> None:
    """Zero control fields whose enabling feature ended up disabled.

    The CPU ignores these fields when the gate bit is clear, so their
    content carries no behaviour; normalising them keeps the validated
    population concentrated near the specification boundary instead of
    scattered across don't-care bits (this is what makes the Figure-5
    distances meaningful).
    """
    pin = r.read(F.PIN_BASED_VM_EXEC_CONTROL)
    proc = r.read(F.CPU_BASED_VM_EXEC_CONTROL)
    proc2 = r.read(F.SECONDARY_VM_EXEC_CONTROL)

    def gate(condition: bool, encodings: tuple[int, ...], rule: str) -> None:
        if not condition:
            for encoding in encodings:
                r.force(encoding, 0, rule)

    gate(bool(proc & ProcBased.USE_IO_BITMAPS),
         (F.IO_BITMAP_A, F.IO_BITMAP_B), "I/O bitmaps unused")
    gate(bool(proc & ProcBased.USE_MSR_BITMAPS),
         (F.MSR_BITMAP,), "MSR bitmap unused")
    gate(bool(proc & ProcBased.USE_TPR_SHADOW),
         (F.VIRTUAL_APIC_PAGE_ADDR, F.TPR_THRESHOLD), "TPR shadow unused")
    gate(bool(pin & PinBased.POSTED_INTERRUPTS),
         (F.POSTED_INTR_NV, F.POSTED_INTR_DESC_ADDR), "posted interrupts unused")
    gate(bool(pin & PinBased.PREEMPTION_TIMER),
         (F.VMX_PREEMPTION_TIMER_VALUE,), "preemption timer unused")
    gate(bool(proc2 & Secondary.ENABLE_EPT),
         (F.EPT_POINTER, F.PML_ADDRESS, F.SUB_PAGE_PERMISSION_PTR),
         "EPT structures unused")
    gate(bool(proc2 & Secondary.ENABLE_PML), (F.PML_ADDRESS,), "PML unused")
    gate(bool(proc2 & Secondary.ENABLE_VPID),
         (F.VIRTUAL_PROCESSOR_ID,), "VPID unused")
    gate(bool(proc2 & Secondary.VIRTUALIZE_APIC_ACCESSES),
         (F.APIC_ACCESS_ADDR,), "APIC-access page unused")
    gate(bool(proc2 & Secondary.VIRTUAL_INTR_DELIVERY),
         (F.EOI_EXIT_BITMAP0, F.EOI_EXIT_BITMAP1, F.EOI_EXIT_BITMAP2,
          F.EOI_EXIT_BITMAP3), "EOI-exit bitmaps unused")
    gate(bool(proc2 & Secondary.ENABLE_VMFUNC),
         (F.VM_FUNCTION_CONTROL, F.EPTP_LIST_ADDRESS, F.EPTP_INDEX),
         "VM functions unused")
    gate(bool(proc2 & Secondary.SHADOW_VMCS),
         (F.VMREAD_BITMAP, F.VMWRITE_BITMAP), "shadow-VMCS bitmaps unused")
    gate(bool(proc2 & Secondary.EPT_VIOLATION_VE),
         (F.VE_INFORMATION_ADDRESS,), "#VE info unused")
    gate(bool(proc2 & Secondary.PAUSE_LOOP_EXITING),
         (F.PLE_GAP, F.PLE_WINDOW), "PLE unused")
    gate(bool(proc2 & Secondary.USE_TSC_SCALING),
         (F.TSC_MULTIPLIER,), "TSC scaling unused")
    gate(bool(proc2 & Secondary.ENABLE_XSAVES),
         (F.XSS_EXIT_BITMAP,), "XSAVES unused")
    gate(bool(proc2 & Secondary.ENCLS_EXITING),
         (F.ENCLS_EXITING_BITMAP,), "ENCLS exiting unused")
    gate(bool(proc2 & Secondary.ENABLE_ENCLV_EXITING),
         (F.ENCLV_EXITING_BITMAP,), "ENCLV exiting unused")
    # Features our capability surface never advertises.
    for encoding, rule in ((F.TERTIARY_VM_EXEC_CONTROL, "tertiary controls unsupported"),
                           (F.HLAT_POINTER, "HLAT unsupported"),
                           (F.EXECUTIVE_VMCS_POINTER, "dual-monitor SMM unsupported"),
                           (F.ENCLV_EXITING_BITMAP, "ENCLV unsupported")):
        if encoding == F.ENCLV_EXITING_BITMAP and proc2 & Secondary.ENABLE_ENCLV_EXITING:
            continue
        r.force(encoding, 0, rule)
    # CR3-target values beyond the target count are ignored.
    count = r.read(F.CR3_TARGET_COUNT)
    targets = (F.CR3_TARGET_VALUE0, F.CR3_TARGET_VALUE1,
               F.CR3_TARGET_VALUE2, F.CR3_TARGET_VALUE3)
    for idx in range(count, 4):
        r.force(targets[idx], 0, "CR3 target beyond count")
    # MSR areas beyond zero counts.
    for count_field, addr_field in ((F.VM_EXIT_MSR_STORE_COUNT, F.VM_EXIT_MSR_STORE_ADDR),
                                    (F.VM_EXIT_MSR_LOAD_COUNT, F.VM_EXIT_MSR_LOAD_ADDR),
                                    (F.VM_ENTRY_MSR_LOAD_COUNT, F.VM_ENTRY_MSR_LOAD_ADDR)):
        if not r.read(count_field):
            r.force(addr_field, 0, "MSR area unused")


def _round_event_injection(r: Rounder) -> None:
    """Make the VM-entry interruption-information field self-consistent."""
    raw = r.read(F.VM_ENTRY_INTR_INFO_FIELD)
    if (raw >> 8) & 7 == 1:  # type 1 is reserved; round to external interrupt
        raw &= ~(7 << 8)
    info = InterruptionInfo.decode(raw)
    if not info.valid:
        return
    vector = info.vector
    event_type = info.event_type
    deliver_ec = info.deliver_error_code
    if event_type == EventType.NMI:
        vector = 2
    if event_type == EventType.HARDWARE_EXCEPTION and vector > 31:
        vector &= 31
    if deliver_ec:
        if event_type != EventType.HARDWARE_EXCEPTION or vector not in ERROR_CODE_VECTORS:
            deliver_ec = False
    fixed = InterruptionInfo(vector, event_type, deliver_ec, True).encode()
    r.force(F.VM_ENTRY_INTR_INFO_FIELD, fixed,
            "event-injection consistency (SDM 26.2.1.3)")
    if deliver_ec:
        r.force(F.VM_ENTRY_EXCEPTION_ERROR_CODE,
                r.read(F.VM_ENTRY_EXCEPTION_ERROR_CODE) & 0x7FFF,
                "error code bits 31:15 zero")
