"""Registry semantics: deterministic, order-independent merging."""

import json

import pytest

from repro.telemetry import BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_observe_lands_in_the_right_bucket(self):
        hist = Histogram()
        hist.observe(5e-6)       # <= 1e-5: first bucket
        hist.observe(0.2)        # <= 0.5
        hist.observe(1e9)        # beyond every bound: +inf bucket
        assert hist.counts[0] == 1
        assert hist.counts[BUCKETS.index(0.5)] == 1
        assert hist.counts[-1] == 1
        assert hist.count == 3
        assert hist.min == 5e-6
        assert hist.max == 1e9

    def test_mean_of_empty_histogram_is_zero(self):
        assert Histogram().mean == 0.0

    def test_merge_is_elementwise(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.3)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 3
        assert a.sum == pytest.approx(0.01 + 0.3 + 2.0)
        assert a.min == 0.01 and a.max == 2.0

    def test_dict_round_trip(self):
        hist = Histogram()
        hist.observe(0.02)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_empty_histogram_serializes_null_min(self):
        # float("inf") is not valid JSON; an empty histogram must still
        # produce a snapshot json.dumps accepts.
        payload = Histogram().to_dict()
        json.dumps(payload)
        assert payload["min"] is None
        assert Histogram.from_dict(payload).min == float("inf")


class TestMetricsRegistry:
    def test_counters_accumulate_per_shard(self):
        reg = MetricsRegistry()
        reg.counter("cases", 2, shard=0)
        reg.counter("cases", 3, shard=1)
        reg.counter("cases")  # campaign-level (shard None)
        assert reg.counter_total("cases") == 6
        assert reg.shards[0].counters["cases"] == 2

    def test_gauges_keep_last_value_per_shard(self):
        reg = MetricsRegistry()
        reg.gauge("queue", 5, shard=0)
        reg.gauge("queue", 3, shard=0)
        assert reg.shards[0].gauges["queue"] == 3

    def test_span_total_sums_across_shards(self):
        reg = MetricsRegistry()
        reg.observe("phase", 0.25, shard=0)
        reg.observe("phase", 0.75, shard=1)
        assert reg.span_total("phase") == 1.0
        assert reg.merged_histogram("phase").count == 2

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a", 4, shard=0)
        reg.gauge("g", 7.5, shard=1)
        reg.observe("s", 0.1)
        snap = reg.snapshot()
        json.dumps(snap)  # must be JSON-clean
        clone = MetricsRegistry.from_snapshot(snap)
        assert clone.snapshot() == snap

    def test_snapshot_records_the_bucket_bounds(self):
        assert MetricsRegistry().snapshot()["buckets"] == list(BUCKETS)

    def test_merge_is_order_independent(self):
        def build(counter_n, span_s):
            reg = MetricsRegistry()
            reg.counter("cases", counter_n, shard=0)
            reg.observe("exec", span_s, shard=0)
            reg.gauge("depth", counter_n, shard=0)
            return reg.snapshot()

        a, b = build(2, 0.5), build(5, 0.01)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_snapshot(a)
        ab.merge_snapshot(b)
        ba.merge_snapshot(b)
        ba.merge_snapshot(a)
        assert ab.snapshot() == ba.snapshot()
        assert ab.counter_total("cases") == 7
        # Same-shard gauge conflict resolves to max (order-independent).
        assert ab.shards[0].gauges["depth"] == 5

    def test_merge_keeps_shards_separate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("cases", 1, shard=0)
        b.counter("cases", 10, shard=1)
        a.merge_snapshot(b.snapshot())
        assert a.shards[0].counters["cases"] == 1
        assert a.shards[1].counters["cases"] == 10
