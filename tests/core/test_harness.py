"""Tests for the VM execution harness (init + runtime phases)."""

from repro.arch.cpuid import Vendor
from repro.core.harness import HarnessStats, VmExecutionHarness
from repro.core.state_generator import VmcbStateGenerator, VmStateGenerator
from repro.fuzzer.input import FuzzInput
from repro.fuzzer.rng import Rng
from repro.hypervisors import KvmHypervisor, VcpuConfig


def build(vendor, seed=1, mutate=True):
    from repro.core.necofuzz import golden_seed

    hv = KvmHypervisor(VcpuConfig.default(vendor))
    vcpu = hv.create_vcpu()
    # Campaign-realistic input: golden VM state, random directive regions.
    fi = FuzzInput(golden_seed(vendor, Rng(seed)))
    if vendor is Vendor.INTEL:
        caps = hv.nested_vmx.caps
        state, _ = VmStateGenerator(caps).generate(fi)
    else:
        state, _ = VmcbStateGenerator().generate(fi)
        # AMD needs EFER.SVME, which the init template sets via wrmsr.
    harness = VmExecutionHarness(vendor, mutate=mutate, runtime_iterations=12)
    return hv, vcpu, fi, state, harness


class TestInitPhase:
    def test_init_can_reach_l2(self):
        """A healthy fraction of generated states boot; the rest probe
        the boundary (VMfail / failed-entry error paths) by design."""
        entered = 0
        for seed in range(12):
            hv, vcpu, fi, state, harness = build(Vendor.INTEL, seed)
            stats = HarnessStats()
            harness.run_init_phase(hv, vcpu, fi, state, stats)
            entered += stats.entered_l2
        assert entered >= 3

    def test_amd_init_can_reach_l2(self):
        entered = 0
        for seed in range(12):
            hv, vcpu, fi, state, harness = build(Vendor.AMD, seed)
            stats = HarnessStats()
            harness.run_init_phase(hv, vcpu, fi, state, stats)
            entered += stats.entered_l2
        assert entered >= 4

    def test_vm_entries_counted(self):
        hv, vcpu, fi, state, harness = build(Vendor.INTEL)
        stats = HarnessStats()
        harness.run_init_phase(hv, vcpu, fi, state, stats)
        assert stats.vm_entries >= 1
        assert stats.instructions > 100  # the vmwrite storm

    def test_unmutated_init_is_deterministic_shape(self):
        """Ablation mode must keep the canonical fixed sequence."""
        results = []
        for _ in range(2):
            hv, vcpu, fi, state, harness = build(Vendor.INTEL, 5, mutate=False)
            stats = HarnessStats()
            harness.run_init_phase(hv, vcpu, fi, state, stats)
            results.append(stats.instructions)
        assert results[0] == results[1]

    def test_mutation_varies_sequences(self):
        lengths = set()
        for seed in range(16):
            hv, vcpu, fi, state, harness = build(Vendor.INTEL, seed)
            stats = HarnessStats()
            harness.run_init_phase(hv, vcpu, fi, state, stats)
            lengths.add(stats.instructions)
        assert len(lengths) > 2  # ordering/repetition mutations visible


class TestRuntimePhase:
    def _booted(self, vendor, seed=1, mutate=True):
        hv, vcpu, fi, state, harness = build(vendor, seed, mutate)
        stats = HarnessStats()
        harness.run_init_phase(hv, vcpu, fi, state, stats)
        return hv, vcpu, fi, harness, stats

    def test_runtime_produces_l2_exits(self):
        total_exits = 0
        for seed in range(10):
            hv, vcpu, fi, harness, stats = self._booted(Vendor.INTEL, seed)
            if not stats.entered_l2:
                continue
            harness.run_runtime_phase(hv, vcpu, fi, stats)
            total_exits += stats.l2_exits_to_l1 + stats.l0_handled_exits
        assert total_exits > 5

    def test_runtime_reenters_after_exit(self):
        for seed in range(10):
            hv, vcpu, fi, harness, stats = self._booted(Vendor.INTEL, seed)
            if stats.entered_l2:
                before = stats.vm_entries
                harness.run_runtime_phase(hv, vcpu, fi, stats)
                if stats.l2_exits_to_l1:
                    assert stats.vm_entries > before
                break

    def test_fixed_mode_uses_reduced_template_set(self):
        hv, vcpu, fi, harness, stats = self._booted(Vendor.INTEL, 3,
                                                    mutate=False)
        if stats.entered_l2:
            harness.run_runtime_phase(hv, vcpu, fi, stats)
        mnemonics = {r.detail for r in stats.results}
        assert stats.instructions > 0

    def test_crashed_host_stops_runtime(self):
        hv, vcpu, fi, harness, stats = self._booted(Vendor.INTEL, 1)
        hv.crashed = True
        before = stats.instructions
        harness.run_runtime_phase(hv, vcpu, fi, stats)
        assert stats.instructions == before


class TestStats:
    def test_result_ring_is_bounded(self):
        hv, vcpu, fi, state, harness = build(Vendor.INTEL)
        stats = HarnessStats()
        harness.run_init_phase(hv, vcpu, fi, state, stats)
        assert len(stats.results) <= 64
