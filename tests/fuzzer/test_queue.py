"""Seed-queue scheduling invariants (pick, pick_other, the cull rule)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzer.queue import EXERCISE_CAP, SeedQueue
from repro.fuzzer.rng import Rng

seed_strategy = st.integers(min_value=0, max_value=2**32 - 1)


def _queue(entries):
    queue = SeedQueue()
    for i in range(entries):
        queue.add_seed(bytes([i]))
    return queue


class TestPickOther:
    @given(seed_strategy, st.integers(2, 5))
    @settings(max_examples=100, deadline=None)
    def test_never_self_splices_with_partners_available(self, seed, size):
        """Regression: 4 bounded retries used to fall back to *entry*
        itself (~6% self-splices on a 2-entry queue). The fallback is
        now the deterministic successor in queue order."""
        queue = _queue(size)
        rng = Rng(seed)
        entry = queue.entries[0]
        for _ in range(50):
            assert queue.pick_other(rng, entry) is not entry

    def test_single_entry_queue_returns_entry(self):
        queue = _queue(1)
        entry = queue.entries[0]
        assert queue.pick_other(Rng(1), entry) is entry

    def test_draw_count_matches_legacy(self):
        """The retry loop must consume exactly the draws the historical
        implementation did — the fallback activates only after all four
        draws, so flat-mode fingerprints stay pinned."""
        queue = _queue(3)
        entry = queue.entries[1]
        r1, r2 = Rng(42), Rng(42)
        for _ in range(200):
            queue.pick_other(r1, entry)
            # Legacy draw pattern: up to 4 choices, stop on first miss.
            for _ in range(4):
                if r2.choice(queue.entries) is not entry:
                    break
        assert r1.getstate() == r2.getstate()


class TestCullRule:
    def test_add_finding_unfavors_exhausted_entries(self):
        """Regression: favored flags used to linger after ``exercised``
        crossed the cap, silently diverging from the pick() pool."""
        queue = _queue(1)
        spent = queue.add_finding(b"a", iteration=1, new_bits=2)
        assert spent.favored
        spent.exercised = EXERCISE_CAP
        queue.add_finding(b"b", iteration=2, new_bits=2)
        assert not spent.favored

    def test_under_cap_stays_favored(self):
        queue = _queue(1)
        fresh = queue.add_finding(b"a", iteration=1, new_bits=2)
        fresh.exercised = EXERCISE_CAP - 1
        queue.add_finding(b"b", iteration=2, new_bits=2)
        assert fresh.favored

    def test_recull_is_draw_neutral(self):
        """Clearing stale flags must not change the pick trajectory."""
        q1, q2 = _queue(2), _queue(2)
        for q in (q1, q2):
            entry = q.add_finding(b"a", iteration=1, new_bits=2)
            entry.exercised = EXERCISE_CAP
        q1.recull()
        r1, r2 = Rng(7), Rng(7)
        seq1 = [q1.entries.index(q1.pick(r1)) for _ in range(100)]
        seq2 = [q2.entries.index(q2.pick(r2)) for _ in range(100)]
        assert seq1 == seq2
        assert r1.getstate() == r2.getstate()

    @given(seed_strategy)
    @settings(max_examples=50, deadline=None)
    def test_favored_pool_matches_flags_after_recull(self, seed):
        rng = Rng(seed)
        queue = _queue(2)
        for i in range(6):
            entry = queue.add_finding(bytes([i]), iteration=i + 1,
                                      new_bits=2)
            entry.exercised = rng.below(2 * EXERCISE_CAP)
        queue.recull()
        for entry in queue.entries:
            assert not (entry.favored and entry.exercised >= EXERCISE_CAP)
