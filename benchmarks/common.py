"""Shared helpers for the paper-reproduction benchmarks.

Scale note: the paper runs each fuzzer for 24-48 wall-clock hours on
bare metal; these benches run iteration-budgeted campaigns sized so the
whole suite finishes in minutes. The *shapes* — who wins, by roughly
what factor, where the ablations land — are the reproduction target, not
absolute line counts (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro import ComponentToggles, NecoFuzz, Vendor
from repro.analysis.stats import compare
from repro.analysis.timeline import CoverageTimeline, median_timeline
from repro.core.necofuzz import CampaignResult

#: Campaign budgets (iterations). A "paper hour" is mapped so that the
#: full budget corresponds to the paper's 48-hour axis.
NECOFUZZ_BUDGET = 900
SYZKALLER_BUDGET = 350

#: CI override: shrinks iteration budgets AND doubles as a hard
#: per-phase wall-clock deadline (in seconds) for the perf benches.
BENCH_BUDGET_ENV = "NECOFUZZ_BENCH_BUDGET"


def bench_budget(default: int) -> int:
    """The iteration budget for one bench, honouring the env override."""
    return int(os.environ.get(BENCH_BUDGET_ENV, default))


class PhaseDeadline:
    """Hard wall-clock ceiling on one benchmark phase.

    When ``NECOFUZZ_BENCH_BUDGET`` is set its value doubles as a
    per-phase deadline in seconds: a phase that reaches it stops where
    it is and the bench reports the truncated numbers (with its
    pass/fail floors gated off) instead of blowing the CI time box. No
    env var — full local runs — means no deadline.

    One instance covers one phase; construct a fresh one per phase so
    the clock starts when the phase does.
    """

    def __init__(self) -> None:
        raw = os.environ.get(BENCH_BUDGET_ENV)
        self.seconds = float(raw) if raw else None
        self.started = time.perf_counter()
        self.hit = False

    def expired(self) -> bool:
        """Check the clock; latches ``hit`` once crossed."""
        if self.seconds is not None and not self.hit:
            self.hit = time.perf_counter() - self.started > self.seconds
        return self.hit

    def run(self, steps: int, step) -> int:
        """Call ``step()`` up to *steps* times; returns how many ran."""
        done = 0
        while done < steps and not self.expired():
            step()
            done += 1
        return done
#: Klees et al. recommend reporting across repeated runs; the paper uses
#: five (which also lets the Mann-Whitney U-test reach p ~ 0.012).
RUNS = 5
SEEDS = (11, 23, 37, 47, 59)


def necofuzz_runs(vendor: Vendor, *, hypervisor: str = "kvm",
                  budget: int = NECOFUZZ_BUDGET, runs: int = RUNS,
                  toggles: ComponentToggles | None = None,
                  coverage_guided: bool = True,
                  sample_every: int = 30) -> list[CampaignResult]:
    """Run *runs* independent NecoFuzz campaigns (Klees-style repeats)."""
    results = []
    for seed in SEEDS[:runs]:
        campaign = NecoFuzz(
            hypervisor=hypervisor, vendor=vendor, seed=seed,
            toggles=toggles or ComponentToggles(),
            coverage_guided=coverage_guided,
            iterations_per_hour=budget / 48.0)
        results.append(campaign.run(budget, sample_every=sample_every))
    return results


def coverage_percents(results: list[CampaignResult]) -> list[float]:
    return [r.coverage_percent for r in results]


def union_lines(results: list[CampaignResult]) -> set:
    """Union coverage across repeats (for the set-algebra rows)."""
    lines: set = set()
    for result in results:
        lines |= result.covered_lines
    return lines


def median_result_lines(results: list[CampaignResult]) -> set:
    """The covered-line set of the median-coverage run."""
    ordered = sorted(results, key=lambda r: r.coverage_percent)
    return ordered[len(ordered) // 2].covered_lines


@dataclass
class BenchReport:
    """Collects printable lines and emits them once, uncaptured."""

    title: str
    lines: list[str] = field(default_factory=list)

    def add(self, text: str = "") -> None:
        self.lines.append(text)

    def emit(self, capsys) -> None:
        with capsys.disabled():
            print(f"\n=== {self.title} " + "=" * max(0, 60 - len(self.title)))
            for line in self.lines:
                print(line)


def klees_row(name_a: str, runs_a: list[float],
              name_b: str, runs_b: list[float]) -> str:
    """One statistics row comparing two tools' coverage samples."""
    return compare(name_a, runs_a, name_b, runs_b).render()


def timeline_block(label: str, timelines: list[CoverageTimeline]) -> list[str]:
    """Median timeline sparkline plus a few sampled points."""
    merged = median_timeline(timelines, label)
    lines = [merged.render()]
    samples = []
    for hour in (1, 6, 12, 24, 48):
        samples.append(f"{hour:>3}h={100 * merged.at_hour(hour):.1f}%")
    lines.append(f"{'':28} {' '.join(samples)}")
    return lines
