"""Corpus-sync protocol tests (export / incremental import / corruption)."""

from repro import faults
from repro.coverage.bitmap import CoverageBitmap
from repro.faults import FaultPlan, FaultSpec
from repro.fuzzer.engine import FuzzEngine, RunFeedback
from repro.fuzzer.input import INPUT_SIZE
from repro.fuzzer.rng import Rng
from repro.parallel.sync import SyncDirectory, worker_queue_dir


def novel_execute():
    counter = {"n": 0}

    def execute(fi):
        counter["n"] += 1
        bitmap = CoverageBitmap()
        bitmap.record_edge(counter["n"] * 64, counter["n"] * 64 + 1)
        return RunFeedback(bitmap=bitmap)

    return execute


def make_engine(seed=1):
    engine = FuzzEngine(execute=novel_execute(), rng=Rng(seed))
    engine.add_seed(bytes(INPUT_SIZE))
    return engine


class TestSyncDirectory:
    def test_export_writes_worker_queue_dir(self, tmp_path):
        engine = make_engine()
        engine.run(4)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        exported = sync.export(engine)
        queue_dir = worker_queue_dir(tmp_path, 0)
        assert exported == len(list(queue_dir.iterdir())) == len(engine.queue)

    def test_import_new_executes_partner_entries(self, tmp_path):
        producer = make_engine(seed=1)
        producer.run(3)
        SyncDirectory(tmp_path, worker=1, total_workers=2).export(producer)

        consumer = make_engine(seed=2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        imported = sync.import_new(consumer)
        assert imported == len(producer.queue)
        assert consumer.stats.imported == imported

    def test_import_is_incremental(self, tmp_path):
        producer = make_engine(seed=1)
        producer.run(2)
        producer_sync = SyncDirectory(tmp_path, worker=1, total_workers=2)
        producer_sync.export(producer)

        consumer = make_engine(seed=2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        first = sync.import_new(consumer)
        assert sync.import_new(consumer) == 0  # nothing new yet
        producer.run(2)
        producer_sync.export(producer)
        second = sync.import_new(consumer)
        assert first > 0 and second == 2  # only the fresh entries

    def test_imported_entries_not_reexported(self, tmp_path):
        producer = make_engine(seed=1)
        producer.run(3)
        SyncDirectory(tmp_path, worker=1, total_workers=2).export(producer)

        consumer = make_engine(seed=2)
        consumer.run(1)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        sync.import_new(consumer)
        local = sum(1 for e in consumer.queue.entries if not e.imported)
        assert sync.export(consumer) == local
        assert local < len(consumer.queue)  # some imports did join the queue

    def test_own_directory_never_imported(self, tmp_path):
        engine = make_engine()
        engine.run(2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        sync.export(engine)
        assert sync.import_new(engine) == 0


class TestSyncCorruption:
    """Injected mid-write corruption: skip, count, heal on re-export."""

    def _corrupted_export(self, tmp_path, mode):
        producer = make_engine(seed=1)
        producer.run(3)
        sync = SyncDirectory(tmp_path, worker=1, total_workers=2)
        plan = FaultPlan([FaultSpec("corrupt_sync", worker=1, at_export=1,
                                    corrupt=mode)])
        with faults.injected(plan):
            sync.export(producer)
        assert plan.exhausted
        return producer, sync

    def test_truncated_entry_skipped_then_healed(self, tmp_path):
        producer, producer_sync = self._corrupted_export(tmp_path, "truncate")
        consumer = make_engine(seed=2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        first = sync.import_new(consumer)
        assert first == len(producer.queue) - 1
        assert consumer.stats.import_skipped == 1
        # The owner's next export rewrites the whole queue; the entry
        # was never marked seen, so it imports now.
        producer_sync.export(producer)
        assert sync.import_new(consumer) == 1
        assert consumer.stats.imported == len(producer.queue)

    def test_garbage_entry_skipped_then_healed(self, tmp_path):
        producer, producer_sync = self._corrupted_export(tmp_path, "garbage")
        consumer = make_engine(seed=2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        assert sync.import_new(consumer) == len(producer.queue) - 1
        assert consumer.stats.import_skipped == 1
        producer_sync.export(producer)
        assert sync.import_new(consumer) == 1

    def test_tmp_orphan_never_listed(self, tmp_path):
        producer, _ = self._corrupted_export(tmp_path, "tmp_orphan")
        consumer = make_engine(seed=2)
        sync = SyncDirectory(tmp_path, worker=0, total_workers=2)
        assert sync.import_new(consumer) == len(producer.queue)
        assert consumer.stats.import_skipped == 0
        orphans = list(worker_queue_dir(tmp_path, 1).glob("*.tmp"))
        assert orphans  # the fault really did leave one behind
