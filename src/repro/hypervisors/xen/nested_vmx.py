"""Xen nested VMX emulation — the analogue of ``xen/arch/x86/hvm/vmx/vvmx.c``.

Xen's nested VMX ("nvmx") is structured around a *virtual VMCS* that L1
manipulates with vmread/vmwrite, shadowed into a hardware VMCS at
virtual VM entry. The implementation is historically less complete than
KVM's — fewer software consistency checks, more reliance on hardware to
reject bad states — which is visible in the branch structure below.

Seeded bug (Table 6 #4, fixed by [11]): ``virtual_vmentry`` copies the
guest activity state from VMCS12 into VMCS02 *blindly*. The auxiliary
states SHUTDOWN and WAIT-FOR-SIPI are intended for Intel TXT processor
management; running an L2 with WAIT-FOR-SIPI hangs the whole host, and
SHUTDOWN triggers a platform reset. The ``activity_state_sanitize``
patch gates the fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.arch.exceptions import HostCrash
from repro.arch.registers import Cr0, Cr4, Efer, Rflags
from repro.cpu.physical_cpu import VmxCpu
from repro.hypervisors.base import ExecResult, GuestInstruction, SanitizerKind
from repro.hypervisors.memory import GuestMemory
from repro.validator.golden import golden_vmcs
from repro.vmx import fields as F
from repro.vmx.controls import (
    ActivityState,
    EntryControls,
    ExitControls,
    PinBased,
    ProcBased,
    Secondary,
)
from repro.vmx.exit_reasons import ENTRY_FAILURE_BIT, ExitReason, VmInstructionError
from repro.vmx.msr_caps import VmxCapabilities, default_capabilities

VVMCS_INVALID = (1 << 64) - 1
XEN_VMCS02_HPA = 0x120000
XEN_VMXON_HPA = 0x121000

#: Guest-group field specs, precomputed for the shadow load.
_GUEST_SPECS: tuple = tuple(
    spec for spec in F.ALL_FIELDS if spec.group is F.FieldGroup.GUEST)
_GUEST_ENCODINGS: frozenset[int] = frozenset(s.encoding for s in _GUEST_SPECS)

#: VMCS12 fields read by the control section of load_shadow_guest_state.
_SHADOW_CONTROL_INPUTS: frozenset[int] = frozenset({
    F.PIN_BASED_VM_EXEC_CONTROL, F.CPU_BASED_VM_EXEC_CONTROL,
    F.SECONDARY_VM_EXEC_CONTROL, F.VM_ENTRY_CONTROLS, F.EXCEPTION_BITMAP,
})


@dataclass
class NvmxState:
    """Per-vCPU nvmx state (struct nestedvmx analogue)."""

    vmxon: bool = False
    vmxon_region: int = VVMCS_INVALID
    vvmcs_addr: int = VVMCS_INVALID  # current virtual VMCS (vmcs12)
    guest_mode: bool = False
    l2_ever_ran: bool = False
    vmcs02: "object" = None
    #: (vvmcs, generation, shadow vmcs02) from the last shadow load.
    merge_cache: tuple | None = None
    cr4: int = Cr4.PAE | Cr4.VMXE


class XenNestedVmx:
    """Xen's nvmx for one HVM guest."""

    def __init__(self, hypervisor, memory: GuestMemory,
                 caps: VmxCapabilities | None = None,
                 patched: frozenset[str] = frozenset()) -> None:
        self.hv = hypervisor
        self.memory = memory
        self.caps = caps or default_capabilities()
        self.patched = patched
        self.phys = VmxCpu(default_capabilities())
        self.phys.vmxon(XEN_VMXON_HPA)
        self._vmcs02_proto = golden_vmcs(self.phys.caps)

    HANDLERS = {
        "vmxon": "nvmx_handle_vmxon",
        "vmxoff": "nvmx_handle_vmxoff",
        "vmclear": "nvmx_handle_vmclear",
        "vmptrld": "nvmx_handle_vmptrld",
        "vmptrst": "nvmx_handle_vmptrst",
        "vmread": "nvmx_handle_vmread",
        "vmwrite": "nvmx_handle_vmwrite",
        "vmlaunch": "nvmx_handle_vmlaunch",
        "vmresume": "nvmx_handle_vmresume",
        "invept": "nvmx_handle_invept",
        "invvpid": "nvmx_handle_invvpid",
        "vmcall": "nvmx_handle_vmcall",
    }

    def handle(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate one VMX instruction from the L1 HVM guest."""
        handler_name = self.HANDLERS.get(instr.mnemonic)
        if handler_name is None:
            return ExecResult.fault(f"#UD: {instr.mnemonic}")
        return getattr(self, handler_name)(state, instr)

    # ------------------------------------------------------------------
    # Instruction emulation
    # ------------------------------------------------------------------

    def nvmx_handle_vmxon(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxon` instruction."""
        if not state.cr4 & Cr4.VMXE:
            return ExecResult.fault("#UD: CR4.VMXE clear")
        if state.vmxon:
            return self._vmfail(state, VmInstructionError.VMXON_IN_VMX_ROOT)
        gpa = instr.op("addr")
        if gpa & 0xFFF or not self.memory.in_guest_ram(gpa):
            return ExecResult.success("VMfailInvalid", value=-1)
        state.vmxon = True
        state.vmxon_region = gpa
        state.vvmcs_addr = VVMCS_INVALID
        return ExecResult.success("vmxon ok")

    def nvmx_handle_vmxoff(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmxoff` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        state.vmxon = False
        state.vvmcs_addr = VVMCS_INVALID
        return ExecResult.success("vmxoff ok")

    def nvmx_handle_vmclear(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmclear` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        gpa = instr.op("addr")
        if gpa & 0xFFF or not self.memory.in_guest_ram(gpa):
            return self._vmfail(state, VmInstructionError.VMCLEAR_INVALID_ADDRESS)
        vvmcs = self.memory.ensure_vmcs(gpa, self.caps.vmcs_revision_id)
        vvmcs.clear()
        if state.vvmcs_addr == gpa:
            state.vvmcs_addr = VVMCS_INVALID
        return ExecResult.success("vmclear ok")

    def nvmx_handle_vmptrld(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrld` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        gpa = instr.op("addr")
        if gpa & 0xFFF or not self.memory.in_guest_ram(gpa):
            return self._vmfail(state, VmInstructionError.VMPTRLD_INVALID_ADDRESS)
        if gpa == state.vmxon_region:
            return self._vmfail(state, VmInstructionError.VMPTRLD_VMXON_POINTER)
        vvmcs = self.memory.get_vmcs(gpa)
        if vvmcs is None:
            return self._vmfail(state,
                                VmInstructionError.VMPTRLD_INCORRECT_REVISION_ID)
        state.vvmcs_addr = gpa
        return ExecResult.success("vmptrld ok")

    def nvmx_handle_vmptrst(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmptrst` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        return ExecResult.success("vmptrst ok", value=state.vvmcs_addr)

    def nvmx_handle_vmread(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmread` instruction."""
        vvmcs = self._vvmcs(state)
        if vvmcs is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        encoding = instr.op("field")
        if encoding not in F.SPEC_BY_ENCODING:
            return self._vmfail(state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        return ExecResult.success("vmread ok", value=vvmcs.read(encoding))

    def nvmx_handle_vmwrite(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmwrite` instruction."""
        vvmcs = self._vvmcs(state)
        if vvmcs is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        encoding = instr.op("field")
        spec = F.SPEC_BY_ENCODING.get(encoding)
        if spec is None:
            return self._vmfail(state, VmInstructionError.UNSUPPORTED_VMCS_COMPONENT)
        if spec.group is F.FieldGroup.READ_ONLY:
            return self._vmfail(state, VmInstructionError.VMWRITE_READ_ONLY_COMPONENT)
        vvmcs.write(encoding, instr.op("value"))
        return ExecResult.success("vmwrite ok")

    def nvmx_handle_vmlaunch(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmlaunch` instruction."""
        return self.virtual_vmentry(state, launch=True)

    def nvmx_handle_vmresume(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmresume` instruction."""
        return self.virtual_vmentry(state, launch=False)

    def nvmx_handle_invept(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invept` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        if instr.op("type") not in (1, 2):
            return self._vmfail(state,
                                VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        return ExecResult.success("invept ok")

    def nvmx_handle_invvpid(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `invvpid` instruction."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        if instr.op("type") > 3:
            return self._vmfail(state,
                                VmInstructionError.INVALID_OPERAND_TO_INVEPT_INVVPID)
        return ExecResult.success("invvpid ok")

    def nvmx_handle_vmcall(self, state: NvmxState, instr: GuestInstruction) -> ExecResult:
        """Emulate the guest's `vmcall` instruction."""
        return ExecResult.success("vmcall ok")

    def _vvmcs(self, state: NvmxState):
        if not state.vmxon or state.vvmcs_addr == VVMCS_INVALID:
            return None
        return self.memory.get_vmcs(state.vvmcs_addr)

    def _vmfail(self, state: NvmxState, error: VmInstructionError) -> ExecResult:
        vvmcs = self._vvmcs(state)
        if vvmcs is not None:
            vvmcs.write(F.VM_INSTRUCTION_ERROR, int(error))
        return ExecResult.success(f"VMfailValid({int(error)})", value=int(error))

    # ------------------------------------------------------------------
    # Virtual VM entry (virtual_vmentry analogue)
    # ------------------------------------------------------------------

    def virtual_vmentry(self, state: NvmxState, *, launch: bool) -> ExecResult:
        """Xen's virtual VM entry: checks, shadow load, run, bug #4."""
        if not state.vmxon:
            return ExecResult.fault("#UD: VMX not enabled")
        vvmcs = self._vvmcs(state)
        if vvmcs is None:
            return ExecResult.success("VMfailInvalid", value=-1)
        if launch and vvmcs.launched:
            return self._vmfail(state, VmInstructionError.VMLAUNCH_NONCLEAR_VMCS)
        if not launch and not vvmcs.launched:
            return self._vmfail(state, VmInstructionError.VMRESUME_NONLAUNCHED_VMCS)

        # All three checks are pure in the virtual-VMCS fields (caps and
        # the memory-window predicate are constant per instance), so the
        # results are memoized on the vVMCS and revalidated via its
        # dirty journal between entries.
        problems = perf.memoized_check(
            vvmcs, ("xen_vmx", id(self), "controls"),
            lambda: self.check_controls(vvmcs))
        if problems:
            return self._vmfail(state, VmInstructionError.ENTRY_INVALID_CONTROL_FIELDS)
        problems = perf.memoized_check(
            vvmcs, ("xen_vmx", id(self), "host"),
            lambda: self.check_host_state(vvmcs))
        if problems:
            return self._vmfail(state, VmInstructionError.ENTRY_INVALID_HOST_STATE)
        problems = perf.memoized_check(
            vvmcs, ("xen_vmx", id(self), "guest"),
            lambda: self.check_guest_state(vvmcs))
        if problems:
            reason = int(ExitReason.INVALID_GUEST_STATE) | ENTRY_FAILURE_BIT
            vvmcs.write(F.VM_EXIT_REASON, reason)
            return ExecResult.success(f"entry failed: {problems[0]}",
                                      exit_reason=reason, level=1)

        vmcs02 = self.load_shadow_guest_state(state, vvmcs)

        self.phys.vmclear(XEN_VMCS02_HPA)
        image = vmcs02.copy()
        image.clear()
        self.phys.install_vmcs(XEN_VMCS02_HPA, image)
        self.phys.vmptrld(XEN_VMCS02_HPA)
        outcome = self.phys.vmlaunch()
        if not outcome.entered:
            self.hv.report_sanitizer(
                SanitizerKind.WARN, "virtual_vmentry",
                "hardware rejected shadow VMCS")
            reason = int(ExitReason.INVALID_GUEST_STATE) | ENTRY_FAILURE_BIT
            vvmcs.write(F.VM_EXIT_REASON, reason)
            return ExecResult.success("entry failed on hardware",
                                      exit_reason=reason, level=1)
        state.vmcs02 = image

        # BUG #4: the activity state was copied blindly. Running an L2
        # vCPU parked in WAIT-FOR-SIPI blocks every event except SIPIs —
        # nothing will ever deliver one, and the pCPU spins in non-root
        # mode forever: the host is gone. SHUTDOWN resets the platform.
        activity = image.read(F.GUEST_ACTIVITY_STATE)
        if "activity_state_sanitize" not in self.patched:
            if activity == ActivityState.WAIT_FOR_SIPI:
                self.hv.crashed = True
                raise HostCrash(
                    "host unresponsive: L2 entered wait-for-SIPI activity "
                    "state (VMCS12 activity state copied unsanitized)",
                    hang=True)
            if activity == ActivityState.SHUTDOWN:
                self.hv.crashed = True
                raise HostCrash(
                    "platform reset: L2 entered SHUTDOWN activity state",
                    hang=False)

        if launch:
            vvmcs.mark_launched()
        state.guest_mode = True
        state.l2_ever_ran = True
        return ExecResult.success("virtual vmentry", level=2)

    # ------------------------------------------------------------------
    # Checks — deliberately sparser than KVM's (matching Xen's nvmx)
    # ------------------------------------------------------------------

    def check_controls(self, vvmcs) -> list[str]:
        """Xen's software control checks (a subset of the SDM's)."""
        problems: list[str] = []
        pin = vvmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vvmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vvmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
        if not self.caps.pin_based.permits(pin):
            problems.append("pin controls")
        if not self.caps.proc_based.permits(proc):
            problems.append("proc controls")
        if proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS:
            if not self.caps.secondary.permits(proc2):
                problems.append("secondary controls")
            if proc2 & Secondary.UNRESTRICTED_GUEST and not proc2 & Secondary.ENABLE_EPT:
                problems.append("unrestricted guest without EPT")
        if not self.caps.entry.permits(vvmcs.read(F.VM_ENTRY_CONTROLS)):
            problems.append("entry controls")
        if not self.caps.exit.permits(vvmcs.read(F.VM_EXIT_CONTROLS)):
            problems.append("exit controls")
        if proc & ProcBased.USE_MSR_BITMAPS:
            if vvmcs.read(F.MSR_BITMAP) & 0xFFF:
                problems.append("MSR bitmap alignment")
        if self.memory.in_l0_reserved(vvmcs.read(F.MSR_BITMAP)):
            problems.append("MSR bitmap in Xen memory")
        return problems

    def check_host_state(self, vvmcs) -> list[str]:
        """Xen's host-state checks."""
        problems: list[str] = []
        if not self.caps.cr0_valid_for_vmx(vvmcs.read(F.HOST_CR0)):
            problems.append("host CR0")
        if not self.caps.cr4_valid_for_vmx(vvmcs.read(F.HOST_CR4)):
            problems.append("host CR4")
        if not vvmcs.read(F.HOST_CS_SELECTOR):
            problems.append("host CS null")
        return problems

    def check_guest_state(self, vvmcs) -> list[str]:
        """Xen's guest-state checks — note: no activity-state rule here;
        that is exactly bug #4."""
        problems: list[str] = []
        cr0 = vvmcs.read(F.GUEST_CR0)
        cr4 = vvmcs.read(F.GUEST_CR4)
        proc = vvmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        proc2 = vvmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
        unrestricted = bool(proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS
                            and proc2 & Secondary.UNRESTRICTED_GUEST)
        if not self.caps.cr0_valid_for_vmx(cr0, unrestricted_guest=unrestricted):
            problems.append("guest CR0")
        if not self.caps.cr4_valid_for_vmx(cr4):
            problems.append("guest CR4")
        entry = vvmcs.read(F.VM_ENTRY_CONTROLS)
        if entry & EntryControls.IA32E_MODE_GUEST and not cr0 & Cr0.PG:
            problems.append("IA-32e without paging")
        if entry & EntryControls.LOAD_EFER:
            efer = vvmcs.read(F.GUEST_IA32_EFER)
            if efer & Efer.RESERVED:
                problems.append("guest EFER reserved")
        rflags = vvmcs.read(F.GUEST_RFLAGS)
        if not rflags & Rflags.FIXED_1:
            problems.append("RFLAGS bit 1")
        return problems

    # ------------------------------------------------------------------
    # VMCS12 -> VMCS02 shadow load
    # ------------------------------------------------------------------

    def load_shadow_guest_state(self, state: NvmxState, vvmcs):
        """Build the shadow VMCS02 from the virtual VMCS (vmcs12).

        In incremental mode the last shadow load is cached per vCPU and
        only dirty vVMCS fields are re-applied (perf.merge_state replays
        the skipped sections' kcov event slices, so coverage is
        mode-independent); the caller copies the result before
        installing it, so hardware write-backs never touch the cached
        master.
        """
        vmcs02 = perf.merge_state(
            state, vvmcs,
            build=lambda: self._shadow_base(vvmcs),
            controls=lambda merged: self._shadow_controls(vvmcs, merged),
            state_fields=_GUEST_ENCODINGS,
            control_inputs=_SHADOW_CONTROL_INPUTS)

        vmcs02.write(F.VMCS_LINK_POINTER, VVMCS_INVALID)
        if not vmcs02.read(F.VIRTUAL_PROCESSOR_ID):
            vmcs02.write(F.VIRTUAL_PROCESSOR_ID, 3)
        # The blind activity-state copy (bug #4) — or the fixed version.
        # Always re-applied: the write is change-detecting, and the value
        # depends only on the (possibly just re-copied) vVMCS field.
        activity = vvmcs.read(F.GUEST_ACTIVITY_STATE)
        if "activity_state_sanitize" in self.patched:
            if activity not in (ActivityState.ACTIVE, ActivityState.HLT):
                activity = ActivityState.ACTIVE
        vmcs02.write(F.GUEST_ACTIVITY_STATE, activity)
        # Pre-warm the entry-check memo so the installed image copy
        # revalidates from the journal instead of re-running checks.
        perf.prewarm(lambda: self.phys.checker.check_all(vmcs02))
        return vmcs02

    def _shadow_base(self, vvmcs) -> Vmcs:
        """Prototype copy with the vVMCS guest-state fields applied."""
        vmcs02 = self._vmcs02_proto.copy()
        for spec in _GUEST_SPECS:
            vmcs02.write(spec.encoding, vvmcs.read(spec.encoding))
        return vmcs02

    def _shadow_controls(self, vvmcs, vmcs02: Vmcs) -> None:
        """Controls: Xen ORs in its own requirements.

        A pure function of the _SHADOW_CONTROL_INPUTS fields of the
        vVMCS plus the constant capability MSRs.
        """
        vmcs02.write(F.PIN_BASED_VM_EXEC_CONTROL, self.phys.caps.pin_based.round(
            vvmcs.read(F.PIN_BASED_VM_EXEC_CONTROL) | PinBased.EXT_INTR_EXITING))
        vmcs02.write(F.CPU_BASED_VM_EXEC_CONTROL, self.phys.caps.proc_based.round(
            vvmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
            | ProcBased.ACTIVATE_SECONDARY_CONTROLS))
        vmcs02.write(F.SECONDARY_VM_EXEC_CONTROL, self.phys.caps.secondary.round(
            vvmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
            | Secondary.ENABLE_EPT | Secondary.ENABLE_VPID))
        vmcs02.write(F.VM_ENTRY_CONTROLS, self.phys.caps.entry.round(
            vvmcs.read(F.VM_ENTRY_CONTROLS)))
        vmcs02.write(F.VM_EXIT_CONTROLS, self.phys.caps.exit.round(
            ExitControls.HOST_ADDR_SPACE_SIZE | ExitControls.LOAD_EFER
            | ExitControls.SAVE_EFER))
        vmcs02.write(F.EXCEPTION_BITMAP, vvmcs.read(F.EXCEPTION_BITMAP))

    # ------------------------------------------------------------------
    # Host-side toolstack surface (domctl / save-restore / setup)
    #
    # Reachable only through xl/libxl operations on the control domain —
    # outside the paper's threat model, so fuzzing never dispatches
    # here. Instrumented like the rest of the file (the Table-4 totals
    # include such code; the paper's NecoFuzz tops out at 83.4%/79.0%).
    # ------------------------------------------------------------------

    def nvmx_domctl_get_state(self, state: NvmxState) -> dict:
        """XEN_DOMCTL_get_nvmx_state: snapshot for live migration."""
        blob: dict = {
            "vmxon": state.vmxon,
            "vmxon_region": state.vmxon_region,
            "vvmcs_addr": state.vvmcs_addr,
            "guest_mode": state.guest_mode,
        }
        vvmcs = self._vvmcs(state)
        if vvmcs is not None:
            blob["vvmcs"] = vvmcs.serialize()
        return blob

    def nvmx_domctl_set_state(self, state: NvmxState, blob: dict) -> int:
        """XEN_DOMCTL_set_nvmx_state: restore after migration."""
        if blob.get("guest_mode") and not blob.get("vmxon"):
            return -22  # -EINVAL
        region = blob.get("vmxon_region", VVMCS_INVALID)
        if blob.get("vmxon"):
            if region == VVMCS_INVALID or region & 0xFFF:
                return -22
            state.vmxon = True
            state.vmxon_region = region
        addr = blob.get("vvmcs_addr", VVMCS_INVALID)
        if addr != VVMCS_INVALID:
            if addr & 0xFFF or not self.memory.in_guest_ram(addr):
                return -22
            raw = blob.get("vvmcs")
            if raw is not None:
                from repro.vmx.vmcs import Vmcs

                self.memory.put_vmcs(addr, Vmcs.deserialize(
                    raw, self.caps.vmcs_revision_id))
            state.vvmcs_addr = addr
        state.guest_mode = bool(blob.get("guest_mode"))
        return 0

    def nvmx_vcpu_initialise(self, state: NvmxState) -> int:
        """Per-vCPU nvmx setup at domain creation (nestedhvm=1)."""
        if state.vmxon:
            return -16  # -EBUSY: already initialised
        state.vmxon_region = VVMCS_INVALID
        state.vvmcs_addr = VVMCS_INVALID
        state.guest_mode = False
        state.cr4 = Cr4.PAE | Cr4.VMXE
        return 0

    def nvmx_vcpu_destroy(self, state: NvmxState) -> None:
        """Per-vCPU teardown: drop the virtual VMCS mapping."""
        if state.vvmcs_addr != VVMCS_INVALID:
            self.memory.vmcs_pages.pop(state.vvmcs_addr & ~0xFFF, None)
        state.vmxon = False
        state.vvmcs_addr = VVMCS_INVALID
        state.guest_mode = False

    # ------------------------------------------------------------------
    # Virtual VM exit
    # ------------------------------------------------------------------

    def virtual_vmexit(self, state: NvmxState, vvmcs, reason: int, *,
                       qualification: int = 0) -> None:
        """Reflect an L2 exit into the virtual VMCS and resume L1."""
        if state.vmcs02 is not None:
            for spec in F.ALL_FIELDS:
                if spec.group is F.FieldGroup.GUEST:
                    vvmcs.write(spec.encoding, state.vmcs02.read(spec.encoding))
        vvmcs.write(F.VM_EXIT_REASON, reason)
        vvmcs.write(F.EXIT_QUALIFICATION, qualification)
        vvmcs.write(F.VM_EXIT_INSTRUCTION_LEN, 3)
        state.guest_mode = False

    def l1_wants_exit(self, vvmcs, reason: ExitReason,
                      instr: GuestInstruction) -> bool:
        """nvmx_n2_vmexit_handler() routing decision (abridged)."""
        pin = vvmcs.read(F.PIN_BASED_VM_EXEC_CONTROL)
        proc = vvmcs.read(F.CPU_BASED_VM_EXEC_CONTROL)
        if reason == ExitReason.EXCEPTION_NMI:
            return bool(vvmcs.read(F.EXCEPTION_BITMAP)
                        & (1 << (instr.op("vector") & 31)))
        if reason == ExitReason.EXTERNAL_INTERRUPT:
            return bool(pin & PinBased.EXT_INTR_EXITING)
        if reason in (ExitReason.TRIPLE_FAULT, ExitReason.CPUID,
                      ExitReason.INVD, ExitReason.XSETBV, ExitReason.VMCALL):
            return True
        if reason == ExitReason.HLT:
            return bool(proc & ProcBased.HLT_EXITING)
        if reason == ExitReason.INVLPG:
            return bool(proc & ProcBased.INVLPG_EXITING)
        if reason in (ExitReason.RDTSC, ExitReason.RDTSCP):
            return bool(proc & ProcBased.RDTSC_EXITING)
        if reason == ExitReason.RDPMC:
            return bool(proc & ProcBased.RDPMC_EXITING)
        if reason in (ExitReason.VMCLEAR, ExitReason.VMLAUNCH,
                      ExitReason.VMPTRLD, ExitReason.VMPTRST,
                      ExitReason.VMREAD, ExitReason.VMRESUME,
                      ExitReason.VMWRITE, ExitReason.VMXOFF, ExitReason.VMXON,
                      ExitReason.INVEPT, ExitReason.INVVPID):
            return True
        if reason == ExitReason.CR_ACCESS:
            mask = vvmcs.read(F.CR0_GUEST_HOST_MASK)
            shadow = vvmcs.read(F.CR0_READ_SHADOW)
            value = instr.op("value")
            return bool(mask and (value & mask) != (shadow & mask))
        if reason == ExitReason.DR_ACCESS:
            return bool(proc & ProcBased.MOV_DR_EXITING)
        if reason == ExitReason.IO_INSTRUCTION:
            if proc & ProcBased.USE_IO_BITMAPS:
                return bool(instr.op("port") & 1)
            return bool(proc & ProcBased.UNCOND_IO_EXITING)
        if reason in (ExitReason.MSR_READ, ExitReason.MSR_WRITE):
            if proc & ProcBased.USE_MSR_BITMAPS:
                return bool(instr.op("msr") & 1)
            return True
        if reason == ExitReason.PAUSE_INSTRUCTION:
            return bool(proc & ProcBased.PAUSE_EXITING)
        if reason in (ExitReason.EPT_VIOLATION, ExitReason.EPT_MISCONFIG):
            proc2 = vvmcs.read(F.SECONDARY_VM_EXEC_CONTROL)
            return bool(proc & ProcBased.ACTIVATE_SECONDARY_CONTROLS
                        and proc2 & Secondary.ENABLE_EPT)
        return True
